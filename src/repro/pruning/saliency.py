"""Weight-saliency scores for pruning.

Two scorers, matching the paper's toolchain:

* **magnitude** — ``|w|``, the classic baseline (Han et al.);
* **Fisher diagonal** — ``w^2 * E[g^2]``, a diagonal approximation of the
  WoodFisher second-order criterion: the loss increase from zeroing a
  weight under a quadratic model of the loss.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def magnitude_scores(weights: np.ndarray) -> np.ndarray:
    """Saliency = |w|."""
    return np.abs(weights)


def fisher_diagonal(grad_samples: np.ndarray) -> np.ndarray:
    """Empirical Fisher diagonal from per-sample gradients.

    Args:
        grad_samples: ``(num_samples, *weight_shape)`` gradient draws.

    Returns:
        ``E[g^2]`` over the sample axis.
    """
    if grad_samples.ndim < 2:
        raise ShapeError("grad_samples must stack samples on axis 0")
    return np.mean(grad_samples.astype(np.float64) ** 2, axis=0)


def saliency_scores(weights: np.ndarray,
                    fisher: np.ndarray | None = None) -> np.ndarray:
    """WoodFisher-lite saliency: ``0.5 * w^2 * F_ii`` (or |w| without F).

    With a Fisher diagonal available this is the pruning statistic of
    Optimal Brain Surgeon restricted to the diagonal; without one it
    degrades gracefully to magnitude.
    """
    if fisher is None:
        return magnitude_scores(weights)
    if fisher.shape != weights.shape:
        raise ShapeError(
            f"fisher shape {fisher.shape} != weights {weights.shape}")
    return 0.5 * weights.astype(np.float64) ** 2 * fisher
