"""Synthetic tasks and metrics for the accuracy proxy.

* classification — anisotropic Gaussian clusters with nuisance rotations:
  hard enough that pruning damage shows, learnable by a small MLP.  The
  metric is macro-F1 (SQuAD reports F1).
* sequence — a random-transition Markov chain over a small vocabulary;
  next-token prediction measured in perplexity (GSM8K is reported in
  perplexity in Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class ClassificationTask:
    """Train/test split of the synthetic classification task."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    @property
    def in_dim(self) -> int:
        return self.x_train.shape[1]


@dataclass(frozen=True)
class SequenceTask:
    """Train/test context-target pairs of the synthetic LM task."""

    train_contexts: np.ndarray
    train_targets: np.ndarray
    test_contexts: np.ndarray
    test_targets: np.ndarray
    vocab: int
    context: int


def make_classification_task(num_samples: int = 2000, in_dim: int = 64,
                             num_classes: int = 12,
                             test_fraction: float = 0.25,
                             noise: float = 2.4,
                             seed: int | np.random.Generator | None = None
                             ) -> ClassificationTask:
    """Gaussian-cluster classification with a shared random rotation.

    ``noise`` controls class overlap; the default puts a well-trained
    dense MLP near F1 ~0.9 (Bert-on-SQuAD territory) so that pruning
    damage is measurable rather than hidden by a saturated metric.
    """
    if num_classes < 2:
        raise ConfigError("need at least two classes")
    rng = new_rng(seed)
    centers = rng.normal(0, 1.3, size=(num_classes, in_dim))
    rotation, _ = np.linalg.qr(rng.normal(size=(in_dim, in_dim)))
    y = rng.integers(0, num_classes, size=num_samples)
    x = centers[y] + rng.normal(0, noise, size=(num_samples, in_dim))
    x = x @ rotation
    split = int(num_samples * (1.0 - test_fraction))
    return ClassificationTask(
        x_train=x[:split], y_train=y[:split],
        x_test=x[split:], y_test=y[split:],
        num_classes=num_classes)


def make_sequence_task(vocab: int = 64, context: int = 4,
                       train_tokens: int = 20000, test_tokens: int = 5000,
                       seed: int | np.random.Generator | None = None
                       ) -> SequenceTask:
    """Order-1 Markov chain text; contexts are sliding windows."""
    rng = new_rng(seed)
    # Sparse-ish transition matrix: each state strongly prefers a few
    # successors, giving the model real structure to learn.
    logits = rng.normal(0, 1.0, size=(vocab, vocab))
    boost = rng.integers(0, vocab, size=(vocab, 4))
    for s in range(vocab):
        logits[s, boost[s]] += 3.0
    probs = np.exp(logits - logits.max(axis=1, keepdims=True))
    probs /= probs.sum(axis=1, keepdims=True)

    total = train_tokens + test_tokens + context
    stream = np.empty(total, dtype=np.int64)
    stream[0] = rng.integers(0, vocab)
    for t in range(1, total):
        stream[t] = rng.choice(vocab, p=probs[stream[t - 1]])

    def windows(seq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ctx = np.lib.stride_tricks.sliding_window_view(
            seq[:-1], context)[: seq.size - context]
        tgt = seq[context:]
        return ctx.copy(), tgt.copy()

    train = stream[:train_tokens + context]
    test = stream[train_tokens:]
    tr_c, tr_t = windows(train)
    te_c, te_t = windows(test)
    return SequenceTask(train_contexts=tr_c, train_targets=tr_t,
                        test_contexts=te_c, test_targets=te_t,
                        vocab=vocab, context=context)


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray,
             num_classes: int) -> float:
    """Macro-averaged F1 (Table 4's metric shape)."""
    scores = []
    for c in range(num_classes):
        tp = np.sum((y_pred == c) & (y_true == c))
        fp = np.sum((y_pred == c) & (y_true != c))
        fn = np.sum((y_pred != c) & (y_true == c))
        if tp == 0:
            scores.append(0.0 if (fp or fn) else 1.0)
            continue
        precision = tp / (tp + fp)
        recall = tp / (tp + fn)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores))


def perplexity(nll_per_token: np.ndarray) -> float:
    """exp(mean NLL) (Table 5's metric)."""
    return float(np.exp(np.mean(nll_per_token)))
