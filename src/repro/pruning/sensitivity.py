"""Layer-wise pruning sensitivity and sparsity allocation.

An extension in the direction of DominoSearch (cited in §7): rather than
a uniform `(N, M, V)` everywhere, measure each layer's sensitivity to
the pattern and allocate sparsity where it is cheap.  The pipeline:

1. :func:`layer_sensitivity` — per-layer metric drop when only that
   layer is pruned (one-at-a-time scan);
2. :func:`allocate_sparsity` — greedy assignment of per-layer `(N, M)`
   ratios under a global parameter budget, spending density on the most
   sensitive layers first.

Kept deliberately simple — the point is the mechanism and its tests,
not a new pruning paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.formats.samoyeds import SamoyedsPattern
from repro.pruning.masks import build_mask
from repro.pruning.nets import MLPClassifier
from repro.pruning.tasks import ClassificationTask, macro_f1


@dataclass(frozen=True)
class SensitivityReport:
    """Per-layer metric deltas from one-at-a-time pruning."""

    dense_metric: float
    per_layer: dict[int, float]

    def ranking(self) -> list[int]:
        """Layers ordered most-sensitive first (largest drop)."""
        return sorted(self.per_layer,
                      key=lambda layer: self.per_layer[layer])

    def drop(self, layer: int) -> float:
        return self.dense_metric - self.per_layer[layer]


def layer_sensitivity(net: MLPClassifier, task: ClassificationTask,
                      pattern: SamoyedsPattern) -> SensitivityReport:
    """Prune one layer at a time and record the test metric."""
    dense = macro_f1(task.y_test, net.predict(task.x_test),
                     task.num_classes)
    saved = net.clone_weights()
    per_layer: dict[int, float] = {}
    for layer in net.prunable_layers():
        net.restore_weights(saved)
        net.clear_masks()
        mask = build_mask(net.weights[layer], "samoyeds",
                          samoyeds=pattern)
        net.set_mask(layer, mask)
        per_layer[layer] = macro_f1(task.y_test,
                                    net.predict(task.x_test),
                                    task.num_classes)
    net.restore_weights(saved)
    net.clear_masks()
    return SensitivityReport(dense_metric=dense, per_layer=per_layer)


#: Ratio menu: (N, M) choices at a fixed V, densest first.
RATIO_MENU: tuple[tuple[int, int], ...] = ((4, 4), (3, 4), (2, 4), (1, 4))


def allocate_sparsity(report: SensitivityReport,
                      layer_params: dict[int, int],
                      target_density: float,
                      v: int = 32) -> dict[int, SamoyedsPattern]:
    """Assign per-layer `(N, M, V)` under a global density budget.

    Greedy: start everywhere at the sparsest menu entry, then spend the
    remaining budget upgrading the most sensitive layers to denser
    ratios until the parameter-weighted density would exceed
    ``target_density``.
    """
    if not 0.0 < target_density <= 1.0:
        raise ConfigError("target_density must be in (0, 1]")
    layers = list(report.per_layer)
    if set(layers) != set(layer_params):
        raise ConfigError("layer_params must cover exactly the scanned "
                          "layers")
    total_params = sum(layer_params.values())
    sparsest = RATIO_MENU[-1]
    assignment = {layer: sparsest for layer in layers}

    def overall_density(assign: dict[int, tuple[int, int]]) -> float:
        return sum(layer_params[i] * (n / m) * 0.5
                   for i, (n, m) in assign.items()) / total_params

    for layer in report.ranking():               # most sensitive first
        for ratio in RATIO_MENU:                 # densest first
            trial = dict(assignment)
            trial[layer] = ratio
            if overall_density(trial) <= target_density:
                assignment = trial
                break
    return {layer: SamoyedsPattern(n, m, v)
            for layer, (n, m) in assignment.items()}


def achieved_density(patterns: dict[int, SamoyedsPattern],
                     layer_params: dict[int, int]) -> float:
    """Parameter-weighted density of an allocation."""
    total = sum(layer_params.values())
    if total == 0:
        return 0.0
    return sum(layer_params[i] * p.density
               for i, p in patterns.items()) / total


def apply_allocation(net: MLPClassifier,
                     patterns: dict[int, SamoyedsPattern]) -> None:
    """Mask the network with a per-layer allocation."""
    for layer, pattern in patterns.items():
        mask = build_mask(net.weights[layer], "samoyeds",
                          samoyeds=pattern)
        net.set_mask(layer, mask)
