"""Prune -> (fine-tune) -> measure pipelines for Tables 4 and 5.

The pipeline trains a dense model once, then for each pruning method:
masks the prunable layers with that method's pattern (saliency-ranked),
optionally fine-tunes briefly with gradients projected onto the mask
(SparseML-style recovery), and records the metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.samoyeds import SamoyedsPattern
from repro.formats.venom import VenomPattern
from repro.pruning.masks import build_mask, mask_sparsity
from repro.pruning.nets import MLPClassifier, TinyLM
from repro.pruning.tasks import (
    ClassificationTask,
    SequenceTask,
    macro_f1,
    perplexity,
)


@dataclass
class AccuracyReport:
    """Metric per pruning method, plus the dense reference."""

    metric_name: str
    dense: float
    pruned: dict[str, float] = field(default_factory=dict)
    sparsities: dict[str, float] = field(default_factory=dict)

    def retention(self, method: str) -> float:
        """pruned / dense for higher-is-better metrics."""
        if self.dense == 0:
            return 0.0
        return self.pruned[method] / self.dense

    def degradation(self, method: str) -> float:
        """pruned - dense for lower-is-better metrics (perplexity)."""
        return self.pruned[method] - self.dense


def _apply_method(net, method: str,
                  samoyeds: SamoyedsPattern | None,
                  venom: VenomPattern | None,
                  sparsity: float) -> float:
    """Mask every prunable layer; returns achieved mean sparsity."""
    achieved = []
    for layer in net.prunable_layers():
        mask = build_mask(net.weights[layer], method,
                          samoyeds=samoyeds, venom=venom,
                          sparsity=sparsity)
        net.set_mask(layer, mask)
        achieved.append(mask_sparsity(mask))
    return float(np.mean(achieved)) if achieved else 0.0


def evaluate_classifier_pruning(
        task: ClassificationTask,
        methods: dict[str, dict] | None = None,
        hidden: list[int] | None = None,
        train_epochs: int = 25,
        finetune_epochs: int = 5,
        seed: int = 7) -> AccuracyReport:
    """Table-4 pipeline: F1 of an MLP under each pruning pattern.

    ``methods`` maps a label to ``build_mask`` keyword arguments, e.g.
    ``{"samoyeds(1,2,16)": {"method": "samoyeds",
    "samoyeds": SamoyedsPattern(1, 2, 16)}}``.
    """
    methods = methods or _default_methods()
    hidden = hidden or [128, 128]
    net = MLPClassifier(task.in_dim, hidden, task.num_classes, seed=seed)
    net.fit(task.x_train, task.y_train, epochs=train_epochs, seed=seed)
    dense_f1 = macro_f1(task.y_test, net.predict(task.x_test),
                        task.num_classes)
    saved = net.clone_weights()

    report = AccuracyReport(metric_name="macro_f1", dense=dense_f1)
    for label, kwargs in methods.items():
        net.restore_weights(saved)
        net.clear_masks()
        achieved = _apply_method(
            net, kwargs["method"], kwargs.get("samoyeds"),
            kwargs.get("venom"), kwargs.get("sparsity", 0.75))
        if finetune_epochs:
            net.fit(task.x_train, task.y_train, epochs=finetune_epochs,
                    seed=seed + 1)
        report.pruned[label] = macro_f1(
            task.y_test, net.predict(task.x_test), task.num_classes)
        report.sparsities[label] = achieved
    return report


def evaluate_lm_pruning(
        task: SequenceTask,
        methods: dict[str, dict] | None = None,
        embed_dim: int = 32,
        hidden: list[int] | None = None,
        train_epochs: int = 8,
        finetune_epochs: int = 2,
        seed: int = 11) -> AccuracyReport:
    """Table-5 pipeline: perplexity of a tiny LM under each pattern."""
    methods = methods or _default_methods()
    hidden = hidden or [128, 128]
    net = TinyLM(task.vocab, task.context, embed_dim, hidden, seed=seed)
    net.fit(task.train_contexts, task.train_targets, epochs=train_epochs,
            seed=seed)
    dense_ppl = perplexity(net.token_nll(task.test_contexts,
                                         task.test_targets))
    saved = net.clone_weights()
    saved_embed = net.embedding.copy()

    report = AccuracyReport(metric_name="perplexity", dense=dense_ppl)
    for label, kwargs in methods.items():
        net.restore_weights(saved)
        net.embedding[...] = saved_embed
        net.clear_masks()
        achieved = _apply_method(
            net, kwargs["method"], kwargs.get("samoyeds"),
            kwargs.get("venom"), kwargs.get("sparsity", 0.75))
        if finetune_epochs:
            net.fit(task.train_contexts, task.train_targets,
                    epochs=finetune_epochs, seed=seed + 1)
        report.pruned[label] = perplexity(
            net.token_nll(task.test_contexts, task.test_targets))
        report.sparsities[label] = achieved
    return report


def _default_methods() -> dict[str, dict]:
    """Table 5's column set at the paper's uniform 75% sparsity."""
    return {
        "unstructured": {"method": "unstructured", "sparsity": 0.75},
        "venom": {"method": "venom", "venom": VenomPattern(64, 2, 4)},
        "samoyeds": {"method": "samoyeds",
                     "samoyeds": SamoyedsPattern(1, 2, 32)},
    }
