"""Pruning and accuracy-proxy substrate (§6.5, Tables 4 and 5).

The paper prunes Bert / Tiny-LLaMA / Qwen2 with WoodFisher via SparseML
and evaluates on SQuAD / GSM8K.  Those models and datasets are not
available offline, so this package reproduces the *relative* claim with
exact stand-ins: trainable numpy networks on synthetic tasks, pruned
one-shot into each competing pattern — unstructured magnitude, VENOM
V:N:M, and Samoyeds `(N, M, V)` — at the paper's uniform 75% sparsity,
with magnitude or Fisher-diagonal (WoodFisher-lite) saliency.

The claim under test is ordering: dense >= unstructured ~= Samoyeds >
VENOM at equal sparsity, because Samoyeds' sub-row granularity (with the
free choice of N sub-rows per (M, V) block) preserves more salient weight
mass than VENOM's column-vector granularity.
"""

from repro.pruning.saliency import (
    fisher_diagonal,
    magnitude_scores,
    saliency_scores,
)
from repro.pruning.masks import build_mask, mask_sparsity, retained_saliency
from repro.pruning.nets import MLPClassifier, TinyLM
from repro.pruning.tasks import (
    make_classification_task,
    make_sequence_task,
    macro_f1,
    perplexity,
)
from repro.pruning.evaluate import (
    AccuracyReport,
    evaluate_classifier_pruning,
    evaluate_lm_pruning,
)
from repro.pruning.sensitivity import (
    SensitivityReport,
    allocate_sparsity,
    layer_sensitivity,
)

__all__ = [
    "magnitude_scores",
    "fisher_diagonal",
    "saliency_scores",
    "build_mask",
    "mask_sparsity",
    "retained_saliency",
    "MLPClassifier",
    "TinyLM",
    "make_classification_task",
    "make_sequence_task",
    "macro_f1",
    "perplexity",
    "AccuracyReport",
    "evaluate_classifier_pruning",
    "evaluate_lm_pruning",
    "SensitivityReport",
    "allocate_sparsity",
    "layer_sensitivity",
]
