"""Pattern-constrained pruning masks.

Builds the keep-masks each competing format allows, maximising retained
saliency subject to the pattern constraint:

* ``unstructured`` — global top-k, no constraint (the accuracy ceiling);
* ``two_four`` — 2:4 per group (fixed 50%);
* ``venom`` — V:N:M column-vector selection + 2:4;
* ``samoyeds`` — `(N, M, V)` sub-row selection + 2:4.

All selection runs on a *saliency* matrix, so magnitude and WoodFisher
criteria share one code path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.formats.samoyeds import SamoyedsPattern, samoyeds_mask
from repro.formats.twofour import two_four_mask
from repro.formats.venom import VenomPattern, venom_mask


def block_mask(scores: np.ndarray, sparsity: float,
               block: int = 16) -> np.ndarray:
    """Block-wise pruning: keep whole ``block x block`` tiles by energy.

    The granularity §4.1 argues *against* ("block-wise sparsity is too
    coarse-grained to preserve model accuracy"): selection operates on
    ``block^2`` weights at once, so salient weights inside a weak block
    are lost wholesale.  Included as the comparison point for that
    claim (see ``tests/test_pruning_masks.py``).
    """
    if scores.ndim != 2:
        raise ShapeError("block_mask expects a 2-D array")
    rows, cols = scores.shape
    if rows % block or cols % block:
        raise ShapeError(
            f"shape {scores.shape} not divisible by block={block}")
    tiles = scores.reshape(rows // block, block,
                           cols // block, block)
    energy = np.sqrt(np.sum(tiles.astype(np.float64) ** 2, axis=(1, 3)))
    keep_tiles = unstructured_mask(energy, sparsity)
    expanded = np.broadcast_to(keep_tiles[:, None, :, None], tiles.shape)
    return expanded.reshape(rows, cols).copy()


def unstructured_mask(scores: np.ndarray, sparsity: float) -> np.ndarray:
    """Keep the globally top ``1 - sparsity`` fraction by saliency."""
    if not 0.0 <= sparsity < 1.0:
        raise ConfigError(f"sparsity must be in [0, 1), got {sparsity}")
    keep = int(round(scores.size * (1.0 - sparsity)))
    if keep <= 0:
        return np.zeros_like(scores, dtype=bool)
    threshold = np.partition(scores.ravel(), scores.size - keep)[
        scores.size - keep]
    mask = scores >= threshold
    # Resolve threshold ties deterministically to hit the exact count.
    excess = int(mask.sum()) - keep
    if excess > 0:
        tied = np.argwhere((scores == threshold) & mask)
        for idx in map(tuple, tied[:excess]):
            mask[idx] = False
    return mask


def build_mask(weights: np.ndarray, method: str,
               scores: np.ndarray | None = None,
               samoyeds: SamoyedsPattern | None = None,
               venom: VenomPattern | None = None,
               sparsity: float = 0.75) -> np.ndarray:
    """Keep-mask for ``weights`` under the named pattern.

    ``scores`` defaults to |weights|; structured selectors consume the
    scores through the same block/vector energy ranking the format
    encoders use.
    """
    if weights.ndim != 2:
        raise ShapeError("build_mask expects a 2-D weight matrix")
    if scores is None:
        scores = np.abs(weights)
    if scores.shape != weights.shape:
        raise ShapeError("scores shape must match weights")

    if method == "unstructured":
        return unstructured_mask(scores, sparsity)
    if method == "blockwise":
        return block_mask(scores, sparsity)
    if method == "two_four":
        return two_four_mask(scores)
    if method == "venom":
        pattern = venom or VenomPattern(64, 2, 4)
        return venom_mask(scores, pattern)
    if method == "samoyeds":
        pattern = samoyeds or SamoyedsPattern(1, 2, 32)
        return samoyeds_mask(scores, pattern)
    raise ConfigError(
        f"unknown pruning method {method!r}; expected one of "
        "unstructured/blockwise/two_four/venom/samoyeds")


def mask_sparsity(mask: np.ndarray) -> float:
    """Fraction of weights removed by ``mask``."""
    return 1.0 - float(mask.sum()) / mask.size if mask.size else 0.0


def retained_saliency(scores: np.ndarray, mask: np.ndarray) -> float:
    """Fraction of total saliency mass the mask keeps — the analytic
    quantity behind Table 5's ordering."""
    total = float(scores.sum())
    if total <= 0:
        return 1.0
    return float(scores[mask].sum()) / total
