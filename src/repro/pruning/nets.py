"""Trainable numpy networks for the accuracy proxy.

Two small models stand in for the paper's Bert (classification / F1) and
Tiny-LLaMA / Qwen2 (generation / perplexity):

* :class:`MLPClassifier` — ReLU MLP with softmax cross-entropy;
* :class:`TinyLM` — embedding + MLP next-token language model.

Both support mask-frozen fine-tuning, mirroring the gradual-pruning
recipe of the SparseML scripts: after pruning, gradients are projected
onto the surviving weights so the pattern is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.utils.rng import new_rng


@dataclass
class _Adam:
    """Minimal Adam state for one parameter tensor."""

    lr: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    m: np.ndarray | None = None
    v: np.ndarray | None = None
    t: int = 0

    def step(self, param: np.ndarray, grad: np.ndarray) -> None:
        if self.m is None:
            self.m = np.zeros_like(param)
            self.v = np.zeros_like(param)
        self.t += 1
        self.m = self.beta1 * self.m + (1 - self.beta1) * grad
        self.v = self.beta2 * self.v + (1 - self.beta2) * grad ** 2
        m_hat = self.m / (1 - self.beta1 ** self.t)
        v_hat = self.v / (1 - self.beta2 ** self.t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class _DenseNet:
    """Shared MLP core: linear layers with ReLU between them."""

    def __init__(self, dims: list[int],
                 seed: int | np.random.Generator | None = None) -> None:
        if len(dims) < 2:
            raise ConfigError("need at least input and output dims")
        rng = new_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0, scale, size=(fan_out, fan_in)))
            self.biases.append(np.zeros(fan_out))
        self._masks: list[np.ndarray | None] = [None] * len(self.weights)
        self._optim = [(_Adam(), _Adam()) for _ in self.weights]

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Logits plus per-layer activations (for backprop)."""
        acts = [x]
        h = x
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w.T + b
            if i < len(self.weights) - 1:
                h = np.maximum(h, 0.0)
            acts.append(h)
        return h, acts

    def backward(self, acts: list[np.ndarray], dlogits: np.ndarray
                 ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Gradients (dW, db) per layer from the logit gradient."""
        grads: list[tuple[np.ndarray, np.ndarray]] = [None] * len(
            self.weights)  # type: ignore[list-item]
        delta = dlogits
        for i in reversed(range(len(self.weights))):
            grads[i] = (delta.T @ acts[i], delta.sum(axis=0))
            if i > 0:
                delta = (delta @ self.weights[i]) * (acts[i] > 0)
        return grads

    def apply_step(self, grads: list[tuple[np.ndarray, np.ndarray]]) -> None:
        for i, (dw, db) in enumerate(grads):
            if self._masks[i] is not None:
                dw = dw * self._masks[i]
            opt_w, opt_b = self._optim[i]
            opt_w.step(self.weights[i], dw)
            opt_b.step(self.biases[i], db)
            if self._masks[i] is not None:
                self.weights[i] *= self._masks[i]

    # ------------------------------------------------------------------
    # Pruning interface
    # ------------------------------------------------------------------
    def prunable_layers(self) -> list[int]:
        """Hidden-layer indices (final classifier layer stays dense)."""
        return list(range(len(self.weights) - 1))

    def set_mask(self, layer: int, mask: np.ndarray) -> None:
        if mask.shape != self.weights[layer].shape:
            raise ShapeError(
                f"mask shape {mask.shape} != weight "
                f"{self.weights[layer].shape}")
        self._masks[layer] = mask.astype(bool)
        self.weights[layer] *= self._masks[layer]

    def clear_masks(self) -> None:
        self._masks = [None] * len(self.weights)

    def clone_weights(self) -> list[np.ndarray]:
        return [w.copy() for w in self.weights]

    def restore_weights(self, saved: list[np.ndarray]) -> None:
        for w, s in zip(self.weights, saved):
            w[...] = s


class MLPClassifier(_DenseNet):
    """ReLU MLP with softmax cross-entropy (the F1 proxy for Bert)."""

    def __init__(self, in_dim: int, hidden: list[int], num_classes: int,
                 seed: int | np.random.Generator | None = None) -> None:
        super().__init__([in_dim, *hidden, num_classes], seed=seed)
        self.num_classes = num_classes

    def loss_and_grads(self, x: np.ndarray, y: np.ndarray):
        logits, acts = self.forward(x)
        probs = _softmax(logits)
        n = x.shape[0]
        loss = -np.mean(np.log(probs[np.arange(n), y] + 1e-12))
        dlogits = probs.copy()
        dlogits[np.arange(n), y] -= 1.0
        dlogits /= n
        return loss, self.backward(acts, dlogits)

    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int = 20,
            batch_size: int = 64,
            seed: int | np.random.Generator | None = None) -> list[float]:
        """Minibatch Adam training; returns per-epoch mean losses."""
        rng = new_rng(seed)
        history = []
        for _ in range(epochs):
            order = rng.permutation(x.shape[0])
            losses = []
            for start in range(0, x.shape[0], batch_size):
                idx = order[start:start + batch_size]
                loss, grads = self.loss_and_grads(x[idx], y[idx])
                self.apply_step(grads)
                losses.append(loss)
            history.append(float(np.mean(losses)))
        return history

    def predict(self, x: np.ndarray) -> np.ndarray:
        logits, _ = self.forward(x)
        return logits.argmax(axis=1)


class TinyLM(_DenseNet):
    """Embedding + MLP next-token model (the perplexity proxy)."""

    def __init__(self, vocab: int, context: int, embed_dim: int,
                 hidden: list[int],
                 seed: int | np.random.Generator | None = None) -> None:
        rng = new_rng(seed)
        super().__init__([context * embed_dim, *hidden, vocab], seed=rng)
        self.vocab = vocab
        self.context = context
        self.embed_dim = embed_dim
        self.embedding = rng.normal(0, 0.1, size=(vocab, embed_dim))
        self._embed_opt = _Adam()

    def _embed(self, contexts: np.ndarray) -> np.ndarray:
        """(n, context) token ids -> (n, context*embed_dim) features."""
        return self.embedding[contexts].reshape(contexts.shape[0], -1)

    def loss_and_grads(self, contexts: np.ndarray, targets: np.ndarray):
        feats = self._embed(contexts)
        logits, acts = self.forward(feats)
        probs = _softmax(logits)
        n = contexts.shape[0]
        loss = -np.mean(np.log(probs[np.arange(n), targets] + 1e-12))
        dlogits = probs.copy()
        dlogits[np.arange(n), targets] -= 1.0
        dlogits /= n
        grads = self.backward(acts, dlogits)
        dfeat = dlogits @ self.weights[0] if len(self.weights) == 1 else None
        # Backprop into the embedding through the first layer.
        delta = dlogits
        for i in reversed(range(1, len(self.weights))):
            delta = (delta @ self.weights[i]) * (acts[i] > 0)
        dfeat = delta @ self.weights[0]
        dembed = np.zeros_like(self.embedding)
        flat = dfeat.reshape(n, self.context, self.embed_dim)
        np.add.at(dembed, contexts, flat)
        return loss, grads, dembed

    def fit(self, contexts: np.ndarray, targets: np.ndarray,
            epochs: int = 10, batch_size: int = 128,
            seed: int | np.random.Generator | None = None) -> list[float]:
        rng = new_rng(seed)
        history = []
        for _ in range(epochs):
            order = rng.permutation(contexts.shape[0])
            losses = []
            for start in range(0, contexts.shape[0], batch_size):
                idx = order[start:start + batch_size]
                loss, grads, dembed = self.loss_and_grads(contexts[idx],
                                                          targets[idx])
                self.apply_step(grads)
                self._embed_opt.step(self.embedding, dembed)
                losses.append(loss)
            history.append(float(np.mean(losses)))
        return history

    def token_nll(self, contexts: np.ndarray,
                  targets: np.ndarray) -> np.ndarray:
        """Per-token negative log likelihood (perplexity input)."""
        logits, _ = self.forward(self._embed(contexts))
        probs = _softmax(logits)
        n = contexts.shape[0]
        return -np.log(probs[np.arange(n), targets] + 1e-12)
