"""Shared execution context for model-, scheduler- and bench-level code.

Before the serving engine existed, every layer of the stack threaded the
same ad-hoc argument tuple — ``(config, engine, spec, kernel, tile_n,
flash, ...)`` — through its own signatures (``models/runner.py``,
``moe/scheduler.py``, ``bench/harness.py``).  :class:`ExecutionContext`
bundles those choices into one immutable object so the request-level
serving simulator in :mod:`repro.serve` can hand a single value to the
cost stack, while the legacy positional signatures keep working through
:meth:`ExecutionContext.resolve`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigError, InternalError
from repro.hw.interconnect import (
    TRIVIAL_PLAN,
    ClusterSpec,
    ParallelPlan,
    make_cluster,
    parse_parallel,
)
from repro.hw.spec import DEFAULT_GPU, GPUSpec, get_gpu
from repro.moe.config import MoEModelConfig, get_model
from repro.moe.layers import ENGINES, MoEEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.kernels.base import MatmulKernel
    from repro.kernels.tiling import TilingConfig
    from repro.moe.memory_model import MemoryFootprint


def resolve_engine(engine: "MoEEngine | str") -> MoEEngine:
    """Registry lookup accepting an instance or a registry name.

    A miss raises :class:`ConfigError` listing every registered engine
    (including ``"auto"``, the cost-driven dispatcher) plus a
    did-you-mean suggestion — the uniform registry message.
    """
    if isinstance(engine, str):
        return ENGINES.get(engine)
    return engine


@dataclass(frozen=True)
class ExecutionContext:
    """Everything the cost stack needs to price one workload.

    Attributes:
        config: Table-2 model architecture.
        engine: MoE execution engine (one of the five contestants).
        spec: Target device.
        kernel: Optional expert-segment kernel override (defaults to the
            engine's own kernel choice).
        tiling: Optional frozen tiling configuration (§6.6 porting
            studies pin the development-platform tiling).
        flash: FlashAttention toggle (Figure 2's two panels).
        streams: GPU streams available for expert-segment overlap
            (``moe/scheduler.py`` policies; 1 = the paper's setup).
        tile_n: Expert-segment n-tile override; ``None`` derives it from
            the engine (64/128 per §4.2) or falls back to 64.
        parallel: Device-parallelism degrees (expert/tensor/data); the
            default identity plan keeps the single-GPU semantics.
        cluster: Device topology carrying ``parallel``; ``None`` derives
            a homogeneous NVLink cluster of ``spec`` copies on demand.
    """

    config: MoEModelConfig
    engine: MoEEngine
    spec: GPUSpec
    kernel: "MatmulKernel | None" = None
    tiling: "TilingConfig | None" = None
    flash: bool = True
    streams: int = 1
    tile_n: int | None = None
    parallel: ParallelPlan = TRIVIAL_PLAN
    cluster: ClusterSpec | None = None

    def __post_init__(self) -> None:
        if self.streams <= 0:
            raise ConfigError("streams must be positive")
        if self.tile_n is not None and self.tile_n <= 0:
            raise ConfigError("tile_n must be positive")
        if not isinstance(self.parallel, ParallelPlan):
            raise ConfigError("parallel must be a ParallelPlan (use "
                              "parse_parallel for 'ep=4,tp=2' strings)")
        if (self.cluster is not None
                and self.cluster.num_devices < self.parallel.num_devices):
            raise ConfigError(
                f"cluster has {self.cluster.num_devices} devices but the "
                f"parallel plan needs {self.parallel.num_devices}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, model: MoEModelConfig | str,
               engine: MoEEngine | str = "samoyeds",
               gpu: GPUSpec | str | None = None,
               **kwargs: object) -> "ExecutionContext":
        """Build a context from registry names or concrete objects.

        ``parallel`` additionally accepts the ``ep=4,tp=2`` string (or
        mapping) syntax, and a ``link`` keyword — a
        :class:`~repro.hw.interconnect.LinkSpec` or registry name —
        derives a homogeneous cluster of ``gpu`` copies joined by that
        link when the plan is non-trivial and no explicit ``cluster``
        was given.  This is the one construction path shared by
        :func:`repro.serve.simulate`, the CLI and the deployment API.
        """
        config = get_model(model) if isinstance(model, str) else model
        spec = gpu if isinstance(gpu, GPUSpec) else (
            get_gpu(gpu) if gpu else DEFAULT_GPU)
        if "parallel" in kwargs:
            kwargs["parallel"] = ParallelPlan.from_any(
                kwargs["parallel"])  # type: ignore[arg-type]
        link = kwargs.pop("link", None)
        if link is not None and kwargs.get("cluster") is None:
            plan = kwargs.get("parallel", TRIVIAL_PLAN)
            if not isinstance(plan, ParallelPlan):
                raise InternalError(
                    "parallel plan was not normalised to ParallelPlan "
                    f"before cluster construction: {plan!r}")
            if not plan.is_trivial:
                from repro.hw.interconnect import get_link
                link_spec = (get_link(link) if isinstance(link, str)
                             else link)
                kwargs["cluster"] = make_cluster(spec, plan, link_spec)
        return cls(config=config, engine=resolve_engine(engine),
                   spec=spec, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def resolve(cls, first: "ExecutionContext | MoEModelConfig | str",
                engine: MoEEngine | str | None = None,
                spec: GPUSpec | None = None,
                flash: bool | None = None) -> "ExecutionContext":
        """Normalise legacy ``(config, engine, spec)`` tuples.

        Accepts either an existing context (optionally overridden by the
        explicit arguments) or the positional triple the pre-serving
        signatures took.
        """
        if isinstance(first, ExecutionContext):
            ctx = first
            if engine is not None:
                ctx = ctx.with_engine(engine)
            if spec is not None:
                ctx = replace(ctx, spec=spec)
            if flash is not None and flash != ctx.flash:
                ctx = replace(ctx, flash=flash)
            return ctx
        config = get_model(first) if isinstance(first, str) else first
        if engine is None:
            raise ConfigError(
                "engine is required when no ExecutionContext is given")
        return cls(config=config, engine=resolve_engine(engine),
                   spec=spec or DEFAULT_GPU,
                   flash=True if flash is None else flash)

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_engine(self, engine: MoEEngine | str) -> "ExecutionContext":
        return replace(self, engine=resolve_engine(engine))

    def with_spec(self, spec: GPUSpec | str) -> "ExecutionContext":
        return replace(self, spec=spec if isinstance(spec, GPUSpec)
                       else get_gpu(spec))

    def with_parallel(self, parallel: ParallelPlan | str,
                      cluster: ClusterSpec | None = None
                      ) -> "ExecutionContext":
        """Copy carrying a different parallel plan (and optional
        topology); accepts the ``ep=4,tp=2`` string syntax."""
        if isinstance(parallel, str):
            parallel = parse_parallel(parallel)
        return replace(self, parallel=parallel,
                       cluster=cluster if cluster is not None
                       else self.cluster)

    # ------------------------------------------------------------------
    # Derived choices
    # ------------------------------------------------------------------
    @property
    def effective_tile_n(self) -> int:
        """Expert-segment padding tile (engine-derived unless pinned).

        Engines that choose their own tile (Samoyeds' §4.2 64/128 rule,
        the ``auto`` dispatcher delegating to its samoyeds candidate)
        expose ``tile_rows``; everything else pads to 64.
        """
        if self.tile_n is not None:
            return self.tile_n
        tile_rows = getattr(self.engine, "tile_rows", None)
        if tile_rows is not None:
            return tile_rows(self.config)
        return 64

    def segment_kernel(self) -> "MatmulKernel":
        """Kernel pricing the per-expert SSMM segments.

        An explicit ``kernel`` wins; otherwise the engine's own segment
        kernel (for ``engine="auto"`` that is the cost-model winner's
        kernel for this config/device); the Samoyeds SSMM remains the
        final default, matching the paper's measurement setup.
        """
        if self.kernel is not None:
            return self.kernel
        kernel = self.engine.segment_kernel(self.config, self.spec)
        if kernel is not None:
            return kernel
        from repro.kernels.ssmm_samoyeds import SamoyedsKernel
        return SamoyedsKernel()

    @property
    def cluster_spec(self) -> ClusterSpec:
        """The device topology carrying this context's plan.

        Defaults to a homogeneous NVLink cluster of ``spec`` copies
        sized to the parallel plan when no explicit cluster was given.
        """
        if self.cluster is not None:
            return self.cluster
        return make_cluster(self.spec, self.parallel)

    # ------------------------------------------------------------------
    # Cost-stack façade
    # ------------------------------------------------------------------
    def footprint(self, seq_len: int) -> "MemoryFootprint":
        """Per-device footprint (whole-device when the plan is trivial)."""
        from repro.moe.memory_model import footprint
        return footprint(self.config, self.engine.name, seq_len, self.spec,
                         parallel=self.parallel)

    def max_batch(self, seq_len: int) -> int:
        return self.footprint(seq_len).max_batch()

    def prefill_cost(self, seq_len: int, batch: int = 1):
        """Prefill-phase decoder-layer breakdown."""
        from repro.models.decoder import decoder_cost
        return decoder_cost(self.config, seq_len, self.spec,
                            engine=self.engine, batch=batch,
                            flash=self.flash, parallel=self.parallel,
                            cluster=self.cluster)

    def decode_cost(self, context_tokens: int, batch: int = 1):
        """Decode-phase (one new token per sequence) breakdown."""
        from repro.models.decoder import decoder_decode_cost
        return decoder_decode_cost(self.config, context_tokens, self.spec,
                                   engine=self.engine, batch=batch,
                                   flash=self.flash,
                                   parallel=self.parallel,
                                   cluster=self.cluster)
