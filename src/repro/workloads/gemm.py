"""GEMM benchmark workloads: the synthetic 238-case suite and Table-2
shapes (canonical home; ``repro.bench.workloads`` re-exports these).

The paper's synthetic kernel benchmark covers "238 distinct cases, with
dimensions m, k, n ranging from 256 to 16384" (§6.1.1).  We enumerate the
power-of-two grid over that range and keep the 238 smallest cases by
total FLOPs — deterministic, spanning the same envelope.

The realistic benchmark extracts the expert GEMM shapes of the Table-2
models at 4096 routed tokens: ``(intermediate, hidden, n)`` for
gate/up_proj and ``(hidden, intermediate, n)`` for down_proj.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.moe.config import MODEL_REGISTRY, MoEModelConfig

#: Grid of dimension values (powers of two, 256..16384).
DIM_GRID: tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192, 16384)

SYNTHETIC_CASE_COUNT = 238


@dataclass(frozen=True)
class GemmCase:
    """One benchmark problem."""

    m: int
    k: int
    n: int
    label: str = ""

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.k * self.n

    def __str__(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return f"{self.m}x{self.k}x{self.n}{tag}"


def synthetic_cases(count: int = SYNTHETIC_CASE_COUNT) -> list[GemmCase]:
    """The synthetic suite: ``count`` smallest grid cases by FLOPs.

    Ties break lexicographically on (m, k, n) so the suite is stable
    across runs and machines.
    """
    grid = [GemmCase(m, k, n)
            for m in DIM_GRID for k in DIM_GRID for n in DIM_GRID]
    grid.sort(key=lambda c: (c.flops, c.m, c.k, c.n))
    return grid[:count]


def realistic_cases(tokens: int = 4096,
                    models: list[str] | None = None) -> list[GemmCase]:
    """Expert GEMM shapes of the Table-2 models (§6.1.1's realistic set)."""
    names = models or list(MODEL_REGISTRY)
    cases: list[GemmCase] = []
    for name in names:
        cfg: MoEModelConfig = MODEL_REGISTRY[name]
        cases.append(GemmCase(cfg.intermediate_size, cfg.hidden_size,
                              tokens, label=f"{name}:gate_up"))
        cases.append(GemmCase(cfg.hidden_size, cfg.intermediate_size,
                              tokens, label=f"{name}:down"))
    return cases


def scaling_cases(dimension: str, fixed: int = 4096,
                  values: tuple[int, ...] = DIM_GRID) -> list[GemmCase]:
    """Figure 13's sweeps: vary one dimension, fix the others."""
    cases = []
    for v in values:
        dims = {"m": fixed, "k": fixed, "n": fixed}
        dims[dimension] = v
        cases.append(GemmCase(dims["m"], dims["k"], dims["n"],
                              label=f"{dimension}={v}"))
    return cases
