"""Multi-tenant traffic: per-tenant classes, SLOs and rate limits.

A :class:`TenantSpec` describes one request class sharing the server:
its scheduling ``priority``, its latency objectives (``ttft_slo_s`` /
``tpot_slo_s``), an optional token-bucket ``token_rate_limit`` and its
``share`` of the arrival stream.  :func:`assign_tenants` stamps a
generated single-tenant trace with tenant identities (and per-tenant
length overrides) deterministically, from a stream derived off the
trace seed — the base arrival process is untouched, so a tenanted
trace has byte-identical arrival times to its untenanted twin.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping, Sequence

from repro.errors import ConfigError
from repro.utils.rng import new_rng
from repro.workloads.traces import (
    Request,
    _sample_lengths,
    _sample_output_lengths,
)

#: Mix-in constant for the tenant-assignment RNG stream: tenant draws
#: must not perturb the base generator's arrival/length draws, so they
#: come from a second generator seeded off the trace seed.
_TENANT_STREAM = 0x7E4A17
_SEED_SPAN = 2 ** 63


def _tenant_rng(seed: int | None):
    base = 0 if seed is None else int(seed)
    return new_rng((base * 0x9E3779B1 + _TENANT_STREAM) % _SEED_SPAN)


@dataclass(frozen=True)
class TenantSpec:
    """One request class sharing a served model.

    Attributes:
        name: Tenant identifier carried by its requests.
        priority: Scheduling priority (higher wins) under the
            ``priority_slack`` policy; ignored by ``youngest_first``.
        share: Relative weight of this tenant in the arrival stream
            (normalised over all declared tenants).
        ttft_slo_s: Time-to-first-token objective, seconds.
        tpot_slo_s: Time-per-output-token objective, seconds.
        token_rate_limit: Token-bucket refill rate, tokens/second;
            ``None`` admits without throttling.
        burst_tokens: Token-bucket capacity; defaults to one second of
            refill.  A request larger than the capacity can never be
            admitted and is rejected on arrival.
        prompt_tokens: Optional per-tenant mean prompt length override.
        output_tokens: Optional per-tenant mean output length override.
    """

    name: str
    priority: int = 0
    share: float = 1.0
    ttft_slo_s: float | None = None
    tpot_slo_s: float | None = None
    token_rate_limit: float | None = None
    burst_tokens: int | None = None
    prompt_tokens: int | None = None
    output_tokens: int | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError("name: must be a non-empty string")
        if (not isinstance(self.priority, int)
                or isinstance(self.priority, bool)):
            raise ConfigError(
                f"priority: must be an integer, got {self.priority!r}")
        self._positive_number("share", self.share)
        for field_name in ("ttft_slo_s", "tpot_slo_s",
                           "token_rate_limit"):
            value = getattr(self, field_name)
            if value is not None:
                self._positive_number(field_name, value)
        for field_name in ("burst_tokens", "prompt_tokens",
                           "output_tokens"):
            value = getattr(self, field_name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigError(
                    f"{field_name}: must be an integer, got {value!r}")
            if value <= 0:
                raise ConfigError(f"{field_name}: must be > 0")
        if self.burst_tokens is not None and self.token_rate_limit is None:
            raise ConfigError(
                "burst_tokens: requires token_rate_limit")

    @staticmethod
    def _positive_number(field_name: str, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigError(
                f"{field_name}: must be a number, got {value!r}")
        if value <= 0:
            raise ConfigError(f"{field_name}: must be > 0")

    @property
    def bucket_capacity(self) -> float | None:
        """Token-bucket capacity: explicit, or one second of refill."""
        if self.token_rate_limit is None:
            return None
        if self.burst_tokens is not None:
            return float(self.burst_tokens)
        return float(self.token_rate_limit)

    def to_dict(self) -> dict[str, Any]:
        """Plain-type payload; :meth:`from_dict` inverts it exactly."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TenantSpec":
        """Build from a mapping, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise ConfigError(f"expected a mapping, got "
                              f"{type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"{unknown[0]}: unknown field (known: "
                f"{', '.join(sorted(known))})")
        return cls(**dict(payload))


def validate_tenants(tenants: Sequence[TenantSpec]) -> None:
    """Cross-tenant invariants: unique names."""
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        dup = next(n for n in names if names.count(n) > 1)
        raise ConfigError(f"duplicate tenant name {dup!r}")


def assign_tenants(trace: Sequence[Request],
                   tenants: Sequence[TenantSpec],
                   seed: int | None = None,
                   jitter: float = 0.5,
                   eos_sampling: bool = False) -> list[Request]:
    """Stamp a trace with tenant identities, deterministically.

    Each request draws its tenant by normalised ``share`` from an RNG
    stream derived off ``seed`` (the base trace's arrivals and lengths
    are untouched).  Tenants that override ``prompt_tokens`` /
    ``output_tokens`` re-draw those lengths from the same stream, so
    per-tenant length skew composes with any arrival shape.
    """
    if not tenants:
        return list(trace)
    validate_tenants(tenants)
    rng = _tenant_rng(seed)
    total_share = sum(t.share for t in tenants)
    probs = [t.share / total_share for t in tenants]
    picks = rng.choice(len(tenants), size=len(trace), p=probs)
    out: list[Request] = []
    for req, pick in zip(trace, picks):
        tenant = tenants[int(pick)]
        prompt_tokens = req.prompt_tokens
        output_tokens = req.output_tokens
        if tenant.prompt_tokens is not None:
            prompt_tokens = int(_sample_lengths(
                rng, 1, tenant.prompt_tokens, jitter)[0])
        if tenant.output_tokens is not None:
            output_tokens = int(_sample_output_lengths(
                rng, 1, tenant.output_tokens, jitter, eos_sampling)[0])
        out.append(Request(rid=req.rid, arrival_s=req.arrival_s,
                           prompt_tokens=prompt_tokens,
                           output_tokens=output_tokens,
                           tenant=tenant.name))
    return out
