"""Non-stationary arrival generators: diurnal and flash-crowd shapes.

Both are built by *thinning* (Lewis & Shedler): draw candidate arrivals
from a homogeneous Poisson process at the peak rate, then accept each
candidate with probability ``rate(t) / peak``.  The result is an exact
non-homogeneous Poisson process with the target rate function, fully
deterministic under the trace seed — one accept/reject draw per
candidate, no numeric integration.

* :func:`diurnal_trace` — sinusoidal day/night load:
  ``rate(t) = qps * (1 + amplitude * sin(2*pi*t / period_s))``;
* :func:`flash_crowd_trace` — a stationary baseline with a rate spike
  of ``crowd_factor`` times the baseline over a fixed window, the
  "everyone refreshes at once" shape that stresses admission control.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import new_rng
from repro.workloads.traces import (
    _build,
    _sample_lengths,
    _sample_output_lengths,
)


def _thinned_arrivals(rng: np.random.Generator, num_requests: int,
                      peak_qps: float,
                      rate_fn: Callable[[float], float]) -> np.ndarray:
    """Arrival times of a non-homogeneous Poisson process by thinning.

    Candidates arrive at ``peak_qps``; a candidate at ``t`` survives
    with probability ``rate_fn(t) / peak_qps``.  The first accepted
    arrival is shifted to ``t = 0`` (the convention every trace
    generator here follows).
    """
    arrivals = np.empty(num_requests)
    clock = 0.0
    accepted = 0
    while accepted < num_requests:
        clock += float(rng.exponential(1.0 / peak_qps))
        if float(rng.uniform()) * peak_qps <= rate_fn(clock):
            arrivals[accepted] = clock
            accepted += 1
    return arrivals - arrivals[0]


def diurnal_trace(num_requests: int, rate_qps: float,
                  period_s: float = 60.0, amplitude: float = 0.5,
                  prompt_tokens: int = 512, output_tokens: int = 64,
                  jitter: float = 0.5,
                  seed: int | np.random.Generator | None = None,
                  eos_sampling: bool = False):
    """Sinusoidally modulated arrivals with mean rate ``rate_qps``.

    ``period_s`` is the day length in simulated seconds (scaled down
    from 24 h so short runs still sweep a full cycle); ``amplitude`` in
    ``[0, 1]`` is the peak-to-mean rate swing — ``0`` degenerates to
    :func:`repro.workloads.traces.poisson_trace`'s stationary rate,
    ``1`` idles the trough completely.
    """
    if num_requests <= 0:
        raise ConfigError("num_requests must be positive")
    if rate_qps <= 0:
        raise ConfigError("rate_qps must be positive")
    if period_s <= 0:
        raise ConfigError("period_s must be positive")
    if not 0.0 <= amplitude <= 1.0:
        raise ConfigError("amplitude must be in [0, 1]")
    rng = new_rng(seed)
    omega = 2.0 * np.pi / period_s
    peak = rate_qps * (1.0 + amplitude)

    def rate(t: float) -> float:
        return rate_qps * (1.0 + amplitude * np.sin(omega * t))

    arrivals = _thinned_arrivals(rng, num_requests, peak, rate)
    prompts = _sample_lengths(rng, num_requests, prompt_tokens, jitter)
    outputs = _sample_output_lengths(rng, num_requests, output_tokens,
                                     jitter, eos_sampling)
    return _build(arrivals, prompts, outputs)


def flash_crowd_trace(num_requests: int, rate_qps: float,
                      crowd_factor: float = 8.0,
                      crowd_start_s: float = 5.0,
                      crowd_duration_s: float = 5.0,
                      prompt_tokens: int = 512, output_tokens: int = 64,
                      jitter: float = 0.5,
                      seed: int | np.random.Generator | None = None,
                      eos_sampling: bool = False):
    """A stationary baseline with one flash-crowd rate spike.

    The rate is ``rate_qps`` except over ``[crowd_start_s,
    crowd_start_s + crowd_duration_s)``, where it jumps to
    ``crowd_factor`` times the baseline — the shape that separates
    admission-controlled engines from ones that melt down.
    """
    if num_requests <= 0:
        raise ConfigError("num_requests must be positive")
    if rate_qps <= 0:
        raise ConfigError("rate_qps must be positive")
    if crowd_factor <= 1.0:
        raise ConfigError("crowd_factor must exceed 1")
    if crowd_start_s < 0:
        raise ConfigError("crowd_start_s must be >= 0")
    if crowd_duration_s <= 0:
        raise ConfigError("crowd_duration_s must be positive")
    rng = new_rng(seed)
    peak = rate_qps * crowd_factor
    crowd_end_s = crowd_start_s + crowd_duration_s

    def rate(t: float) -> float:
        return peak if crowd_start_s <= t < crowd_end_s else rate_qps

    arrivals = _thinned_arrivals(rng, num_requests, peak, rate)
    prompts = _sample_lengths(rng, num_requests, prompt_tokens, jitter)
    outputs = _sample_output_lengths(rng, num_requests, output_tokens,
                                     jitter, eos_sampling)
    return _build(arrivals, prompts, outputs)
