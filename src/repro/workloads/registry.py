"""The workload registry: every arrival-trace shape as a named factory.

:data:`WORKLOADS` maps a workload ``kind`` (the ``workload.kind`` spec
field, the ``--workload`` flag) to a :class:`WorkloadFactory` carrying
capability metadata — whether the shape is stationary, whether it
comes from a file, and exactly which workload-spec options it consumes
— plus the build callable.  ``repro list workloads`` renders the
table; :meth:`WorkloadFactory.build_from_options` is the single
dispatch point :class:`repro.api.Deployment` builds traces through,
passing the full normalised option dict and letting each factory pick
the subset it declared.

Third-party shapes plug in by registering a factory; a spec naming it
then validates and builds with no repro internals edited::

    from repro.workloads import WORKLOADS, WorkloadFactory

    WORKLOADS.register("replayed-prod", WorkloadFactory(
        name="replayed-prod", summary="our production capture",
        params=("requests", "seed"), build=my_build))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError, InternalError
from repro.registry.core import Registry
from repro.workloads.generators import diurnal_trace, flash_crowd_trace
from repro.workloads.trace_file import load_trace_csv
from repro.workloads.traces import Request, bursty_trace, poisson_trace

#: Options shared by every synthetic generator (the length model and
#: the seed); factories list the subset they read in ``params``.
SHARED_PARAMS = ("requests", "qps", "prompt_tokens", "output_tokens",
                 "jitter", "eos_sampling", "seed")


@dataclass(frozen=True)
class WorkloadFactory:
    """One registered arrival-trace shape plus its capability card.

    Attributes:
        name: Registry key (``workload.kind``).
        summary: One-line description for ``repro list workloads``.
        params: Workload-spec option names this factory consumes;
            :meth:`build_from_options` passes exactly these through.
        build: ``build(**options) -> list[Request]``.
        stationary: Constant long-run arrival rate (diurnal and
            flash-crowd shapes are not).
        from_file: Trace is replayed from a file rather than generated.
    """

    name: str
    summary: str
    params: tuple[str, ...]
    build: Callable[..., "list[Request]"]
    stationary: bool = True
    from_file: bool = False

    def build_from_options(self, **options) -> "list[Request]":
        """Build the trace from a full option dict (extras ignored)."""
        missing = [p for p in self.params if p not in options]
        if missing:
            raise InternalError(
                f"workload {self.name!r} needs option(s) "
                f"{', '.join(missing)}")
        return self.build(**{p: options[p] for p in self.params})

    def describe(self) -> str:
        """Capability line for ``repro list workloads``."""
        source = "file" if self.from_file else "synthetic"
        shape = "stationary" if self.stationary else "non-stationary"
        return (f"{self.summary} ({source}, {shape}; options: "
                f"{', '.join(self.params)})")


WORKLOADS: Registry[WorkloadFactory] = Registry("workload")


def _build_poisson(requests, qps, prompt_tokens, output_tokens, jitter,
                   eos_sampling, seed):
    return poisson_trace(requests, qps, prompt_tokens=prompt_tokens,
                         output_tokens=output_tokens, jitter=jitter,
                         seed=seed, eos_sampling=eos_sampling)


def _build_bursty(requests, qps, prompt_tokens, output_tokens, jitter,
                  eos_sampling, seed, burst_factor, burst_len):
    return bursty_trace(requests, qps, burst_factor=burst_factor,
                        burst_len=burst_len, prompt_tokens=prompt_tokens,
                        output_tokens=output_tokens, jitter=jitter,
                        seed=seed, eos_sampling=eos_sampling)


def _build_diurnal(requests, qps, prompt_tokens, output_tokens, jitter,
                   eos_sampling, seed, period_s, amplitude):
    return diurnal_trace(requests, qps, period_s=period_s,
                         amplitude=amplitude, prompt_tokens=prompt_tokens,
                         output_tokens=output_tokens, jitter=jitter,
                         seed=seed, eos_sampling=eos_sampling)


def _build_flash_crowd(requests, qps, prompt_tokens, output_tokens,
                       jitter, eos_sampling, seed, crowd_factor,
                       crowd_start_s, crowd_duration_s):
    return flash_crowd_trace(requests, qps, crowd_factor=crowd_factor,
                             crowd_start_s=crowd_start_s,
                             crowd_duration_s=crowd_duration_s,
                             prompt_tokens=prompt_tokens,
                             output_tokens=output_tokens, jitter=jitter,
                             seed=seed, eos_sampling=eos_sampling)


def _build_trace_file(trace_path):
    if not trace_path:
        raise ConfigError(
            "workload.trace_path: required for kind 'trace'")
    return load_trace_csv(trace_path)


WORKLOADS.register("poisson", WorkloadFactory(
    name="poisson",
    summary="memoryless open-loop arrivals at a target QPS",
    params=SHARED_PARAMS,
    build=_build_poisson))

WORKLOADS.register("bursty", WorkloadFactory(
    name="bursty",
    summary="on/off bursts around the mean rate (convoy stressor)",
    params=SHARED_PARAMS + ("burst_factor", "burst_len"),
    build=_build_bursty))

WORKLOADS.register("diurnal", WorkloadFactory(
    name="diurnal",
    summary="sinusoidal day/night load (thinned Poisson)",
    params=SHARED_PARAMS + ("period_s", "amplitude"),
    build=_build_diurnal,
    stationary=False))

WORKLOADS.register("flash_crowd", WorkloadFactory(
    name="flash_crowd",
    summary="stationary baseline with one rate spike window",
    params=SHARED_PARAMS + ("crowd_factor", "crowd_start_s",
                            "crowd_duration_s"),
    build=_build_flash_crowd,
    stationary=False))

WORKLOADS.register("trace", WorkloadFactory(
    name="trace",
    summary="replay an Azure-style CSV trace file",
    params=("trace_path",),
    build=_build_trace_file,
    from_file=True))
