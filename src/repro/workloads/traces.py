"""Serving requests and the base arrival-trace generators.

A :class:`Request` is the unit of admission: a prompt to prefill and a
known number of tokens to decode.  By default output lengths are drawn
from a narrow uniform band so engines see near-identical work; with
``eos_sampling=True`` they are geometric — each decode step "emits EOS"
with probability ``1/output_tokens``, the memoryless stop real
deployments exhibit — while staying deterministic under the trace seed,
so runs remain reproducible and comparable across engines.  Three trace
shapes cover the evaluation space:

* :func:`poisson_trace` — memoryless arrivals at a target QPS, the
  standard open-loop serving benchmark;
* :func:`bursty_trace`  — on/off modulated arrivals with the same mean
  rate, the workload where continuous batching's incremental admission
  beats static batching's convoy effect;
* :func:`replay_trace`  — replay recorded ``(arrival, prompt, output)``
  triples, e.g. from a production log.

The non-stationary shapes (diurnal, flash-crowd) build on these in
:mod:`repro.workloads.generators`; every shape is discoverable through
the :data:`repro.workloads.WORKLOADS` registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import new_rng

#: Tenant name of requests that never declared one: every pre-tenant
#: trace (and every generator called without tenant assignment) yields
#: requests of this single implicit tenant.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class Request:
    """One inference request in an arrival trace."""

    rid: int
    arrival_s: float
    prompt_tokens: int
    output_tokens: int
    tenant: str = DEFAULT_TENANT

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ConfigError(f"request {self.rid}: negative arrival time")
        if self.prompt_tokens <= 0:
            raise ConfigError(f"request {self.rid}: empty prompt")
        if self.output_tokens <= 0:
            raise ConfigError(f"request {self.rid}: no output requested")
        if not self.tenant or not isinstance(self.tenant, str):
            raise ConfigError(f"request {self.rid}: tenant must be a "
                              f"non-empty string")

    @property
    def total_tokens(self) -> int:
        """Peak KV-cache length: prompt plus every generated token."""
        return self.prompt_tokens + self.output_tokens


def _sample_lengths(rng: np.random.Generator, count: int, mean: int,
                    jitter: float) -> np.ndarray:
    """Integer lengths around ``mean`` with +/- ``jitter`` spread."""
    if mean <= 0:
        raise ConfigError("mean token length must be positive")
    if not 0.0 <= jitter < 1.0:
        raise ConfigError("jitter must be in [0, 1)")
    low = max(1, int(round(mean * (1.0 - jitter))))
    high = max(low + 1, int(round(mean * (1.0 + jitter))) + 1)
    return rng.integers(low, high, size=count)


def _sample_output_lengths(rng: np.random.Generator, count: int,
                           mean: int, jitter: float,
                           eos_sampling: bool) -> np.ndarray:
    """Output lengths: uniform band, or EOS-geometric when flagged.

    Geometric with ``p = 1/mean`` models a memoryless per-token EOS
    probability (support >= 1, mean = ``mean``), seeded by the trace
    RNG so runs stay deterministic.
    """
    if not eos_sampling:
        return _sample_lengths(rng, count, mean, jitter)
    if mean <= 0:
        raise ConfigError("mean output length must be positive")
    return rng.geometric(1.0 / mean, size=count)


def _build(arrivals: np.ndarray, prompts: np.ndarray,
           outputs: np.ndarray) -> list[Request]:
    return [Request(rid=i, arrival_s=float(t), prompt_tokens=int(p),
                    output_tokens=int(o))
            for i, (t, p, o) in enumerate(zip(arrivals, prompts, outputs))]


def poisson_trace(num_requests: int, rate_qps: float,
                  prompt_tokens: int = 512, output_tokens: int = 64,
                  jitter: float = 0.5,
                  seed: int | np.random.Generator | None = None,
                  eos_sampling: bool = False) -> list[Request]:
    """Open-loop Poisson arrivals at ``rate_qps`` requests/second.

    With ``eos_sampling`` the output lengths are geometric with mean
    ``output_tokens`` (per-token EOS probability) instead of a uniform
    jitter band.
    """
    if num_requests <= 0:
        raise ConfigError("num_requests must be positive")
    if rate_qps <= 0:
        raise ConfigError("rate_qps must be positive")
    rng = new_rng(seed)
    gaps = rng.exponential(1.0 / rate_qps, size=num_requests)
    arrivals = np.cumsum(gaps) - gaps[0]          # first request at t=0
    prompts = _sample_lengths(rng, num_requests, prompt_tokens, jitter)
    outputs = _sample_output_lengths(rng, num_requests, output_tokens,
                                     jitter, eos_sampling)
    return _build(arrivals, prompts, outputs)


def bursty_trace(num_requests: int, rate_qps: float,
                 burst_factor: float = 8.0, burst_len: int = 16,
                 prompt_tokens: int = 512, output_tokens: int = 64,
                 jitter: float = 0.5,
                 seed: int | np.random.Generator | None = None,
                 eos_sampling: bool = False) -> list[Request]:
    """On/off bursts with mean rate ``rate_qps``.

    Requests arrive in bursts of ``burst_len`` at ``burst_factor`` times
    the mean rate, separated by idle gaps sized so the long-run rate
    stays ``rate_qps`` — the workload that exposes the convoy effect of
    static batching.  ``eos_sampling`` switches output lengths to the
    geometric EOS model (see :func:`poisson_trace`).
    """
    if burst_factor <= 1.0:
        raise ConfigError("burst_factor must exceed 1")
    if burst_len <= 0:
        raise ConfigError("burst_len must be positive")
    rng = new_rng(seed)
    fast = rate_qps * burst_factor
    # Idle gap per burst restores the mean: a burst of n requests takes
    # n/fast seconds but should occupy n/rate on average.
    idle = burst_len / rate_qps - burst_len / fast
    arrivals = np.empty(num_requests)
    clock = 0.0
    for i in range(num_requests):
        if i > 0 and i % burst_len == 0:
            clock += idle * float(rng.uniform(0.5, 1.5))
        clock += float(rng.exponential(1.0 / fast))
        arrivals[i] = clock
    arrivals -= arrivals[0]
    prompts = _sample_lengths(rng, num_requests, prompt_tokens, jitter)
    outputs = _sample_output_lengths(rng, num_requests, output_tokens,
                                     jitter, eos_sampling)
    return _build(arrivals, prompts, outputs)


def replay_trace(records: Iterable[Mapping[str, float] | Sequence[float]]
                 ) -> list[Request]:
    """Build a trace from recorded triples.

    Each record is either a mapping with ``arrival_s`` /
    ``prompt_tokens`` / ``output_tokens`` keys (plus an optional
    ``tenant``) or a positional ``(arrival_s, prompt_tokens,
    output_tokens)`` sequence.  Records are sorted by arrival time and
    re-numbered.
    """
    parsed: list[tuple[float, int, int, str]] = []
    for record in records:
        if isinstance(record, Mapping):
            parsed.append((float(record["arrival_s"]),
                           int(record["prompt_tokens"]),
                           int(record["output_tokens"]),
                           str(record.get("tenant", DEFAULT_TENANT))))
        else:
            arrival, prompt, output = record
            parsed.append((float(arrival), int(prompt), int(output),
                           DEFAULT_TENANT))
    if not parsed:
        raise ConfigError("replay trace is empty")
    parsed.sort(key=lambda rec: rec[0])
    return [Request(rid=i, arrival_s=t, prompt_tokens=p, output_tokens=o,
                    tenant=tenant)
            for i, (t, p, o, tenant) in enumerate(parsed)]


def validate_trace(trace: Sequence[Request]) -> None:
    """Check trace invariants: sorted arrivals, unique ids."""
    if not trace:
        raise ConfigError("trace is empty")
    ids = {req.rid for req in trace}
    if len(ids) != len(trace):
        raise ConfigError("duplicate request ids in trace")
    for prev, cur in zip(trace, trace[1:]):
        if cur.arrival_s < prev.arrival_s:
            raise ConfigError("trace arrivals must be non-decreasing")
