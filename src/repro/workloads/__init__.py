"""Workload trace library: every load shape the simulator can face.

One package owns workload definition end to end:

* :mod:`repro.workloads.traces` — the :class:`Request` unit and the
  stationary base generators (Poisson, bursty, replay);
* :mod:`repro.workloads.generators` — non-stationary shapes (diurnal,
  flash-crowd) built by thinning;
* :mod:`repro.workloads.trace_file` — Azure-style CSV trace replay;
* :mod:`repro.workloads.tenants` — multi-tenant request classes
  (:class:`TenantSpec`: priority, TTFT/TPOT SLOs, token-rate limits)
  and deterministic tenant assignment;
* :mod:`repro.workloads.registry` — the :data:`WORKLOADS` registry of
  :class:`WorkloadFactory` entries (``repro list workloads``);
* :mod:`repro.workloads.gemm` — the kernel-benchmark GEMM case suites.

``repro.serve.request`` and ``repro.bench.workloads`` remain as
re-export shims, so pre-package imports keep working unchanged.
"""

from repro.workloads.gemm import (
    DIM_GRID,
    SYNTHETIC_CASE_COUNT,
    GemmCase,
    realistic_cases,
    scaling_cases,
    synthetic_cases,
)
from repro.workloads.generators import diurnal_trace, flash_crowd_trace
from repro.workloads.registry import (
    SHARED_PARAMS,
    WORKLOADS,
    WorkloadFactory,
)
from repro.workloads.tenants import (
    TenantSpec,
    assign_tenants,
    validate_tenants,
)
from repro.workloads.trace_file import (
    COLUMN_ALIASES,
    REQUIRED_COLUMNS,
    load_trace_csv,
)
from repro.workloads.traces import (
    DEFAULT_TENANT,
    Request,
    bursty_trace,
    poisson_trace,
    replay_trace,
    validate_trace,
)

__all__ = [
    "DEFAULT_TENANT",
    "Request",
    "poisson_trace",
    "bursty_trace",
    "replay_trace",
    "validate_trace",
    "diurnal_trace",
    "flash_crowd_trace",
    "load_trace_csv",
    "REQUIRED_COLUMNS",
    "COLUMN_ALIASES",
    "TenantSpec",
    "assign_tenants",
    "validate_tenants",
    "WORKLOADS",
    "WorkloadFactory",
    "SHARED_PARAMS",
    "GemmCase",
    "DIM_GRID",
    "SYNTHETIC_CASE_COUNT",
    "synthetic_cases",
    "realistic_cases",
    "scaling_cases",
]
