"""Real-trace loader: Azure-LLM-inference-style CSV files.

One row per request with columns ``arrival_s``, ``prompt_tokens``,
``output_tokens`` and an optional ``tenant``.  The Azure LLM inference
trace's own headers (``TIMESTAMP`` / ``ContextTokens`` /
``GeneratedTokens``) are accepted as aliases, so a trimmed export loads
unmodified.  Validation is strict and path-qualified in the
``file.csv:row`` style: missing or unknown columns, non-numeric cells
and non-positive token counts all raise
:class:`~repro.errors.ConfigError` naming the exact cell.  Out-of-order
arrival times are *sorted with a* ``UserWarning`` (not an error):
production traces routinely interleave near-simultaneous rows, and the
sorted trace is what every scheduler consumes anyway.  This choice is
pinned by ``tests/test_workloads.py``.
"""

from __future__ import annotations

import csv
import os
import warnings

from repro.errors import ConfigError
from repro.workloads.traces import DEFAULT_TENANT, Request

#: Canonical required columns, in documentation order.
REQUIRED_COLUMNS = ("arrival_s", "prompt_tokens", "output_tokens")

#: Optional columns (absent -> every request is the default tenant).
OPTIONAL_COLUMNS = ("tenant",)

#: Case-insensitive header aliases (Azure LLM inference trace names).
COLUMN_ALIASES = {
    "timestamp": "arrival_s",
    "arrival": "arrival_s",
    "contexttokens": "prompt_tokens",
    "generatedtokens": "output_tokens",
    "tenant_id": "tenant",
}


def _canonical(header: str) -> str:
    name = header.strip().lower()
    return COLUMN_ALIASES.get(name, name)


def load_trace_csv(path: str | os.PathLike) -> list[Request]:
    """Load an arrival trace from ``path``.

    Returns requests sorted by arrival time and re-numbered from 0,
    with arrivals shifted so the first request lands at ``t = 0``
    (the convention of every generated trace, so a replayed file is
    directly comparable to a synthetic one).
    """
    path = os.fspath(path)
    try:
        handle = open(path, newline="")
    except OSError as exc:
        raise ConfigError(f"{path}: cannot read trace ({exc})") from None
    with handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ConfigError(f"{path}: trace file is empty") from None
        columns = [_canonical(name) for name in header]
        known = set(REQUIRED_COLUMNS) | set(OPTIONAL_COLUMNS)
        unknown = [raw for raw, name in zip(header, columns)
                   if name not in known]
        if unknown:
            raise ConfigError(
                f"{path}: unknown column {unknown[0]!r} (known: "
                f"{', '.join(REQUIRED_COLUMNS + OPTIONAL_COLUMNS)}; "
                f"Azure-style aliases accepted)")
        missing = [name for name in REQUIRED_COLUMNS
                   if name not in columns]
        if missing:
            raise ConfigError(
                f"{path}: missing column(s) {', '.join(missing)} "
                f"(found: {', '.join(columns) or 'none'})")
        dupes = [name for name in set(columns) if columns.count(name) > 1]
        if dupes:
            raise ConfigError(f"{path}: duplicate column {dupes[0]!r}")
        index = {name: i for i, name in enumerate(columns)}
        rows: list[tuple[float, int, int, str]] = []
        for lineno, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue                       # blank line
            if len(row) != len(columns):
                raise ConfigError(
                    f"{path}:{lineno}: expected {len(columns)} cells, "
                    f"got {len(row)}")
            arrival = _parse_float(path, lineno, "arrival_s",
                                   row[index["arrival_s"]])
            prompt = _parse_int(path, lineno, "prompt_tokens",
                                row[index["prompt_tokens"]])
            output = _parse_int(path, lineno, "output_tokens",
                                row[index["output_tokens"]])
            if arrival < 0:
                raise ConfigError(
                    f"{path}:{lineno}: arrival_s must be >= 0, "
                    f"got {arrival}")
            if prompt <= 0:
                raise ConfigError(
                    f"{path}:{lineno}: prompt_tokens must be > 0, "
                    f"got {prompt}")
            if output <= 0:
                raise ConfigError(
                    f"{path}:{lineno}: output_tokens must be > 0, "
                    f"got {output}")
            tenant = DEFAULT_TENANT
            if "tenant" in index:
                tenant = row[index["tenant"]].strip() or DEFAULT_TENANT
            rows.append((arrival, prompt, output, tenant))
    if not rows:
        raise ConfigError(f"{path}: trace has a header but no rows")
    arrivals = [r[0] for r in rows]
    if any(b < a for a, b in zip(arrivals, arrivals[1:])):
        warnings.warn(f"{path}: arrival times out of order; sorting",
                      stacklevel=2)
        rows.sort(key=lambda r: r[0])
    start = rows[0][0]
    return [Request(rid=i, arrival_s=arrival - start,
                    prompt_tokens=prompt, output_tokens=output,
                    tenant=tenant)
            for i, (arrival, prompt, output, tenant) in enumerate(rows)]


def _parse_float(path: str, lineno: int, column: str,
                 cell: str) -> float:
    try:
        return float(cell)
    except ValueError:
        raise ConfigError(
            f"{path}:{lineno}: {column} must be a number, "
            f"got {cell!r}") from None


def _parse_int(path: str, lineno: int, column: str, cell: str) -> int:
    try:
        return int(float(cell))   # "512.0" exports are common
    except ValueError:
        raise ConfigError(
            f"{path}:{lineno}: {column} must be an integer, "
            f"got {cell!r}") from None
