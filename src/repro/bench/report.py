"""Plain-text report rendering for benchmark results.

The paper presents results as figures; this harness prints the same data
as aligned text tables so each bench target's output can be compared line
by line with the paper (EXPERIMENTS.md records both).
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[object],
                  series: dict[str, Sequence[float | None]],
                  x_label: str = "x") -> str:
    """Figure-style data: one row per x, one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        row: list[object] = [x]
        for key in series:
            row.append(series[key][i])
        rows.append(row)
    return render_table(headers, rows, title=name)


def render_json(payload: object, indent: int = 2) -> str:
    """Canonical JSON rendering for machine-readable reports.

    Keys keep insertion order (report dataclasses emit them in a stable
    order already) and floats round-trip exactly, so two runs with the
    same seed produce byte-identical reports.
    """
    return json.dumps(payload, indent=indent, allow_nan=False)


def _fmt(value: object) -> str:
    if value is None:
        return "OOM/NS"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def fmt_speedup(x: float | None) -> str:
    return "OOM/NS" if x is None else f"{x:.2f}x"
