"""Deprecation shim: GEMM cases live in :mod:`repro.workloads.gemm`.

.. deprecated::
    Import the benchmark case suites from :mod:`repro.workloads.gemm`
    instead.  The workload package is the single home for workload
    definition — arrival traces and kernel benchmark shapes; this
    module re-exports them unchanged for the pre-package import path
    ``repro.bench.workloads`` and will be removed once external
    callers have migrated; nothing inside ``src/`` imports it any
    more.
"""

from repro.workloads.gemm import (  # noqa: F401
    DIM_GRID,
    SYNTHETIC_CASE_COUNT,
    GemmCase,
    realistic_cases,
    scaling_cases,
    synthetic_cases,
)

__all__ = [
    "DIM_GRID",
    "SYNTHETIC_CASE_COUNT",
    "GemmCase",
    "synthetic_cases",
    "realistic_cases",
    "scaling_cases",
]
