"""Deprecation shim: GEMM cases live in :mod:`repro.workloads.gemm`.

The benchmark case suites moved into the workload package so every
workload definition — arrival traces and kernel benchmark shapes —
has one home; this module re-exports them unchanged for the
pre-package import path ``repro.bench.workloads``.
"""

from repro.workloads.gemm import (  # noqa: F401
    DIM_GRID,
    SYNTHETIC_CASE_COUNT,
    GemmCase,
    realistic_cases,
    scaling_cases,
    synthetic_cases,
)

__all__ = [
    "DIM_GRID",
    "SYNTHETIC_CASE_COUNT",
    "GemmCase",
    "synthetic_cases",
    "realistic_cases",
    "scaling_cases",
]
