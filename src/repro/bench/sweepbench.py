"""``repro bench sweepbench`` — the parallel executor's own benchmark.

``repro bench sim`` (:mod:`repro.bench.simbench`) tracks how fast one
simulation runs; this module tracks how fast a *sweep* of simulations
runs.  The protocol: a fixed 32-point grid (engine × qps × prompt ×
output axes over the Table-2 Mixtral model, the shape of the Fig
12/13/16 capacity sweeps), executed twice through the same
:class:`~repro.exec.PointRunner` — once serially in-process, once
fanned over ``--jobs`` worker processes with a warm shared dispatch
table — and ``BENCH_sweep.json`` records both wall clocks, their
ratio, and the measuring host.

Two properties are gated, not just recorded:

* **determinism** — the serial and parallel report payloads must be
  identical (the executor's core contract); a divergence fails the
  ``--check`` gate regardless of speed;
* **speedup** — the wall-clock ratio must stay within tolerance of
  the checked-in baseline (``benchmarks/BENCH_baseline.json``'s
  ``sweep_speedup`` key).  The ratio is compared only on hosts with
  at least two CPUs: a 1-core container physically cannot exhibit a
  process-pool speedup, and the recorded ``host`` block (which the
  gate otherwise ignores) documents why such a payload shows ~1x.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.api.loader import expand_sweep
from repro.api.spec import DeploymentSpec
from repro.errors import ConfigError
from repro.exec import PointRunner, warm_selection_table
from repro.utils.host import host_metadata

#: Benchmark protocol: requests per grid point (the point cost must
#: dominate pool overhead for the ratio to be meaningful) and the
#: CI-sized variant that keeps the regime, and therefore the ratio,
#: comparable.
DEFAULT_POINT_REQUESTS = 600
QUICK_POINT_REQUESTS = 150
DEFAULT_JOBS = 4
DEFAULT_SEED = 7

SWEEP_BENCH_VERSION = 1

#: The fixed 32-point grid: 2 engines x 2 rates x 4 prompt lengths x
#: 2 output lengths.  The ``auto`` axis makes the warm shared
#: dispatch table part of the measured protocol, not just an option.
GRID_AXES: "dict[str, list]" = {
    "model.engine": ["samoyeds", "auto"],
    "workload.qps": [4.0, 8.0],
    "workload.prompt_tokens": [64, 128, 256, 512],
    "workload.output_tokens": [16, 32],
}

BASE_CONFIG: "dict[str, dict]" = {
    "model": {"name": "mixtral-8x7b", "engine": "samoyeds",
              "num_layers": 1},
    "hardware": {"gpu": "a100"},
    "workload": {"kind": "poisson", "qps": 8.0, "prompt_tokens": 128,
                 "output_tokens": 32},
}


def sweep_points(requests: int = DEFAULT_POINT_REQUESTS,
                 seed: int = DEFAULT_SEED):
    """The benchmark grid as expanded sweep points."""
    if requests <= 0:
        raise ConfigError("requests per point must be positive")
    raw = {section: dict(fields)
           for section, fields in BASE_CONFIG.items()}
    raw["workload"] = {**raw["workload"], "requests": requests,
                       "seed": seed}
    base = DeploymentSpec.from_dict(raw)
    return expand_sweep(base, GRID_AXES)


def _timed_sweep(runner: PointRunner, specs, labels
                 ) -> "tuple[float, list]":
    start = time.perf_counter()
    results = runner.run(specs, labels)
    return time.perf_counter() - start, results


def run_benchmark(jobs: int = DEFAULT_JOBS,
                  requests: int = DEFAULT_POINT_REQUESTS,
                  seed: int = DEFAULT_SEED,
                  progress=None) -> dict:
    """Run the two-sided sweep benchmark and return the payload.

    The same grid is executed serially and through ``jobs`` worker
    processes (with the warm-table pre-pass); the payload records
    both wall clocks, the ratio, whether the payloads came out
    identical, and the measuring host.
    """
    if jobs < 1:
        raise ConfigError("jobs must be a positive integer")
    points = sweep_points(requests=requests, seed=seed)
    specs = [p.spec for p in points]
    labels = [p.describe() for p in points]

    serial_wall_s, serial = _timed_sweep(
        PointRunner(jobs=1, progress=progress), specs, labels)

    with tempfile.TemporaryDirectory(prefix="repro-sweepbench-") as tmp:
        table_path = os.path.join(tmp, "dispatch-table.json")
        warm_selection_table(specs, table_path)
        parallel_wall_s, parallel = _timed_sweep(
            PointRunner(jobs=jobs, table_path=table_path,
                        progress=progress), specs, labels)

    identical = ([r.report for r in serial]
                 == [r.report for r in parallel])
    return {
        "version": SWEEP_BENCH_VERSION,
        "host": host_metadata(),
        "grid": {
            "points": len(points),
            "requests_per_point": requests,
            "seed": seed,
            "base": BASE_CONFIG,
            "axes": {path: list(values)
                     for path, values in GRID_AXES.items()},
        },
        "serial": {
            "wall_s": serial_wall_s,
            "points": len(serial),
            "errors": sum(1 for r in serial if not r.ok),
        },
        "parallel": {
            "wall_s": parallel_wall_s,
            "jobs": jobs,
            "points": len(parallel),
            "errors": sum(1 for r in parallel if not r.ok),
        },
        "speedup": {
            "wall_clock": (serial_wall_s / parallel_wall_s
                           if parallel_wall_s > 0 else 0.0),
        },
        "payloads_identical": identical,
    }


def check_regression(payload: dict, baseline_path: "str | Path",
                     tolerance: float = 0.30) -> "str | None":
    """Gate a sweepbench payload against the checked-in baseline.

    Determinism is gated unconditionally: diverging serial/parallel
    payloads fail on any host.  The wall-clock speedup is gated only
    on hosts with >= 2 CPUs (``baseline['sweep_speedup']`` minus the
    tolerance); the ``host`` block is otherwise ignored, keeping
    cross-machine comparisons to the machine-independent ratio.
    Returns ``None`` when within tolerance, else a failure message.
    """
    if not payload.get("payloads_identical", False):
        return ("parallel sweep payloads diverged from serial — the "
                "executor's determinism contract is broken")
    path = Path(baseline_path)
    try:
        baseline = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from exc
    expected = baseline.get("sweep_speedup")
    if not isinstance(expected, (int, float)) or expected <= 0:
        raise ConfigError(
            f"baseline {path} lacks a positive sweep_speedup")
    cpus = payload.get("host", {}).get("cpu_count", 0)
    if isinstance(cpus, int) and cpus < 2:
        return None          # a 1-core host cannot show the ratio
    measured = payload["speedup"]["wall_clock"]
    floor = expected * (1.0 - tolerance)
    if measured < floor:
        return (f"sweep-throughput regression: speedup {measured:.2f}x "
                f"fell below {floor:.2f}x "
                f"({expected:.2f}x baseline - {tolerance:.0%} tolerance)")
    return None
