"""Per-experiment entry points: one function per table/figure of §6.

Every function runs the paper's workload on the simulated platform
(RTX 4070 Super unless the experiment itself is about other GPUs) and
returns an :class:`ExperimentResult` whose ``text`` is a paper-comparable
report.  ``EXPERIMENTS`` is the registry the ``benchmarks/`` suite and
the examples iterate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bench.harness import (
    adaptation_study,
    kernel_sweep,
    portability_sweep,
    speedup_stats,
)
from repro.bench.report import fmt_speedup, render_series, render_table
from repro.workloads.gemm import (
    realistic_cases,
    scaling_cases,
    synthetic_cases,
)
from repro.errors import CapacityError, ConfigError
from repro.hw.spec import get_gpu
from repro.kernels import KERNELS
from repro.kernels.layout import layout_speedup
from repro.kernels.ssmm_samoyeds import SamoyedsFeatures
from repro.models.decoder import decoder_cost
from repro.models.runner import end_to_end_speedups, throughput_sweep
from repro.moe.config import MODEL_REGISTRY
from repro.moe.layers import ENGINES, SamoyedsEngine
from repro.moe.memory_model import max_batch_size
from repro.pruning.evaluate import (
    evaluate_classifier_pruning,
    evaluate_lm_pruning,
)
from repro.pruning.tasks import make_classification_task, make_sequence_task
from repro.formats.samoyeds import PAPER_PATTERNS

DEV_GPU = "rtx4070s"

#: Sequence lengths per model for the batch/memory experiments (§6.3.2).
SEQ_FOR_MODEL = {
    "qwen2-moe": 4096,
    "deepseek-moe": 4096,
    "minicpm-moe": 1024,
    "openmoe-34b": 1024,
    "mixtral-8x7b": 1024,
    "mixtral-8x22b": 1024,
}


@dataclass
class ExperimentResult:
    """Structured data + printable report for one experiment."""

    experiment: str
    data: dict = field(default_factory=dict)
    text: str = ""


# ----------------------------------------------------------------------
# Figure 2 — decoder time breakdown
# ----------------------------------------------------------------------
def fig02_breakdown(tokens: int = 4096) -> ExperimentResult:
    """MoE-layer share of decoder time, with and without FlashAttention."""
    spec = get_gpu(DEV_GPU)
    rows = []
    data = {}
    for name, cfg in MODEL_REGISTRY.items():
        seq_tokens = min(tokens, cfg.max_seq_len)
        naive = decoder_cost(cfg, seq_tokens, spec,
                             engine="transformers", flash=False)
        flash = decoder_cost(cfg, seq_tokens, spec,
                             engine="transformers", flash=True)
        rows.append([name, f"{naive.moe_fraction:.1%}",
                     f"{flash.moe_fraction:.1%}"])
        data[name] = {"no_flash": naive.moe_fraction,
                      "flash": flash.moe_fraction}
    text = render_table(["model", "MoE share (no flash)",
                         "MoE share (flash)"], rows,
                        title="Figure 2: MoE-layer time share")
    return ExperimentResult("fig02", data=data, text=text)


# ----------------------------------------------------------------------
# Figure 11(b) — layout optimisation vs input sparsity
# ----------------------------------------------------------------------
def fig11_layout() -> ExperimentResult:
    """Compressed-output-layout speedup across input sparsity ratios."""
    spec = get_gpu(DEV_GPU)
    sparsities = [0.0, 0.25, 0.5, 0.75, 0.875]
    m, k, n_full = 4096, 4096, 4096
    speeds = []
    for s in sparsities:
        len_d = max(1, int(n_full * (1.0 - s)))
        speeds.append(layout_speedup(m, k, len_d, n_full, spec))
    text = render_series("Figure 11b: layout-optimisation speedup",
                         [f"{s:.1%}" for s in sparsities],
                         {"speedup": speeds}, x_label="input sparsity")
    return ExperimentResult("fig11", data={"sparsity": sparsities,
                                           "speedup": speeds}, text=text)


# ----------------------------------------------------------------------
# Figure 12 — kernel comparison, synthetic + realistic
# ----------------------------------------------------------------------
def fig12_kernels(synthetic_count: int = 238) -> ExperimentResult:
    """Samoyeds speedup over each baseline on both suites."""
    spec = get_gpu(DEV_GPU)
    syn = kernel_sweep(synthetic_cases(synthetic_count), spec)
    real = kernel_sweep(realistic_cases(), spec)
    syn_stats = speedup_stats(syn)
    real_stats = speedup_stats(real)
    rows = []
    for base in syn_stats:
        rows.append([base,
                     fmt_speedup(syn_stats[base]["max"]),
                     fmt_speedup(syn_stats[base]["geomean"]),
                     fmt_speedup(real_stats[base]["max"]),
                     fmt_speedup(real_stats[base]["geomean"])])
    text = render_table(
        ["baseline", "syn max", "syn geomean", "real max", "real geomean"],
        rows, title="Figure 12: Samoyeds kernel speedup over baselines")
    return ExperimentResult(
        "fig12", data={"synthetic": syn_stats, "realistic": real_stats},
        text=text)


# ----------------------------------------------------------------------
# Figure 13 — throughput vs operand size
# ----------------------------------------------------------------------
def fig13_scaling() -> ExperimentResult:
    """Throughput trend as each of m, k, n grows (others at 4096)."""
    spec = get_gpu(DEV_GPU)
    data = {}
    texts = []
    for dim in ("m", "k", "n"):
        cases = scaling_cases(dim)
        rows = kernel_sweep(cases, spec)
        series = {name: [r.tflops(name) for r in rows]
                  for name in KERNELS}
        data[dim] = {"sizes": [getattr(r.case, dim) for r in rows],
                     **series}
        texts.append(render_series(
            f"Figure 13: effective TFLOP/s vs {dim}",
            [getattr(r.case, dim) for r in rows], series, x_label=dim))
    return ExperimentResult("fig13", data=data, text="\n\n".join(texts))


# ----------------------------------------------------------------------
# Figure 14 — MoE layer speedup
# ----------------------------------------------------------------------
def fig14_moe_layer(tokens: int = 4096) -> ExperimentResult:
    """Engine speedups over Transformers, with and without shared experts."""
    spec = get_gpu(DEV_GPU)
    data = {}
    rows = []
    for shared in (2, 0):
        for name, cfg in MODEL_REGISTRY.items():
            base = ENGINES["transformers"].cost(cfg, tokens, spec,
                                                num_shared=shared)
            entry = {}
            for ename in ("megablocks", "vllm-ds", "samoyeds"):
                try:
                    c = ENGINES[ename].cost(cfg, tokens, spec,
                                            num_shared=shared)
                    entry[ename] = base.time_s / c.time_s
                except ConfigError:
                    entry[ename] = None
            data[(name, shared)] = entry
            rows.append([name, shared,
                         fmt_speedup(entry["megablocks"]),
                         fmt_speedup(entry["vllm-ds"]),
                         fmt_speedup(entry["samoyeds"])])
    text = render_table(
        ["model", "shared", "megablocks", "vllm-ds", "samoyeds"], rows,
        title="Figure 14: MoE-layer speedup over Transformers")
    return ExperimentResult("fig14", data={str(k): v
                                           for k, v in data.items()},
                            text=text)


# ----------------------------------------------------------------------
# Figure 15 — end-to-end speedup
# ----------------------------------------------------------------------
def fig15_end2end() -> ExperimentResult:
    """Decoder-layer speedup over Transformers at the paper's settings."""
    spec = get_gpu(DEV_GPU)
    settings = {
        "qwen2-moe": (16, 4096), "deepseek-moe": (16, 4096),
        "minicpm-moe": (1, 4096), "openmoe-34b": (1, 2048),
        "mixtral-8x7b": (1, 4096), "mixtral-8x22b": (1, 4096),
    }
    rows = []
    data = {}
    for name, cfg in MODEL_REGISTRY.items():
        batch, seq = settings[name]
        speed = end_to_end_speedups(cfg, spec, batch=batch, seq_len=seq)
        data[name] = speed
        rows.append([name, batch,
                     fmt_speedup(speed.get("megablocks")),
                     fmt_speedup(speed.get("vllm-ds")),
                     fmt_speedup(speed.get("pit")),
                     fmt_speedup(speed.get("samoyeds"))])
    text = render_table(
        ["model", "batch", "megablocks", "vllm-ds", "pit", "samoyeds"],
        rows, title="Figure 15: end-to-end speedup over Transformers")
    return ExperimentResult("fig15", data=data, text=text)


# ----------------------------------------------------------------------
# Figure 16 — throughput vs batch size
# ----------------------------------------------------------------------
def fig16_batch(batches: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
                ) -> ExperimentResult:
    """Tokens/s per engine as batch size grows."""
    spec = get_gpu(DEV_GPU)
    texts = []
    data = {}
    for name, cfg in MODEL_REGISTRY.items():
        seq = SEQ_FOR_MODEL[name]
        sweep = throughput_sweep(cfg, spec, list(batches), seq,
                                 engines=["transformers", "megablocks",
                                          "vllm-ds", "samoyeds"])
        series = {}
        for ename, points in sweep.items():
            series[ename] = [None if p is None else p.tokens_per_s
                             for p in points]
        data[name] = series
        texts.append(render_series(
            f"Figure 16: tokens/s vs batch — {name} (seq {seq})",
            list(batches), series, x_label="batch"))
    return ExperimentResult("fig16", data=data, text="\n\n".join(texts))


# ----------------------------------------------------------------------
# Table 3 — maximum batch sizes
# ----------------------------------------------------------------------
def tab03_max_batch() -> ExperimentResult:
    """Largest batch per engine before OOM."""
    spec = get_gpu(DEV_GPU)
    engines = ["transformers", "megablocks", "vllm-ds", "samoyeds"]
    rows = []
    data = {}
    for name, cfg in MODEL_REGISTRY.items():
        seq = SEQ_FOR_MODEL[name]
        entry = {}
        for ename in engines:
            try:
                entry[ename] = max_batch_size(cfg, ename, seq, spec)
            except ConfigError:
                entry[ename] = None
        best_baseline = max(
            (v for k, v in entry.items()
             if k != "samoyeds" and v is not None), default=0)
        boost = (entry["samoyeds"] / best_baseline
                 if best_baseline else float("inf"))
        data[name] = {**entry, "boost": boost}
        rows.append([name, *[entry[e] for e in engines],
                     f"{boost:.2f}x" if boost != float("inf") else "inf"])
    text = render_table(["model", *engines, "boost vs best"], rows,
                        title="Table 3: maximum batch sizes")
    return ExperimentResult("tab03", data=data, text=text)


# ----------------------------------------------------------------------
# Figure 17 — optimisation breakdown (ablation)
# ----------------------------------------------------------------------
def fig17_ablation(tokens: int = 4096) -> ExperimentResult:
    """Vanilla -> +W -> +WI -> +WIT -> +WITS speedup ladder."""
    spec = get_gpu(DEV_GPU)
    base_features = SamoyedsFeatures()
    stages = {
        "+W": base_features.without("input_selection")
                           .without("layout").without("stationary"),
        "+WI": base_features.without("layout").without("stationary"),
        "+WIT": base_features.without("stationary"),
        "+WITS": base_features,
    }
    rows = []
    data = {}
    for name, cfg in MODEL_REGISTRY.items():
        vanilla = ENGINES["transformers"].cost(cfg, tokens, spec,
                                               num_shared=0)
        entry = {"vanilla_ms": vanilla.time_s * 1e3}
        row = [name]
        for label, feats in stages.items():
            engine = SamoyedsEngine(features=feats)
            c = engine.cost(cfg, tokens, spec, num_shared=0)
            entry[label] = vanilla.time_s / c.time_s
            row.append(fmt_speedup(entry[label]))
        data[name] = entry
        rows.append(row)
    text = render_table(["model", "+W", "+WI", "+WIT", "+WITS"], rows,
                        title="Figure 17: optimisation breakdown "
                              "(speedup over Vanilla)")
    return ExperimentResult("fig17", data=data, text=text)


# ----------------------------------------------------------------------
# Table 4 — F1 across Samoyeds configurations
# ----------------------------------------------------------------------
def tab04_f1(train_epochs: int = 25, finetune_epochs: int = 5
             ) -> ExperimentResult:
    """F1 of the classification proxy under each (N,M,V) config."""
    methods = {"dense": None}
    methods.update({
        f"({p.n},{p.m},{p.v})": {"method": "samoyeds", "samoyeds": p}
        for p in PAPER_PATTERNS})
    data = {}
    rows = []
    for model_seed, label in ((3, "proxy-base"), (13, "proxy-large")):
        task = make_classification_task(seed=model_seed)
        pruned_methods = {k: v for k, v in methods.items() if v}
        report = evaluate_classifier_pruning(
            task, methods=pruned_methods, train_epochs=train_epochs,
            finetune_epochs=finetune_epochs, seed=model_seed)
        entry = {"dense": report.dense, **report.pruned}
        data[label] = entry
        rows.append([label, *(f"{entry[k]:.4f}" for k in
                              ["dense", *pruned_methods])])
    headers = ["model", "dense",
               *(f"({p.n},{p.m},{p.v})" for p in PAPER_PATTERNS)]
    text = render_table(headers, rows,
                        title="Table 4: F1 under Samoyeds configs "
                              "(synthetic proxy)")
    return ExperimentResult("tab04", data=data, text=text)


# ----------------------------------------------------------------------
# Table 5 — perplexity across formats
# ----------------------------------------------------------------------
def tab05_ppl(train_epochs: int = 8, finetune_epochs: int = 2
              ) -> ExperimentResult:
    """Perplexity of the LM proxy: dense vs unstructured/VENOM/Samoyeds."""
    data = {}
    rows = []
    for seed, label in ((4, "proxy-lm-a"), (14, "proxy-lm-b")):
        task = make_sequence_task(seed=seed)
        report = evaluate_lm_pruning(task, train_epochs=train_epochs,
                                     finetune_epochs=finetune_epochs,
                                     seed=seed)
        entry = {"dense": report.dense, **report.pruned}
        data[label] = entry
        rows.append([label, *(f"{entry[k]:.3f}" for k in
                              ["dense", "unstructured", "venom",
                               "samoyeds"])])
    text = render_table(
        ["model", "dense", "unstructured", "venom", "samoyeds"], rows,
        title="Table 5: perplexity by pruning format (synthetic proxy, "
              "lower is better)")
    return ExperimentResult("tab05", data=data, text=text)


# ----------------------------------------------------------------------
# Figure 18 — performance portability
# ----------------------------------------------------------------------
def fig18_portability(case_count: int = 60) -> ExperimentResult:
    """Relative speedup over cuSPARSELt retained on other GPUs."""
    cases = synthetic_cases(case_count)
    results = portability_sweep(cases, ["rtx3090", "rtx4090", "a100"])
    rows = []
    for gpu, row in results.items():
        rows.append([gpu,
                     fmt_speedup(row["samoyeds_vs_ref"]),
                     fmt_speedup(row["venom_vs_ref"]),
                     f"{row.get('samoyeds_retained', 1.0):.1%}",
                     f"{row.get('venom_retained', 1.0):.1%}"])
    text = render_table(
        ["gpu", "samoyeds/cusparselt", "venom/cusparselt",
         "samoyeds retained", "venom retained"],
        rows, title="Figure 18: direct-porting performance")
    return ExperimentResult("fig18", data=results, text=text)


# ----------------------------------------------------------------------
# Table 6 — adaptation rules
# ----------------------------------------------------------------------
def tab06_adaptation(case_count: int = 60) -> ExperimentResult:
    """Tile-down on A100 and stages-up on 3090: per-case win rates."""
    cases = synthetic_cases(case_count)
    a100 = adaptation_study(cases, "a100", "tile_down")
    r3090 = adaptation_study(cases, "rtx3090", "stages_up")
    rows = [
        ["a100", "tile size down", f"{a100['improved']:.1%}",
         f"{a100['unchanged']:.1%}", f"{a100['degraded']:.1%}"],
        ["rtx3090", "stage num up", f"{r3090['improved']:.1%}",
         f"{r3090['unchanged']:.1%}", f"{r3090['degraded']:.1%}"],
    ]
    text = render_table(
        ["target", "adaptation", "improved", "unchanged", "degraded"],
        rows, title="Table 6: suggested adaptations")
    return ExperimentResult("tab06", data={"a100": a100, "rtx3090": r3090},
                            text=text)


# ----------------------------------------------------------------------
# Figure 19 — comparison with PIT
# ----------------------------------------------------------------------
def fig19_pit(batches: tuple[int, ...] = (4, 8, 16, 32),
              expert_counts: tuple[int, ...] = (8, 16, 32, 64)
              ) -> ExperimentResult:
    """Samoyeds vs PIT across batch sizes and expert counts."""
    spec = get_gpu(DEV_GPU)
    base_cfg = MODEL_REGISTRY["qwen2-moe"]
    seq = 1024
    data = {}
    rows = []
    for experts in expert_counts:
        cfg = base_cfg.with_experts(experts)
        for batch in batches:
            tokens = batch * seq
            pit = ENGINES["pit"].cost(cfg, tokens, spec, num_shared=0)
            sam = ENGINES["samoyeds"].cost(cfg, tokens, spec, num_shared=0)
            ratio = pit.time_s / sam.time_s
            data[(experts, batch)] = ratio
            rows.append([experts, batch, fmt_speedup(ratio)])
    text = render_table(["experts", "batch", "samoyeds vs PIT"], rows,
                        title="Figure 19: speedup over PIT")
    return ExperimentResult("fig19",
                            data={str(k): v for k, v in data.items()},
                            text=text)


#: Experiment registry: id -> zero-arg callable.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig02": fig02_breakdown,
    "fig11": fig11_layout,
    "fig12": fig12_kernels,
    "fig13": fig13_scaling,
    "fig14": fig14_moe_layer,
    "fig15": fig15_end2end,
    "fig16": fig16_batch,
    "tab03": tab03_max_batch,
    "fig17": fig17_ablation,
    "tab04": tab04_f1,
    "tab05": tab05_ppl,
    "fig18": fig18_portability,
    "tab06": tab06_adaptation,
    "fig19": fig19_pit,
}


def run_experiment(experiment: str) -> ExperimentResult:
    """Run one experiment by id (``fig12``, ``tab03``, ...)."""
    try:
        fn = EXPERIMENTS[experiment]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment!r}; known: "
            f"{sorted(EXPERIMENTS)}") from None
    return fn()
