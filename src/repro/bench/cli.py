"""Command-line interface: ``python -m repro.bench`` (or ``repro bench``).

Subcommands:

* ``experiments [ids...]`` — run paper experiments (default: all 14);
* ``kernels --m --k --n [--gpu]`` — one-off kernel comparison;
* ``tune --m --k --n [--gpu]`` — autotune the Samoyeds kernel;
* ``roofline --m --k --n [--gpu]`` — place every kernel on the roofline;
* ``maxbatch [--gpu] [--seq]`` — Table-3 style memory report;
* ``serve --engines a,b --trace poisson`` — continuous-batching serving
  simulation comparing engines under identical traffic (JSON report).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import EXPERIMENTS, run_experiment
from repro.bench.report import render_json, render_table
from repro.errors import CapacityError, ConfigError
from repro.hw.roofline import place, render
from repro.hw.spec import get_gpu, list_gpus
from repro.kernels import KERNELS
from repro.kernels.autotuner import tune
from repro.moe.config import MODEL_REGISTRY
from repro.moe.memory_model import max_batch_size
from repro.utils.rng import DEFAULT_SEED
from repro.utils.units import format_seconds

#: Friendly aliases accepted by ``serve --engines``.
ENGINE_ALIASES = {"vllm": "vllm-ds", "hf": "transformers"}


def _add_gpu_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--gpu", default="rtx4070s", choices=list_gpus(),
                        help="target device (default: rtx4070s)")


def _add_problem_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--m", type=int, default=4096)
    parser.add_argument("--k", type=int, default=4096)
    parser.add_argument("--n", type=int, default=4096)


def cmd_experiments(args: argparse.Namespace) -> int:
    wanted = args.ids or list(EXPERIMENTS)
    for experiment in wanted:
        result = run_experiment(experiment)
        print(result.text)
        print()
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    rows = []
    sam = KERNELS["samoyeds"].cost(args.m, args.k, args.n, spec)
    for name, kernel in KERNELS.items():
        cost = kernel.cost(args.m, args.k, args.n, spec)
        rows.append([name, format_seconds(cost.time_s),
                     f"{cost.tflops:.1f}",
                     f"{cost.time_s / sam.time_s:.2f}x"])
    print(render_table(
        ["kernel", "time", "TFLOP/s", "vs samoyeds"], rows,
        title=f"{args.m}x{args.k}x{args.n} on {spec.name}"))
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    result = tune(KERNELS["samoyeds"], args.m, args.k, args.n, spec,
                  subrow_v=32)
    cfg = result.config
    print(f"best config on {spec.name}: mb={cfg.mb} nb={cfg.nb} "
          f"kb={cfg.kb} mw={cfg.mw} nw={cfg.nw} stages={cfg.stages}")
    print(f"tuned {format_seconds(result.seconds)} vs heuristic "
          f"{format_seconds(result.heuristic_seconds)} "
          f"({result.gain_over_heuristic:.2f}x, "
          f"{result.candidates} candidates searched)")
    return 0


def cmd_roofline(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    points = []
    # Pattern levels skipped beyond the hardware 2:4 raise a kernel's
    # *effective* compute roof: sub-row selection (Samoyeds) and column
    # selection (VENOM) both skip half the work at 75% sparsity.
    skip = {"samoyeds": 2.0, "venom": 2.0}
    for name, kernel in KERNELS.items():
        cost = kernel.cost(args.m, args.k, args.n, spec)
        sparse = name in ("samoyeds", "venom", "cusparselt")
        points.append(place(cost, spec, sparse=sparse,
                            zero_skip_factor=skip.get(name, 1.0)))
    print(render(points))
    return 0


def cmd_maxbatch(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    engines = ["transformers", "megablocks", "vllm-ds", "samoyeds"]
    rows = []
    for name, cfg in MODEL_REGISTRY.items():
        row: list[object] = [name]
        for engine in engines:
            try:
                row.append(max_batch_size(cfg, engine, args.seq, spec))
            except (CapacityError, ConfigError):
                # Genuine OOM / unsupported model-engine pair; anything
                # else is a bug and should surface, not render as None.
                row.append(None)
        rows.append(row)
    print(render_table(["model", *engines], rows,
                       title=f"max batch at seq {args.seq} on {spec.name}"))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.context import ExecutionContext
    from repro.errors import ReproError
    from repro.serve import (
        ChunkedPrefillBatcher,
        ContinuousBatcher,
        StaticBatcher,
        bursty_trace,
        poisson_trace,
        simulate,
    )
    from repro.serve.metrics import REPORT_HEADERS

    from repro.moe.layers import ENGINES

    config = MODEL_REGISTRY[args.model]
    make_trace = poisson_trace if args.trace == "poisson" else bursty_trace
    engines = []
    for raw in args.engines.split(","):
        name = ENGINE_ALIASES.get(raw.strip(), raw.strip())
        if name not in ENGINES:
            known = ", ".join([*ENGINES, *ENGINE_ALIASES])
            print(f"repro bench serve: unknown engine {raw.strip()!r}; "
                  f"known: {known}", file=sys.stderr)
            return 2
        engines.append(name)
    if args.page_size < 0:
        # A bad flag is a usage error, not per-engine infeasibility.
        print("repro bench serve: --page-size must be >= 0",
              file=sys.stderr)
        return 2
    try:
        trace = make_trace(args.requests, args.qps,
                           prompt_tokens=args.prompt_tokens,
                           output_tokens=args.output_tokens,
                           seed=args.seed, eos_sampling=args.eos_sampling)
    except ReproError as exc:
        print(f"repro bench serve: invalid trace parameters: {exc}",
              file=sys.stderr)
        return 2
    if args.batcher == "continuous":
        batcher_factory = lambda: ContinuousBatcher(  # noqa: E731
            token_budget=args.token_budget)
    elif args.batcher == "chunked":
        batcher_factory = lambda: ChunkedPrefillBatcher(  # noqa: E731
            token_budget=args.token_budget)
    else:
        batcher_factory = lambda: StaticBatcher(  # noqa: E731
            batch_size=args.batch_size)

    reports = []
    rows = []
    for name in engines:
        ctx = ExecutionContext.create(config, name, args.gpu,
                                      streams=args.streams)
        try:
            report = simulate(ctx, trace=trace, batcher=batcher_factory(),
                              num_layers=args.layers, seed=args.seed,
                              page_size=args.page_size or None)
        except ReproError as exc:
            print(f"# {name}: infeasible ({exc})", file=sys.stderr)
            reports.append({"engine": name, "error": str(exc)})
            continue
        reports.append(report.to_dict())
        rows.append(report.summary_row())
    if rows:
        print(render_table(
            REPORT_HEADERS, rows,
            title=(f"{args.model} on {args.gpu}: {args.trace} trace, "
                   f"{args.requests} requests at {args.qps} QPS")),
            file=sys.stderr)
    payload = {
        "model": args.model,
        "gpu": args.gpu,
        "trace": args.trace,
        "qps_offered": args.qps,
        "requests": args.requests,
        "seed": args.seed,
        "batcher": args.batcher,
        "page_size": args.page_size,
        "eos_sampling": args.eos_sampling,
        "engines": reports,
    }
    text = render_json(payload)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Samoyeds reproduction benchmark harness")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiments", help="run paper experiments")
    p.add_argument("ids", nargs="*", choices=[*EXPERIMENTS, []],
                   help="experiment ids (default: all)")
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser("kernels", help="compare kernels on one problem")
    _add_problem_args(p)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_kernels)

    p = sub.add_parser("tune", help="autotune the Samoyeds kernel")
    _add_problem_args(p)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("roofline", help="roofline placement")
    _add_problem_args(p)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_roofline)

    p = sub.add_parser("maxbatch", help="Table-3 memory report")
    p.add_argument("--seq", type=int, default=1024)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_maxbatch)

    p = sub.add_parser("serve",
                       help="continuous-batching serving simulation")
    p.add_argument("--model", default="mixtral-8x7b",
                   choices=sorted(MODEL_REGISTRY))
    p.add_argument("--engines", default="samoyeds,vllm-ds",
                   help="comma-separated engines (vllm = vllm-ds)")
    p.add_argument("--trace", default="poisson",
                   choices=["poisson", "bursty"])
    p.add_argument("--qps", type=float, default=2.0,
                   help="offered load in requests/second")
    p.add_argument("--requests", type=int, default=48)
    p.add_argument("--prompt-tokens", type=int, default=512)
    p.add_argument("--output-tokens", type=int, default=32)
    p.add_argument("--batcher", default="continuous",
                   choices=["continuous", "chunked", "static"])
    p.add_argument("--token-budget", type=int, default=4096,
                   help="continuous/chunked batcher per-step token budget")
    p.add_argument("--batch-size", type=int, default=8,
                   help="static batcher batch size")
    p.add_argument("--page-size", type=int, default=0,
                   help="KV-cache page size in tokens; enables paged "
                        "admission with preemption (0 = conservative "
                        "whole-request reservation)")
    p.add_argument("--eos-sampling", action="store_true",
                   help="geometric EOS-sampled output lengths instead "
                        "of the uniform jitter band (seeded)")
    p.add_argument("--layers", type=int, default=None,
                   help="decoder layers per step (default: model's)")
    p.add_argument("--streams", type=int, default=1,
                   help="expert-segment streams (LPT overlap when > 1)")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--output", default=None,
                   help="write the JSON report here instead of stdout")
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
