"""Command-line interface: ``python -m repro.bench`` (or ``repro bench``).

Subcommands:

* ``experiments [ids...]`` — run paper experiments (default: all 14);
* ``kernels --m --k --n [--gpu]`` — one-off kernel comparison;
* ``tune --m --k --n [--gpu]`` — autotune the Samoyeds kernel;
* ``roofline --m --k --n [--gpu]`` — place every kernel on the roofline;
* ``maxbatch [--gpu] [--seq]`` — Table-3 style memory report;
* ``serve --engines a,b --trace poisson`` — continuous-batching serving
  simulation comparing engines under identical traffic (JSON report);
  ``--parallel ep=4,tp=2`` shards the server over a device grid;
* ``scale --devices 1,2,4,8`` — strong/weak scaling sweep over device
  counts (QPS, TTFT/TPOT and communication fraction per point);
* ``disagg config.yaml --splits 1:1,2:1`` — pool-split sweep over a
  disaggregated config: each point replicates the config's
  prefill/decode pool templates, charting TTFT/TPOT against the split
  next to a colocated reference row;
* ``run config.yaml`` — execute a declarative deployment config file
  (single run or ``sweep:`` grid; see :mod:`repro.api`);
* ``sim [--quick] [--check baseline.json]`` — benchmark the simulator
  itself: replay a synthetic trace through the event-calendar core and
  the frozen pre-calendar loop, emit ``BENCH_sim.json`` with
  simulated-requests/sec, steps/sec and the speedup, optionally gating
  on a checked-in baseline ratio (see :mod:`repro.bench.simbench`);
* ``sweepbench [--jobs N] [--check baseline.json]`` — benchmark the
  parallel experiment executor: the fixed 32-point grid serial vs
  fanned over ``--jobs`` worker processes, emitting
  ``BENCH_sweep.json`` (see :mod:`repro.bench.sweepbench`).

``run`` and ``scale`` accept ``--jobs N`` to execute independent sweep
points on a :class:`~repro.exec.PointRunner` process pool — payloads
are byte-identical to the serial loop, results always land in grid
order, and an infeasible or crashed point fails alone (see
:mod:`repro.exec`).

``serve`` and ``scale`` are thin shims over
:class:`repro.api.DeploymentSpec`: every flag maps to a spec field (the
DESIGN.md migration table lists the pairs), and ``run`` executes the
same specs straight from YAML/JSON files.
"""

from __future__ import annotations

import argparse
import sys

from repro.api.spec import ENGINE_ALIASES  # canonical alias map
from repro.bench.figures import EXPERIMENTS, run_experiment
from repro.bench.report import render_json, render_table
from repro.errors import CapacityError, ConfigError
from repro.hw.interconnect import list_links
from repro.hw.roofline import place, render
from repro.hw.spec import get_gpu, list_gpus
from repro.kernels import KERNELS
from repro.kernels.autotuner import tune
from repro.moe.config import MODEL_REGISTRY
from repro.moe.memory_model import max_batch_size
from repro.utils.rng import DEFAULT_SEED
from repro.utils.units import format_seconds


def _add_gpu_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--gpu", default="rtx4070s", choices=list_gpus(),
                        help="target device (default: rtx4070s)")


def _add_problem_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--m", type=int, default=4096)
    parser.add_argument("--k", type=int, default=4096)
    parser.add_argument("--n", type=int, default=4096)


def _add_jobs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweep points "
                             "(1 = serial; payloads are byte-identical "
                             "either way)")
    parser.add_argument("--warm", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="warm the shared dispatch table once "
                             "before fan-out (engine=auto sweeps; "
                             "--no-warm starts workers cold)")


def cmd_experiments(args: argparse.Namespace) -> int:
    wanted = args.ids or list(EXPERIMENTS)
    for experiment in wanted:
        result = run_experiment(experiment)
        print(result.text)
        print()
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    rows = []
    sam = KERNELS["samoyeds"].cost(args.m, args.k, args.n, spec)
    for name, kernel in KERNELS.items():
        cost = kernel.cost(args.m, args.k, args.n, spec)
        rows.append([name, format_seconds(cost.time_s),
                     f"{cost.tflops:.1f}",
                     f"{cost.time_s / sam.time_s:.2f}x"])
    print(render_table(
        ["kernel", "time", "TFLOP/s", "vs samoyeds"], rows,
        title=f"{args.m}x{args.k}x{args.n} on {spec.name}"))
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    result = tune(KERNELS["samoyeds"], args.m, args.k, args.n, spec,
                  subrow_v=32)
    cfg = result.config
    print(f"best config on {spec.name}: mb={cfg.mb} nb={cfg.nb} "
          f"kb={cfg.kb} mw={cfg.mw} nw={cfg.nw} stages={cfg.stages}")
    print(f"tuned {format_seconds(result.seconds)} vs heuristic "
          f"{format_seconds(result.heuristic_seconds)} "
          f"({result.gain_over_heuristic:.2f}x, "
          f"{result.candidates} candidates searched)")
    return 0


def cmd_roofline(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    points = []
    # Pattern levels skipped beyond the hardware 2:4 raise a kernel's
    # *effective* compute roof: sub-row selection (Samoyeds) and column
    # selection (VENOM) both skip half the work at 75% sparsity.
    skip = {"samoyeds": 2.0, "venom": 2.0}
    for name, kernel in KERNELS.items():
        cost = kernel.cost(args.m, args.k, args.n, spec)
        sparse = name in ("samoyeds", "venom", "cusparselt")
        points.append(place(cost, spec, sparse=sparse,
                            zero_skip_factor=skip.get(name, 1.0)))
    print(render(points))
    return 0


def cmd_maxbatch(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    engines = ["transformers", "megablocks", "vllm-ds", "samoyeds"]
    rows = []
    for name, cfg in MODEL_REGISTRY.items():
        row: list[object] = [name]
        for engine in engines:
            try:
                row.append(max_batch_size(cfg, engine, args.seq, spec))
            except (CapacityError, ConfigError):
                # Genuine OOM / unsupported model-engine pair; anything
                # else is a bug and should surface, not render as None.
                row.append(None)
        rows.append(row)
    print(render_table(["model", *engines], rows,
                       title=f"max batch at seq {args.seq} on {spec.name}"))
    return 0


def _parse_pools(raw: str) -> list[dict[str, str]]:
    """Parse the ``--pools`` flag: comma-separated
    ``name:role[:gpu[:engine]]`` entries, e.g.
    ``pf:prefill:h100,dc:decode:w7900:vllm``.  Omitted gpu/engine
    inherit the deployment defaults; full validation happens in
    :class:`~repro.serve.disagg.PoolSpec` with path-qualified errors.
    """
    pools = []
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ConfigError(
                f"bad --pools entry {entry!r}; expected "
                f"name:role[:gpu[:engine]]")
        pool: dict[str, str] = {"name": parts[0], "role": parts[1]}
        if len(parts) > 2 and parts[2]:
            pool["gpu"] = parts[2]
        if len(parts) > 3 and parts[3]:
            pool["engine"] = ENGINE_ALIASES.get(parts[3], parts[3])
        pools.append(pool)
    if not pools:
        raise ConfigError("--pools must name at least one pool")
    return pools


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import Deployment, DeploymentSpec
    from repro.errors import ReproError
    from repro.hw.interconnect import parse_parallel
    from repro.moe.layers import ENGINES
    from repro.serve.metrics import REPORT_HEADERS

    try:
        plan = parse_parallel(args.parallel)
    except ConfigError as exc:
        print(f"repro bench serve: bad --parallel: {exc}", file=sys.stderr)
        return 2
    if plan.dp > 1:
        # Usage error, not per-engine infeasibility: replicas serve
        # disjoint streams, so simulate them as separate invocations.
        print("repro bench serve: --parallel dp>1 is not served by one "
              "engine; run one serve per replica", file=sys.stderr)
        return 2
    engines = []
    for raw in args.engines.split(","):
        name = ENGINE_ALIASES.get(raw.strip(), raw.strip())
        if name not in ENGINES:
            known = ", ".join([*ENGINES, *ENGINE_ALIASES])
            print(f"repro bench serve: unknown engine {raw.strip()!r}; "
                  f"known: {known}", file=sys.stderr)
            return 2
        if name not in engines:       # aliases can collide (vllm,vllm-ds)
            engines.append(name)
    if args.page_size < 0:
        # A bad flag is a usage error, not per-engine infeasibility.
        print("repro bench serve: --page-size must be >= 0",
              file=sys.stderr)
        return 2
    workload_kind = args.workload or args.trace
    try:
        base = DeploymentSpec.from_dict({
            "model": {"name": args.model, "num_layers": args.layers},
            "hardware": {"gpu": args.gpu, "link": args.link,
                         "parallel": plan, "streams": args.streams},
            "serving": {"batcher": args.batcher,
                        "token_budget": args.token_budget,
                        "batch_size": args.batch_size,
                        "page_size": args.page_size or None,
                        "placement": args.placement,
                        "horizon_s": args.horizon,
                        "scheduler": args.scheduler,
                        "sanitize": args.sanitize,
                        # Disagg keys only when --pools is given, so
                        # colocated spec payloads keep their shape.
                        **({"pools": _parse_pools(args.pools),
                            "router": args.router,
                            "transfer_link": args.transfer_link}
                           if args.pools else {})},
            "workload": {"kind": workload_kind,
                         "requests": args.requests,
                         "qps": args.qps,
                         "prompt_tokens": args.prompt_tokens,
                         "output_tokens": args.output_tokens,
                         "eos_sampling": args.eos_sampling,
                         "seed": args.seed,
                         "trace_path": args.trace_path},
        })
        # One trace serves every engine: identical traffic per engine.
        trace = Deployment(base).build_trace()
    except ConfigError as exc:
        print(f"repro bench serve: invalid configuration: {exc}",
              file=sys.stderr)
        return 2

    reports = []
    rows = []
    for name in engines:
        deployment = Deployment(
            base.with_overrides({"model.engine": name}))
        try:
            report = deployment.run(trace)
        except ReproError as exc:
            print(f"# {name}: infeasible ({exc})", file=sys.stderr)
            reports.append({"engine": name, "error": str(exc)})
            continue
        reports.append(report.to_dict())
        rows.append(report.summary_row())
    if rows:
        print(render_table(
            REPORT_HEADERS, rows,
            title=(f"{args.model} on {args.gpu}: {workload_kind} "
                   f"trace, {args.requests} requests at {args.qps} "
                   f"QPS")),
            file=sys.stderr)
    payload = {
        "model": args.model,
        "gpu": args.gpu,
        "trace": workload_kind,
        "qps_offered": args.qps,
        "requests": args.requests,
        "seed": args.seed,
        "batcher": args.batcher,
        "page_size": args.page_size,
        "eos_sampling": args.eos_sampling,
        # Single-GPU payloads stay byte-identical to the pre-cluster
        # format: the parallel section appears only for device grids.
        **({"parallel": plan.to_dict(), "link": args.link}
           if not plan.is_trivial else {}),
        "engines": reports,
    }
    text = render_json(payload)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 0


def _progress_line(result, done: int, total: int) -> None:
    """One stderr line per completed parallel point."""
    if result.ok:
        status = "ok"
    elif result.crashed:
        status = result.error
    else:
        status = f"infeasible ({result.error})"
    print(f"# [{done}/{total}] {result.label or 'base'}: {status}",
          file=sys.stderr)


def _run_parallel(specs, labels, jobs: int, warm: bool):
    """Fan deployment specs over the process pool (grid-ordered
    results), with the warm shared-dispatch-table pre-pass."""
    import os
    import tempfile

    from repro.exec import PointRunner, warm_selection_table

    with tempfile.TemporaryDirectory(prefix="repro-exec-") as tmp:
        table_path = os.path.join(tmp, "dispatch-table.json")
        if warm:
            warm_selection_table(specs, table_path)
        runner = PointRunner(jobs=jobs, table_path=table_path,
                             progress=_progress_line)
        return runner.run(specs, labels)


def cmd_scale(args: argparse.Namespace) -> int:
    from repro.api import Deployment, DeploymentSpec
    from repro.errors import ReproError
    from repro.serve.metrics import ServeReport

    if args.mode not in ("ep", "tp"):
        print("repro bench scale: --mode must be ep or tp",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("repro bench scale: --jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        devices = [int(d) for d in args.devices.split(",") if d.strip()]
    except ValueError:
        print(f"repro bench scale: bad --devices {args.devices!r}; "
              f"expected a comma-separated list of ints", file=sys.stderr)
        return 2
    if not devices or any(d <= 0 for d in devices):
        print("repro bench scale: device counts must be positive",
              file=sys.stderr)
        return 2
    try:
        base = DeploymentSpec.from_dict({
            "model": {"name": args.model, "engine": args.engine,
                      "num_layers": args.layers},
            "hardware": {"gpu": args.gpu, "link": args.link},
            "serving": {"horizon_s": args.horizon},
            "workload": {"requests": args.requests, "qps": args.qps,
                         "prompt_tokens": args.prompt_tokens,
                         "output_tokens": args.output_tokens,
                         "seed": args.seed},
        })
    except ConfigError as exc:
        print(f"repro bench scale: invalid configuration: {exc}",
              file=sys.stderr)
        return 2

    def point_spec(count: int,
                   scale_load: bool) -> tuple[DeploymentSpec, int]:
        factor = count if scale_load else 1
        spec = base.with_overrides({
            "hardware.parallel": f"{args.mode}={count}",
            "workload.requests": args.requests * factor,
            "workload.qps": args.qps * factor,
        })
        return spec, factor

    def point_payload(spec: DeploymentSpec, count: int, factor: int,
                      report: ServeReport) -> dict[str, object]:
        cluster = report.cluster or {}
        return {
            "devices": count,
            "parallel": spec.hardware.parallel.describe(),
            "qps_offered": args.qps * factor,
            "completed": report.completed,
            "qps_sustained": report.qps_sustained,
            "output_tokens_per_s": report.output_tokens_per_s,
            "ttft_s": report.ttft_s.to_dict(),
            "tpot_s": report.tpot_s.to_dict(),
            "comm_fraction": cluster.get("comm_fraction", 0.0),
            "experts_per_device": cluster.get("experts_per_device"),
        }

    strong: list[dict[str, object]] = []
    weak: list[dict[str, object]] = []
    if args.jobs > 1 and len(devices) > 1:
        # Fan every (count, series) point over the pool, then
        # reassemble the strong/weak series in device order — byte-
        # identical to the serial payload (the golden tests pin it).
        specs, labels, meta = [], [], []
        for pos, count in enumerate(devices):
            for series, scale_load in (("strong", False),
                                       ("weak", True)):
                if scale_load and count == 1:
                    continue          # same point as strong at 1 device
                spec, factor = point_spec(count, scale_load)
                specs.append(spec)
                labels.append(f"{count} devices ({series})")
                meta.append((series, pos, count, factor, spec))
        results = _run_parallel(specs, labels, args.jobs, args.warm)
        table: dict[tuple[str, int], dict[str, object]] = {}
        for (series, pos, count, factor, spec), result in zip(meta,
                                                              results):
            if result.error is not None:
                table[(series, pos)] = {"devices": count,
                                        "error": result.error}
            else:
                table[(series, pos)] = point_payload(
                    spec, count, factor,
                    ServeReport.from_dict(result.report))
        for pos, count in enumerate(devices):
            strong.append(table[("strong", pos)])
            weak.append(dict(strong[-1]) if count == 1
                        else table[("weak", pos)])
    else:
        for count in devices:
            for series, scale_load in ((strong, False), (weak, True)):
                if scale_load and count == 1:
                    series.append(dict(strong[-1]))  # same point at 1
                    continue
                spec, factor = point_spec(count, scale_load)
                try:
                    report = Deployment(spec).run()
                except ReproError as exc:
                    label = "weak" if scale_load else "strong"
                    print(f"# {count} devices ({label}): infeasible "
                          f"({exc})", file=sys.stderr)
                    series.append({"devices": count, "error": str(exc)})
                    continue
                series.append(point_payload(spec, count, factor, report))

    # Speedups are only meaningful relative to the smallest swept device
    # count; if that point errored, print "-" rather than rebasing.
    smallest = min(strong, key=lambda p: p["devices"]) if strong else None
    base = smallest if smallest and "error" not in smallest else None
    rows = []
    for s, w in zip(strong, weak):
        if "error" in s:
            rows.append([s["devices"], "-", "-", "-", "-", "-"])
            continue
        speedup = ("-" if base is None or not base["qps_sustained"]
                   else f"{s['qps_sustained'] / base['qps_sustained']:.2f}x")
        rows.append([s["devices"],
                     f"{s['qps_sustained']:.2f}",
                     speedup,
                     ("-" if "error" in w
                      else f"{w['qps_sustained']:.2f}"),
                     f"{s['ttft_s']['p50'] * 1e3:.1f}",
                     f"{s['comm_fraction'] * 100:.1f}%"])
    print(render_table(
        ["devices", "strong qps", "speedup", "weak qps", "ttft p50 ms",
         "comm"],
        rows,
        title=(f"{args.model}/{args.engine} {args.mode} scaling on "
               f"{args.gpu} over {args.link}")), file=sys.stderr)

    payload = {
        "model": args.model,
        "engine": args.engine,
        "gpu": args.gpu,
        "mode": args.mode,
        "link": args.link,
        "qps_offered": args.qps,
        "requests": args.requests,
        "seed": args.seed,
        "strong": strong,
        "weak": weak,
    }
    text = render_json(payload)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 0


def _sweep_row(label: str, report) -> list[object]:
    """One sweep-table row (shared by the serial and parallel paths)."""
    return [label, report.completed,
            f"{report.qps_sustained:.2f}",
            f"{report.output_tokens_per_s:.0f}",
            f"{report.ttft_s.p50 * 1e3:.1f}",
            f"{report.tpot_s.p50 * 1e3:.2f}"]


def cmd_run(args: argparse.Namespace) -> int:
    from repro.api import Deployment, load_sweep
    from repro.errors import ReproError
    from repro.serve.metrics import REPORT_HEADERS, ServeReport

    if args.jobs < 1:
        print("repro bench run: --jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        base, points = load_sweep(args.config)
    except ConfigError as exc:
        print(f"repro bench run: {exc}", file=sys.stderr)
        return 2

    title = (f"{base.model.name} on {base.hardware.gpu} "
             f"({args.config})")
    # A no-sweep config loads as exactly one override-free point.
    if len(points) == 1 and not points[0].overrides:
        # Single run: the payload IS the report, so the JSON stays
        # interchangeable with a legacy `simulate()` result.
        try:
            report = Deployment(base).run()
        except ReproError as exc:
            print(f"repro bench run: infeasible ({exc})",
                  file=sys.stderr)
            return 1
        print(render_table(REPORT_HEADERS, [report.summary_row()],
                           title=title), file=sys.stderr)
        payload: dict[str, object] = report.to_dict()
    else:
        entries: list[dict[str, object]] = []
        rows = []
        if args.jobs > 1 and len(points) > 1:
            results = _run_parallel([p.spec for p in points],
                                    [p.describe() for p in points],
                                    args.jobs, args.warm)
            for point, result in zip(points, results):
                entry = {"overrides": dict(point.overrides)}
                if result.error is not None:
                    entry["error"] = result.error
                else:
                    entry["report"] = result.report
                    rows.append(_sweep_row(
                        point.describe(),
                        ServeReport.from_dict(result.report)))
                entries.append(entry)
        else:
            for point in points:
                entry = {"overrides": dict(point.overrides)}
                try:
                    report = Deployment(point.spec).run()
                except ReproError as exc:
                    print(f"# {point.describe()}: infeasible ({exc})",
                          file=sys.stderr)
                    entry["error"] = str(exc)
                else:
                    entry["report"] = report.to_dict()
                    rows.append(_sweep_row(point.describe(), report))
                entries.append(entry)
        if rows:
            print(render_table(
                ["point", "done", "qps", "tok/s", "ttft p50 ms",
                 "tpot p50 ms"], rows, title=title), file=sys.stderr)
        payload = {"config": args.config, "base": base.to_dict(),
                   "sweep": entries}
    text = render_json(payload)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 0


def cmd_disagg(args: argparse.Namespace) -> int:
    """Pool-split sweep: TTFT/TPOT curves vs prefill:decode pool
    counts, with a colocated reference point."""
    from repro.api import Deployment
    from repro.api.loader import load_deployment
    from repro.errors import ReproError
    from repro.serve.metrics import ServeReport

    if args.jobs < 1:
        print("repro bench disagg: --jobs must be >= 1",
              file=sys.stderr)
        return 2
    try:
        base = load_deployment(args.config)
    except ConfigError as exc:
        print(f"repro bench disagg: {exc}", file=sys.stderr)
        return 2
    pools = base.serving.pools
    if not pools:
        print("repro bench disagg: config must declare serving.pools "
              "(a prefill and a decode pool template to replicate)",
              file=sys.stderr)
        return 2
    prefill = [p for p in pools if p.role == "prefill"]
    decode = [p for p in pools if p.role == "decode"]
    if not prefill or not decode or len(prefill) + len(decode) != len(pools):
        print("repro bench disagg: the pool-split sweep needs pure "
              "role=prefill and role=decode pool templates "
              "(role=both pools cannot be split by phase)",
              file=sys.stderr)
        return 2
    splits: list[tuple[int, int]] = []
    for entry in args.splits.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        try:
            np_, nd = (int(parts[0]), int(parts[1])) if len(parts) == 2 \
                else (None, None)
        except ValueError:
            np_ = nd = None
        if np_ is None or nd is None or np_ < 1 or nd < 1:
            print(f"repro bench disagg: bad --splits entry {entry!r}; "
                  f"expected prefill:decode counts like 2:1",
                  file=sys.stderr)
            return 2
        splits.append((np_, nd))
    if not splits:
        print("repro bench disagg: --splits named no split",
              file=sys.stderr)
        return 2

    def replicate(template, count: int) -> list[dict[str, object]]:
        if count == 1:
            return [template.to_dict()]
        out = []
        for i in range(count):
            payload = template.to_dict()
            payload["name"] = f"{template.name}{i}"
            out.append(payload)
        return out

    base_payload = base.to_dict()
    colo_payload = {k: dict(v) for k, v in base_payload.items()}
    for key in ("pools", "router", "transfer_link"):
        colo_payload["serving"].pop(key, None)
    specs = [Deployment.from_dict(colo_payload).spec]
    labels = ["colocated"]
    for np_, nd in splits:
        payload = {k: dict(v) for k, v in base_payload.items()}
        payload["serving"]["pools"] = [
            *[d for t in prefill for d in replicate(t, np_)],
            *[d for t in decode for d in replicate(t, nd)],
        ]
        specs.append(Deployment.from_dict(payload).spec)
        labels.append(f"{np_}:{nd}")

    entries: list[dict[str, object]] = []
    rows = []

    def record(label: str, report: "ServeReport | None",
               error: "str | None") -> None:
        entry: dict[str, object] = {"split": label}
        if error is not None:
            entry["error"] = error
            rows.append([label, "-", "-", "-", "-", "-"])
        else:
            entry["report"] = report.to_dict()
            transfer = report.transfer or {}
            rows.append([label, report.completed,
                         f"{report.qps_sustained:.2f}",
                         f"{report.ttft_s.p99 * 1e3:.1f}",
                         f"{report.tpot_s.p99 * 1e3:.2f}",
                         f"{transfer.get('seconds_total', 0.0):.4f}"])
        entries.append(entry)

    if args.jobs > 1 and len(specs) > 1:
        results = _run_parallel(specs, labels, args.jobs, args.warm)
        for label, result in zip(labels, results):
            if result.error is not None:
                record(label, None, result.error)
            else:
                record(label, ServeReport.from_dict(result.report), None)
    else:
        for label, spec in zip(labels, specs):
            try:
                report = Deployment(spec).run()
            except ReproError as exc:
                print(f"# {label}: infeasible ({exc})", file=sys.stderr)
                record(label, None, str(exc))
                continue
            record(label, report, None)

    print(render_table(
        ["split (prefill:decode)", "done", "qps", "ttft p99 ms",
         "tpot p99 ms", "transfer s"], rows,
        title=(f"{base.model.name} pool-split sweep "
               f"({args.config}, router={base.serving.router}, "
               f"link={base.serving.transfer_link})")), file=sys.stderr)
    payload = {"config": args.config, "base": base_payload,
               "points": entries}
    text = render_json(payload)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 0


def cmd_sim(args: argparse.Namespace) -> int:
    from repro.bench import simbench

    requests = args.requests
    reference = args.reference_requests
    if args.quick:
        requests = (simbench.QUICK_REQUESTS if requests is None
                    else requests)
        reference = (simbench.QUICK_REFERENCE_REQUESTS
                     if reference is None else reference)
    requests = simbench.DEFAULT_REQUESTS if requests is None else requests
    reference = (simbench.DEFAULT_REFERENCE_REQUESTS
                 if reference is None else reference)
    engine = ENGINE_ALIASES.get(args.engine.strip(), args.engine.strip())
    payload = simbench.run_benchmark(
        requests=requests, reference_requests=reference,
        model=args.model, engine=engine, gpu=args.gpu,
        num_layers=args.layers, seed=args.seed)
    event = payload["event_core"]
    ref = payload["reference_loop"]
    speedup = payload["speedup"]
    print(render_table(
        ["core", "requests", "steps", "wall s", "req/s", "steps/s"],
        [["event-calendar", event["requests"], event["steps"],
          f"{event['wall_s']:.2f}", f"{event['requests_per_s']:.0f}",
          f"{event['steps_per_s']:.0f}"],
         ["reference-loop", ref["requests"], ref["steps"],
          f"{ref['wall_s']:.2f}", f"{ref['requests_per_s']:.0f}",
          f"{ref['steps_per_s']:.0f}"]],
        title=f"simulator throughput "
              f"(speedup {speedup['requests_per_s']:.1f}x)"),
        file=sys.stderr)
    text = render_json(payload)
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"wrote {args.output}", file=sys.stderr)
    if args.check:
        failure = simbench.check_regression(payload, args.check,
                                            tolerance=args.tolerance)
        if failure:
            print(f"repro bench sim: {failure}", file=sys.stderr)
            return 1
        print(f"repro bench sim: within {args.tolerance:.0%} of "
              f"baseline {args.check}", file=sys.stderr)
    return 0


def cmd_sweepbench(args: argparse.Namespace) -> int:
    from repro.bench import sweepbench

    if args.jobs < 1:
        print("repro bench sweepbench: --jobs must be >= 1",
              file=sys.stderr)
        return 2
    requests = args.requests
    if requests is None:
        requests = (sweepbench.QUICK_POINT_REQUESTS if args.quick
                    else sweepbench.DEFAULT_POINT_REQUESTS)
    payload = sweepbench.run_benchmark(jobs=args.jobs,
                                       requests=requests,
                                       seed=args.seed)
    serial, parallel = payload["serial"], payload["parallel"]
    print(render_table(
        ["executor", "points", "errors", "wall s"],
        [["serial", serial["points"], serial["errors"],
          f"{serial['wall_s']:.2f}"],
         [f"--jobs {parallel['jobs']}", parallel["points"],
          parallel["errors"], f"{parallel['wall_s']:.2f}"]],
        title=(f"sweep executor throughput "
               f"(speedup {payload['speedup']['wall_clock']:.2f}x, "
               f"payloads identical: "
               f"{payload['payloads_identical']})")),
        file=sys.stderr)
    text = render_json(payload)
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"wrote {args.output}", file=sys.stderr)
    cpus = payload["host"]["cpu_count"]
    if args.check:
        failure = sweepbench.check_regression(payload, args.check,
                                              tolerance=args.tolerance)
        if failure:
            print(f"repro bench sweepbench: {failure}", file=sys.stderr)
            return 1
        if isinstance(cpus, int) and cpus < 2:
            print(f"repro bench sweepbench: host has {cpus} cpu(s); "
                  f"speedup gate skipped (determinism still checked)",
                  file=sys.stderr)
        else:
            print(f"repro bench sweepbench: within {args.tolerance:.0%} "
                  f"of baseline {args.check}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Samoyeds reproduction benchmark harness")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiments", help="run paper experiments")
    p.add_argument("ids", nargs="*", choices=[*EXPERIMENTS, []],
                   help="experiment ids (default: all)")
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser("kernels", help="compare kernels on one problem")
    _add_problem_args(p)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_kernels)

    p = sub.add_parser("tune", help="autotune the Samoyeds kernel")
    _add_problem_args(p)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("roofline", help="roofline placement")
    _add_problem_args(p)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_roofline)

    p = sub.add_parser("maxbatch", help="Table-3 memory report")
    p.add_argument("--seq", type=int, default=1024)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_maxbatch)

    p = sub.add_parser("serve",
                       help="continuous-batching serving simulation")
    p.add_argument("--model", default="mixtral-8x7b",
                   choices=sorted(MODEL_REGISTRY))
    p.add_argument("--engines", default="samoyeds,vllm-ds",
                   help="comma-separated engines (vllm = vllm-ds)")
    p.add_argument("--trace", default="poisson",
                   choices=["poisson", "bursty"],
                   help="legacy workload alias (see --workload)")
    p.add_argument("--workload", default=None,
                   help="workload kind from the WORKLOADS registry "
                        "(see `repro list workloads`); overrides "
                        "--trace")
    p.add_argument("--trace-path", default=None,
                   help="CSV trace file for --workload trace")
    p.add_argument("--scheduler", default="youngest_first",
                   choices=["youngest_first", "priority_slack"],
                   help="preemption/queue policy (priority_slack "
                        "needs workload tenants, so it matters only "
                        "with config-driven runs or tenant traces)")
    p.add_argument("--qps", type=float, default=2.0,
                   help="offered load in requests/second")
    p.add_argument("--requests", type=int, default=48)
    p.add_argument("--prompt-tokens", type=int, default=512)
    p.add_argument("--output-tokens", type=int, default=32)
    p.add_argument("--batcher", default="continuous",
                   choices=["continuous", "chunked", "static"])
    p.add_argument("--token-budget", type=int, default=4096,
                   help="continuous/chunked batcher per-step token budget")
    p.add_argument("--batch-size", type=int, default=8,
                   help="static batcher batch size")
    p.add_argument("--page-size", type=int, default=0,
                   help="KV-cache page size in tokens; enables paged "
                        "admission with preemption (0 = conservative "
                        "whole-request reservation)")
    p.add_argument("--eos-sampling", action="store_true",
                   help="geometric EOS-sampled output lengths instead "
                        "of the uniform jitter band (seeded)")
    p.add_argument("--layers", type=int, default=None,
                   help="decoder layers per step (default: model's)")
    p.add_argument("--streams", type=int, default=1,
                   help="expert-segment streams (LPT overlap when > 1)")
    p.add_argument("--parallel", default=None,
                   help="device-parallel plan, e.g. ep=4,tp=2 "
                        "(default: single GPU)")
    p.add_argument("--link", default="nvlink", choices=list_links(),
                   help="interconnect joining the device grid")
    p.add_argument("--placement", default="balanced",
                   choices=["balanced", "round_robin"],
                   help="expert-to-device placement policy")
    p.add_argument("--horizon", type=float, default=None,
                   help="stop serving at this clock (seconds); "
                        "in-flight requests stay unfinished")
    p.add_argument("--sanitize", action="store_true",
                   help="run under the sim-sanitizer's runtime "
                        "invariant checks (same as REPRO_SANITIZE=1); "
                        "the report is byte-identical")
    p.add_argument("--pools", default=None,
                   help="disaggregated prefill/decode pools as "
                        "name:role[:gpu[:engine]] entries, e.g. "
                        "pf:prefill:h100,dc:decode:w7900:vllm "
                        "(default: colocated serving)")
    p.add_argument("--router", default="round_robin",
                   help="pool-assignment policy with --pools "
                        "(see `repro list routers`)")
    p.add_argument("--transfer-link", default="pcie4",
                   choices=list_links(),
                   help="link pricing the prefill->decode KV "
                        "migration with --pools (zero-copy = free)")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--output", default=None,
                   help="write the JSON report here instead of stdout")
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("scale",
                       help="strong/weak scaling sweep over device counts")
    p.add_argument("--model", default="mixtral-8x7b",
                   choices=sorted(MODEL_REGISTRY))
    p.add_argument("--engine", default="samoyeds",
                   help="engine to scale (default: samoyeds)")
    p.add_argument("--mode", default="ep", choices=["ep", "tp"],
                   help="which parallel degree the device count drives")
    p.add_argument("--devices", default="1,2,4,8",
                   help="comma-separated device counts to sweep")
    p.add_argument("--link", default="nvlink", choices=list_links(),
                   help="interconnect joining the device grid")
    p.add_argument("--qps", type=float, default=16.0,
                   help="offered load at one device (weak scaling "
                        "multiplies it by the device count)")
    p.add_argument("--requests", type=int, default=32)
    p.add_argument("--prompt-tokens", type=int, default=512)
    p.add_argument("--output-tokens", type=int, default=16)
    p.add_argument("--layers", type=int, default=None,
                   help="decoder layers per step (default: model's)")
    p.add_argument("--horizon", type=float, default=None,
                   help="per-point serving horizon in seconds")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--output", default=None,
                   help="write the JSON report here instead of stdout")
    _add_jobs_args(p)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_scale)

    p = sub.add_parser(
        "disagg",
        help="pool-split sweep over a disaggregated config: replicate "
             "its prefill/decode pool templates per --splits point and "
             "chart TTFT/TPOT against the split, with a colocated "
             "reference row")
    p.add_argument("config",
                   help="deployment config with serving.pools "
                        "templates (see examples/configs/"
                        "disagg_pools.yaml)")
    p.add_argument("--splits", default="1:1,2:1,1:2",
                   help="comma-separated prefill:decode pool counts "
                        "(default: 1:1,2:1,1:2)")
    p.add_argument("--output", default=None,
                   help="write the JSON report here instead of stdout")
    _add_jobs_args(p)
    p.set_defaults(fn=cmd_disagg)

    p = sub.add_parser(
        "run", help="execute a deployment config file (YAML/JSON; "
                    "single run or sweep grid)")
    p.add_argument("config",
                   help="path to the config file (see examples/configs)")
    p.add_argument("--output", default=None,
                   help="write the JSON report here instead of stdout")
    _add_jobs_args(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "sweepbench",
        help="benchmark the parallel experiment executor (serial vs "
             "--jobs wall-clock on the fixed 32-point grid)")
    p.add_argument("--jobs", type=int, default=4,
                   help="worker processes for the parallel side "
                        "(default: 4, the benchmark protocol)")
    p.add_argument("--requests", type=int, default=None,
                   help="requests per grid point (default: 600, or "
                        "150 with --quick)")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized run (smaller points, same grid and "
                        "therefore a comparable ratio)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--output", default="BENCH_sweep.json",
                   help="benchmark JSON path (default: BENCH_sweep.json)")
    p.add_argument("--check", default=None,
                   help="baseline JSON to gate the speedup ratio "
                        "against (benchmarks/BENCH_baseline.json)")
    p.add_argument("--tolerance", type=float, default=0.30,
                   help="allowed fractional drop below the baseline "
                        "speedup (default: 0.30)")
    p.set_defaults(fn=cmd_sweepbench)

    p = sub.add_parser(
        "sim", help="benchmark the simulator itself (event-calendar "
                    "core vs the frozen reference loop)")
    p.add_argument("--requests", type=int, default=None,
                   help="trace size for the event core (default: 100000, "
                        "or 3000 with --quick)")
    p.add_argument("--reference-requests", type=int, default=None,
                   help="trace slice for the reference loop (default: "
                        "2000, or 600 with --quick)")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized run (smaller trace, same ratio)")
    p.add_argument("--model", default="mixtral-8x7b",
                   choices=sorted(MODEL_REGISTRY))
    p.add_argument("--engine", default="samoyeds",
                   help="MoE engine (registry name or alias; "
                        "default: samoyeds)")
    p.add_argument("--layers", type=int, default=1,
                   help="decoder layers per step (default: 1, the "
                        "paper's single-layer protocol)")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--output", default="BENCH_sim.json",
                   help="benchmark JSON path (default: BENCH_sim.json)")
    p.add_argument("--check", default=None,
                   help="baseline JSON to gate the speedup ratio "
                        "against (benchmarks/BENCH_baseline.json)")
    p.add_argument("--tolerance", type=float, default=0.30,
                   help="allowed fractional drop below the baseline "
                        "speedup (default: 0.30)")
    p.add_argument("--gpu", default="a100", choices=list_gpus(),
                   help="target device (default: a100)")
    p.set_defaults(fn=cmd_sim)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
