"""Command-line interface: ``python -m repro.bench``.

Subcommands:

* ``experiments [ids...]`` — run paper experiments (default: all 14);
* ``kernels --m --k --n [--gpu]`` — one-off kernel comparison;
* ``tune --m --k --n [--gpu]`` — autotune the Samoyeds kernel;
* ``roofline --m --k --n [--gpu]`` — place every kernel on the roofline;
* ``maxbatch [--gpu] [--seq]`` — Table-3 style memory report.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import EXPERIMENTS, run_experiment
from repro.bench.report import render_table
from repro.hw.roofline import place, render
from repro.hw.spec import get_gpu, list_gpus
from repro.kernels import KERNELS
from repro.kernels.autotuner import tune
from repro.moe.config import MODEL_REGISTRY
from repro.moe.memory_model import max_batch_size
from repro.utils.units import format_seconds


def _add_gpu_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--gpu", default="rtx4070s", choices=list_gpus(),
                        help="target device (default: rtx4070s)")


def _add_problem_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--m", type=int, default=4096)
    parser.add_argument("--k", type=int, default=4096)
    parser.add_argument("--n", type=int, default=4096)


def cmd_experiments(args: argparse.Namespace) -> int:
    wanted = args.ids or list(EXPERIMENTS)
    for experiment in wanted:
        result = run_experiment(experiment)
        print(result.text)
        print()
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    rows = []
    sam = KERNELS["samoyeds"].cost(args.m, args.k, args.n, spec)
    for name, kernel in KERNELS.items():
        cost = kernel.cost(args.m, args.k, args.n, spec)
        rows.append([name, format_seconds(cost.time_s),
                     f"{cost.tflops:.1f}",
                     f"{cost.time_s / sam.time_s:.2f}x"])
    print(render_table(
        ["kernel", "time", "TFLOP/s", "vs samoyeds"], rows,
        title=f"{args.m}x{args.k}x{args.n} on {spec.name}"))
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    result = tune(KERNELS["samoyeds"], args.m, args.k, args.n, spec,
                  subrow_v=32)
    cfg = result.config
    print(f"best config on {spec.name}: mb={cfg.mb} nb={cfg.nb} "
          f"kb={cfg.kb} mw={cfg.mw} nw={cfg.nw} stages={cfg.stages}")
    print(f"tuned {format_seconds(result.seconds)} vs heuristic "
          f"{format_seconds(result.heuristic_seconds)} "
          f"({result.gain_over_heuristic:.2f}x, "
          f"{result.candidates} candidates searched)")
    return 0


def cmd_roofline(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    points = []
    # Pattern levels skipped beyond the hardware 2:4 raise a kernel's
    # *effective* compute roof: sub-row selection (Samoyeds) and column
    # selection (VENOM) both skip half the work at 75% sparsity.
    skip = {"samoyeds": 2.0, "venom": 2.0}
    for name, kernel in KERNELS.items():
        cost = kernel.cost(args.m, args.k, args.n, spec)
        sparse = name in ("samoyeds", "venom", "cusparselt")
        points.append(place(cost, spec, sparse=sparse,
                            zero_skip_factor=skip.get(name, 1.0)))
    print(render(points))
    return 0


def cmd_maxbatch(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    engines = ["transformers", "megablocks", "vllm-ds", "samoyeds"]
    rows = []
    for name, cfg in MODEL_REGISTRY.items():
        row: list[object] = [name]
        for engine in engines:
            try:
                row.append(max_batch_size(cfg, engine, args.seq, spec))
            except Exception:
                row.append(None)
        rows.append(row)
    print(render_table(["model", *engines], rows,
                       title=f"max batch at seq {args.seq} on {spec.name}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Samoyeds reproduction benchmark harness")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiments", help="run paper experiments")
    p.add_argument("ids", nargs="*", choices=[*EXPERIMENTS, []],
                   help="experiment ids (default: all)")
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser("kernels", help="compare kernels on one problem")
    _add_problem_args(p)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_kernels)

    p = sub.add_parser("tune", help="autotune the Samoyeds kernel")
    _add_problem_args(p)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("roofline", help="roofline placement")
    _add_problem_args(p)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_roofline)

    p = sub.add_parser("maxbatch", help="Table-3 memory report")
    p.add_argument("--seq", type=int, default=1024)
    _add_gpu_arg(p)
    p.set_defaults(fn=cmd_maxbatch)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
