"""``repro bench sim`` — the simulator's own speed benchmark.

Every other subcommand measures the *modelled* server; this one
measures the simulator.  It builds a synthetic replay trace, serves it
through the event-calendar core (:class:`~repro.serve.engine.ServingEngine`)
under a wall clock, serves a slice of the same workload through the
frozen pre-calendar loop
(:class:`~repro.serve._legacy_loop.ReferenceEngine`), and emits
``BENCH_sim.json`` with simulated-requests/sec, steps/sec and the
speedup of the calendar core over the reference — the speed
trajectory later PRs answer to.

The regression gate compares the *speedup ratio*, not absolute
requests/sec: both engines run on the same machine in the same
process, so the ratio is machine-independent and survives noisy CI
runners.  ``check_regression`` fails when the measured ratio falls
more than the tolerance below the checked-in baseline
(``benchmarks/BENCH_baseline.json``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.context import ExecutionContext
from repro.errors import ConfigError
from repro.serve._legacy_loop import ReferenceEngine
from repro.serve.engine import ServingEngine
from repro.serve.metrics import sim_throughput
from repro.workloads.traces import Request, replay_trace
from repro.utils.host import host_metadata
from repro.utils.rng import new_rng

#: Benchmark protocol defaults: the acceptance workload is a
#: 100k-request replay of a chat-style trace — long generations
#: (256-512 output tokens) at a modest arrival rate, the regime a
#: serving simulator spends most of its steps in (decode-dominated,
#: below saturation).  ``--quick`` (CI's perf-smoke job) shrinks both
#: sides but keeps the regime, and therefore the ratio, comparable.
DEFAULT_REQUESTS = 100_000
DEFAULT_REFERENCE_REQUESTS = 2_000
QUICK_REQUESTS = 3_000
QUICK_REFERENCE_REQUESTS = 600
DEFAULT_RATE_QPS = 10.0
DEFAULT_SEED = 7

#: Step allowance for the replay: the decode-heavy workload takes a
#: few dozen steps per request, far past ``ServingEngine.run``'s
#: default guard.
MAX_STEPS = 100_000_000

BENCH_VERSION = 1


def synthetic_trace(num_requests: int, rate_qps: float = DEFAULT_RATE_QPS,
                    seed: int = DEFAULT_SEED) -> list[Request]:
    """A reproducible synthetic replay trace.

    Poisson arrivals at ``rate_qps`` with mixed prompt (64-512) and
    output (256-512) lengths, round-tripped through
    :func:`~repro.serve.request.replay_trace` so the benchmark
    exercises the replay front door end to end.
    """
    if num_requests <= 0:
        raise ConfigError("num_requests must be positive")
    if rate_qps <= 0:
        raise ConfigError("rate_qps must be positive")
    rng = new_rng(seed)
    gaps = rng.exponential(1.0 / rate_qps, size=num_requests)
    prompts = rng.integers(64, 513, size=num_requests)
    outputs = rng.integers(256, 513, size=num_requests)
    clock = 0.0
    records = []
    for gap, prompt, output in zip(gaps, prompts, outputs):
        clock += float(gap)
        records.append((clock, int(prompt), int(output)))
    return replay_trace(records)


def _timed_run(engine, trace) -> dict[str, object]:
    start = time.perf_counter()
    report = engine.run(trace, max_steps=MAX_STEPS)
    wall = time.perf_counter() - start
    result: dict[str, object] = {
        "requests": len(trace),
        "steps": report.steps,
        "completed": report.completed,
    }
    result.update(sim_throughput(len(trace), report.steps, wall))
    return result


def run_benchmark(requests: int = DEFAULT_REQUESTS,
                  reference_requests: int = DEFAULT_REFERENCE_REQUESTS,
                  model: str = "mixtral-8x7b", engine: str = "samoyeds",
                  gpu: str = "a100", num_layers: int = 1,
                  rate_qps: float = DEFAULT_RATE_QPS,
                  seed: int = DEFAULT_SEED) -> dict[str, object]:
    """Run the two-sided benchmark and return the payload.

    The event core serves the full trace; the reference loop serves
    the first ``reference_requests`` of the *same* trace (its
    per-request cost is what the calendar removed, so a slice bounds
    the benchmark's wall clock).  Requests/sec compare like for like:
    simulated requests over wall seconds on the same machine.
    """
    reference_requests = min(reference_requests, requests)
    trace = synthetic_trace(requests, rate_qps=rate_qps, seed=seed)

    def make(cls):
        ctx = ExecutionContext.create(model, engine, gpu)
        return cls(ctx=ctx, num_layers=num_layers, seed=seed)

    event_core = _timed_run(make(ServingEngine), trace)
    reference = _timed_run(make(ReferenceEngine),
                           trace[:reference_requests])
    speedup = {
        "requests_per_s": (event_core["requests_per_s"]
                           / reference["requests_per_s"]
                           if reference["requests_per_s"] else 0.0),
        "steps_per_s": (event_core["steps_per_s"]
                        / reference["steps_per_s"]
                        if reference["steps_per_s"] else 0.0),
    }
    return {
        "version": BENCH_VERSION,
        # Informational only: trajectory comparisons across machines
        # need to see the host; the --check gate never reads it (it
        # compares the machine-independent speedup ratio).
        "host": host_metadata(),
        "workload": {
            "model": model, "engine": engine, "gpu": gpu,
            "num_layers": num_layers, "requests": requests,
            "reference_requests": reference_requests,
            "rate_qps": rate_qps, "seed": seed,
        },
        "event_core": event_core,
        "reference_loop": reference,
        "speedup": speedup,
    }


def check_regression(payload: dict[str, object], baseline_path: "str | Path",
                     tolerance: float = 0.30) -> "str | None":
    """Compare a benchmark payload against the checked-in baseline.

    Returns ``None`` when within tolerance, else a human-readable
    failure message.  The gate is the requests/sec *speedup ratio*:
    ``measured >= baseline * (1 - tolerance)``.
    """
    path = Path(baseline_path)
    try:
        baseline = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from exc
    expected = baseline.get("speedup_requests_per_s")
    if not isinstance(expected, (int, float)) or expected <= 0:
        raise ConfigError(
            f"baseline {path} lacks a positive speedup_requests_per_s")
    measured = payload["speedup"]["requests_per_s"]  # type: ignore[index]
    floor = expected * (1.0 - tolerance)
    if measured < floor:
        return (f"sim-throughput regression: speedup {measured:.2f}x "
                f"fell below {floor:.2f}x "
                f"({expected:.2f}x baseline - {tolerance:.0%} tolerance)")
    return None
