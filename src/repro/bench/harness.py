"""Sweep drivers shared by the per-figure entry points."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.context import ExecutionContext
from repro.errors import ReproError
from repro.hw.spec import GPUSpec, get_gpu
from repro.kernels import KERNELS
from repro.kernels.base import GemmProblem, MatmulKernel
from repro.kernels.tiling import TilingConfig
from repro.workloads.gemm import GemmCase


@dataclass(frozen=True)
class KernelRow:
    """Per-case results: seconds per kernel name."""

    case: GemmCase
    seconds: dict[str, float] = field(default_factory=dict)

    def tflops(self, kernel: str) -> float:
        return self.case.flops / self.seconds[kernel] / 1e12

    def speedup(self, kernel: str, over: str) -> float:
        return self.seconds[over] / self.seconds[kernel]


def kernel_sweep(cases: list[GemmCase], spec: GPUSpec | ExecutionContext,
                 kernels: dict[str, MatmulKernel] | None = None,
                 configs: dict[str, TilingConfig] | None = None
                 ) -> list[KernelRow]:
    """Run every kernel cost model over every case.

    ``spec`` may be an :class:`~repro.context.ExecutionContext`; its
    device is used, and a pinned kernel/tiling choice (the §6.6 porting
    protocol) narrows the sweep to that kernel unless ``kernels`` is
    given explicitly.
    """
    if isinstance(spec, ExecutionContext):
        ctx = spec
        spec = ctx.spec
        if kernels is None and ctx.kernel is not None:
            kernels = {ctx.kernel.name: ctx.kernel}
            if configs is None and ctx.tiling is not None:
                configs = {ctx.kernel.name: ctx.tiling}
    kernels = kernels or KERNELS
    rows = []
    for case in cases:
        seconds = {}
        for name, kernel in kernels.items():
            cfg = configs.get(name) if configs else None
            seconds[name] = kernel.cost(case.m, case.k, case.n, spec,
                                        cfg=cfg).time_s
        rows.append(KernelRow(case=case, seconds=seconds))
    return rows


def speedup_stats(rows: list[KernelRow], kernel: str = "samoyeds"
                  ) -> dict[str, dict[str, float]]:
    """max / mean / geomean speedup of ``kernel`` over each baseline."""
    out: dict[str, dict[str, float]] = {}
    baselines = [k for k in rows[0].seconds if k != kernel]
    for base in baselines:
        ratios = [r.speedup(kernel, base) for r in rows]
        log_mean = math.exp(sum(math.log(x) for x in ratios) / len(ratios))
        out[base] = {
            "max": max(ratios),
            "min": min(ratios),
            "mean": sum(ratios) / len(ratios),
            "geomean": log_mean,
        }
    return out


def frozen_configs(cases: list[GemmCase], dev_spec: GPUSpec,
                   kernel: MatmulKernel) -> dict[GemmCase, TilingConfig]:
    """Per-case tiling chosen on the *development* platform (§6.6's
    direct-porting protocol)."""
    out = {}
    for case in cases:
        problem = GemmProblem(case.m, case.k, case.n)
        out[case] = kernel.default_config(problem, dev_spec)
    return out


def portability_sweep(cases: list[GemmCase], targets: list[str],
                      dev_gpu: str = "rtx4070s",
                      reference: str = "cusparselt"
                      ) -> dict[str, dict[str, float]]:
    """Figure 18: relative speedup over cuSPARSELt retained when porting.

    Samoyeds and VENOM keep their dev-platform tiling; the vendor
    reference re-tunes per device (that is what vendor libraries do).
    Returns, per GPU, the geomean speedup of samoyeds and venom over the
    reference and the retained fraction vs the dev platform.
    """
    dev_spec = get_gpu(dev_gpu)
    sam = KERNELS["samoyeds"]
    ven = KERNELS["venom"]
    ref = KERNELS[reference]
    sam_cfg = frozen_configs(cases, dev_spec, sam)
    ven_cfg = frozen_configs(cases, dev_spec, ven)

    def geomean(values: list[float]) -> float:
        return math.exp(sum(math.log(v) for v in values) / len(values))

    results: dict[str, dict[str, float]] = {}
    for gpu in [dev_gpu, *targets]:
        spec = get_gpu(gpu)
        sam_port = sam.porting_factor(dev_spec, spec)
        ven_port = ven.porting_factor(dev_spec, spec)
        sam_ratios, ven_ratios = [], []
        for case in cases:
            ref_s = ref.cost(case.m, case.k, case.n, spec).time_s
            sam_s = sam.cost(case.m, case.k, case.n, spec,
                             cfg=sam_cfg[case]).time_s / sam_port
            ven_s = ven.cost(case.m, case.k, case.n, spec,
                             cfg=ven_cfg[case]).time_s / ven_port
            sam_ratios.append(ref_s / sam_s)
            ven_ratios.append(ref_s / ven_s)
        results[gpu] = {
            "samoyeds_vs_ref": geomean(sam_ratios),
            "venom_vs_ref": geomean(ven_ratios),
            "samoyeds_worst": min(sam_ratios),
        }
    dev = results[dev_gpu]
    for gpu in targets:
        row = results[gpu]
        row["samoyeds_retained"] = _retained(row["samoyeds_vs_ref"],
                                             dev["samoyeds_vs_ref"])
        row["venom_retained"] = _retained(row["venom_vs_ref"],
                                          dev["venom_vs_ref"])
    return results


def _retained(ported: float, native: float) -> float:
    """Fraction of the (speedup - 1) advantage retained after porting."""
    native_gain = max(native - 1.0, 1e-9)
    return max(0.0, (ported - 1.0) / native_gain)


def adaptation_study(cases: list[GemmCase], target_gpu: str,
                     adapt: str, dev_gpu: str = "rtx4070s",
                     threshold: float = 0.02) -> dict[str, float]:
    """Table 6: effect of one suggested adaptation on the target GPU.

    ``adapt`` is ``"tile_down"`` (halve mb/nb — the A100 rule) or
    ``"stages_up"`` (one more pipeline stage — the 3090 rule).  Returns
    the fraction of cases improved / unchanged / degraded beyond
    ``threshold`` relative time difference.
    """
    if adapt not in ("tile_down", "stages_up"):
        raise ReproError(f"unknown adaptation {adapt!r}")
    dev_spec = get_gpu(dev_gpu)
    target = get_gpu(target_gpu)
    sam = KERNELS["samoyeds"]
    improved = unchanged = degraded = 0
    for case in cases:
        problem = GemmProblem(case.m, case.k, case.n)
        base_cfg = sam.default_config(problem, dev_spec)
        if adapt == "tile_down":
            new_cfg = base_cfg.scaled(
                mb=max(32, base_cfg.mb // 2), nb=max(32, base_cfg.nb // 2),
                mw=max(16, base_cfg.mw // 2), nw=max(16, base_cfg.nw // 2))
        else:
            new_cfg = base_cfg.scaled(stages=base_cfg.stages + 1)
        base_s = sam.cost(case.m, case.k, case.n, target,
                          cfg=base_cfg).time_s
        new_s = sam.cost(case.m, case.k, case.n, target,
                         cfg=new_cfg).time_s
        rel = (base_s - new_s) / base_s
        if rel > threshold:
            improved += 1
        elif rel < -threshold:
            degraded += 1
        else:
            unchanged += 1
    total = len(cases)
    return {
        "improved": improved / total,
        "unchanged": unchanged / total,
        "degraded": degraded / total,
    }
