"""Benchmark harness: regenerates every table and figure of §6.

``repro.bench.figures.EXPERIMENTS`` maps experiment ids (``fig12``,
``tab03``, ...) to callables that run the paper's workload and return a
structured result plus a printable report.  The pytest files under
``benchmarks/`` are thin wrappers over this registry.
"""

from repro.workloads.gemm import (
    SYNTHETIC_CASE_COUNT,
    realistic_cases,
    synthetic_cases,
)
from repro.bench.harness import (
    KernelRow,
    adaptation_study,
    kernel_sweep,
    portability_sweep,
    speedup_stats,
)
from repro.bench.figures import EXPERIMENTS, run_experiment

__all__ = [
    "SYNTHETIC_CASE_COUNT",
    "synthetic_cases",
    "realistic_cases",
    "KernelRow",
    "kernel_sweep",
    "speedup_stats",
    "portability_sweep",
    "adaptation_study",
    "EXPERIMENTS",
    "run_experiment",
]
