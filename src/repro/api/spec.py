"""Typed deployment specs: the declarative half of the public API.

The serving stack spans engines, batchers, paged KV admission, parallel
plans and cluster topologies; before this module its only entry points
were the many-kwarg :func:`repro.serve.simulate` signature and a pile of
CLI flags.  Here every choice becomes *data*: four frozen section specs
composed into one :class:`DeploymentSpec` —

* :class:`ModelSpec` — which Table-2 model and MoE engine, how many
  decoder layers per step, FlashAttention on or off;
* :class:`HardwareSpec` — the target GPU, the interconnect link and the
  :class:`~repro.hw.interconnect.ParallelPlan` spreading the server
  over a device grid;
* :class:`ServingSpec` — the batching policy and its knobs, paged-KV
  page size, expert placement, serving horizon;
* :class:`WorkloadSpec` — the arrival trace shape (kind, rate,
  lengths, seed) and the routing-skew profile of the traffic.

Every spec validates its fields on construction with *path-qualified*
errors (``serving.page_size: must be > 0``), round-trips exactly
through ``to_dict()``/``from_dict()`` (so specs can live in YAML/JSON
files — see :mod:`repro.api.loader`), and rejects unknown keys instead
of silently ignoring typos.  :meth:`DeploymentSpec.with_overrides`
applies dotted-path updates (``{"workload.qps": 8.0}``), which is what
sweep grids expand through.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.errors import ConfigError, ReproError, RoutingError
from repro.hw.interconnect import LINK_REGISTRY, ParallelPlan
from repro.hw.spec import GPU_REGISTRY
from repro.moe.config import MODEL_REGISTRY
from repro.moe.layers import ENGINES
from repro.moe.trace import validate_skew
from repro.serve.batcher import BATCHER_NAMES
from repro.serve.disagg.pools import PoolSpec, validate_pools
from repro.serve.disagg.routers import ROUTERS
from repro.serve.scheduling import SCHEDULER_NAMES
from repro.utils.rng import DEFAULT_SEED
from repro.workloads.registry import WORKLOADS
from repro.workloads.tenants import TenantSpec, validate_tenants

import repro.registry.selector  # noqa: F401  (registers engine "auto")

#: Friendly engine aliases accepted anywhere an engine is named (specs
#: and the ``serve --engines`` flag; the CLI re-exports this map).
ENGINE_ALIASES = {"vllm": "vllm-ds", "hf": "transformers"}

#: Trace kinds a :class:`WorkloadSpec` can generate.  Deprecated alias
#: of the :data:`repro.workloads.WORKLOADS` registry keys (kept for
#: pre-registry imports); registering a new workload extends it.
TRACE_KINDS = tuple(WORKLOADS)

#: Expert-placement policies (mirrors ``moe.scheduler.place_experts``).
PLACEMENT_POLICIES = ("balanced", "round_robin")


def _fail(path: str, message: str) -> None:
    raise ConfigError(f"{path}: {message}")


def _check_registered(path: str, registry, name: object) -> None:
    """Validate ``name`` against a live registry at ``validate()`` time.

    Misses re-raise the registry's own message (sorted known names plus
    a did-you-mean suggestion) path-qualified, e.g. ``model.engine:
    unknown engine 'vlm'; known engines: ... (did you mean
    'vllm-ds'?)``.  Runs on construction, which covers every
    ``sweep:``-expanded point before anything is built.
    """
    try:
        registry.get(name)
    except ReproError as exc:
        _fail(path, str(exc))


def _check_positive_int(path: str, value: object,
                        optional: bool = False) -> None:
    if value is None and optional:
        return
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(path, f"must be an integer, got {value!r}")
    if value <= 0:
        _fail(path, "must be > 0")


def _check_positive_float(path: str, value: object,
                          optional: bool = False) -> None:
    if value is None and optional:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, f"must be a number, got {value!r}")
    if value <= 0:
        _fail(path, "must be > 0")


def _check_bool(path: str, value: object) -> None:
    if not isinstance(value, bool):
        _fail(path, f"must be a boolean, got {value!r}")


def _check_choice(path: str, value: object, choices: tuple[str, ...]
                  ) -> None:
    if value not in choices:
        _fail(path, f"must be one of {', '.join(choices)}; "
                    f"got {value!r}")


class _SpecBase:
    """Shared ``to_dict``/``from_dict`` plumbing of the section specs.

    Subclasses set ``_SECTION`` (the path prefix of validation errors)
    and may override :meth:`_encode_field` / :meth:`_decode_field` for
    fields that are not plain JSON scalars.
    """

    _SECTION = "spec"

    def to_dict(self) -> dict[str, Any]:
        """Plain-type payload; ``from_dict`` inverts it exactly."""
        out: dict[str, Any] = {}
        for f in fields(self):                   # type: ignore[arg-type]
            out[f.name] = self._encode_field(f.name,
                                             getattr(self, f.name))
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]):
        """Build a spec from a mapping, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise ConfigError(
                f"{cls._SECTION}: expected a mapping, got "
                f"{type(payload).__name__}")
        known = {f.name for f in fields(cls)}    # type: ignore[arg-type]
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"{cls._SECTION}.{unknown[0]}: unknown field (known: "
                f"{', '.join(sorted(known))})")
        kwargs = {key: cls._decode_field(key, value)
                  for key, value in payload.items()}
        return cls(**kwargs)

    def _encode_field(self, name: str, value: Any) -> Any:
        return value

    @classmethod
    def _decode_field(cls, name: str, value: Any) -> Any:
        return value


@dataclass(frozen=True)
class ModelSpec(_SpecBase):
    """Which model forward the server prices.

    Attributes:
        name: Table-2 model registry key.
        engine: MoE execution engine (aliases ``vllm``/``hf`` accepted).
        num_layers: Decoder layers per step; ``None`` uses the model's
            own layer count, ``1`` reproduces the paper's single-layer
            protocol.
        flash: FlashAttention toggle.
    """

    _SECTION = "model"

    name: str = "mixtral-8x7b"
    engine: str = "samoyeds"
    num_layers: int | None = None
    flash: bool = True

    def __post_init__(self) -> None:
        _check_registered("model.name", MODEL_REGISTRY, self.name)
        if self.engine in ENGINE_ALIASES:     # normalise to canonical
            object.__setattr__(self, "engine",
                               ENGINE_ALIASES[self.engine])
        _check_registered("model.engine", ENGINES, self.engine)
        _check_positive_int("model.num_layers", self.num_layers,
                            optional=True)
        _check_bool("model.flash", self.flash)


@dataclass(frozen=True)
class HardwareSpec(_SpecBase):
    """Where the server runs: device, interconnect, parallel plan.

    Attributes:
        gpu: GPU registry key.
        link: Interconnect registry key joining the device grid (only
            priced when ``parallel`` is non-trivial).
        parallel: Device-parallelism degrees; accepts the ``ep=4,tp=2``
            string (or mapping) syntax through ``from_dict``.
        streams: GPU streams for expert-segment LPT overlap.
    """

    _SECTION = "hardware"

    gpu: str = "rtx4070s"
    link: str = "nvlink"
    parallel: ParallelPlan = field(default_factory=ParallelPlan)
    streams: int = 1

    def __post_init__(self) -> None:
        _check_registered("hardware.gpu", GPU_REGISTRY, self.gpu)
        _check_registered("hardware.link", LINK_REGISTRY, self.link)
        if not isinstance(self.parallel, ParallelPlan):
            _fail("hardware.parallel",
                  "must be a ParallelPlan (or the 'ep=4,tp=2' syntax "
                  "in config files)")
        if self.parallel.dp > 1:
            _fail("hardware.parallel",
                  "dp > 1 replicas are not served by one engine; run "
                  "one deployment per replica")
        _check_positive_int("hardware.streams", self.streams)

    def _encode_field(self, name: str, value: Any) -> Any:
        if name == "parallel":
            return value.describe()              # "ep=4,tp=2,dp=1"
        return value

    @classmethod
    def _decode_field(cls, name: str, value: Any) -> Any:
        if name == "parallel":
            try:
                return ParallelPlan.from_any(value)
            except ConfigError as exc:
                raise ConfigError(f"hardware.parallel: {exc}") from None
        return value


@dataclass(frozen=True)
class ServingSpec(_SpecBase):
    """How the engine schedules and charges memory.

    Attributes:
        batcher: Step-composition policy name.
        token_budget: Per-step new-token budget of the budgeted
            policies.
        batch_size: Static-batcher batch size.
        max_running: Optional resident-request cap below the
            memory-derived limit.
        page_size: KV page size in tokens; ``None`` keeps the
            conservative whole-request reservation, a positive value
            switches to paged admission with preemption.
        scheduler: Preemption/queue-order policy: ``youngest_first``
            (the historical default, byte-identical to the goldens) or
            ``priority_slack`` (SLO-aware: evict low priority / most
            slack first, admit high priority first).
        placement: Expert-to-device placement policy under expert
            parallelism.
        horizon_s: Optional serving horizon (seconds of simulated
            clock).
        sanitize: Run under the sim-sanitizer's runtime invariant
            checks (see :mod:`repro.analysis.sanitizer`).  ``False``
            still honours the ``REPRO_SANITIZE`` environment variable
            at run time; reports are byte-identical either way.
        pools: Disaggregated prefill/decode pools
            (:class:`~repro.serve.disagg.PoolSpec`); ``None`` keeps
            the colocated engine (and the pre-disagg report and config
            payload shapes).  A single ``role: both`` pool is the
            documented degenerate form and also runs colocated.
        router: Pool-assignment policy (``repro list routers``);
            only read when ``pools`` is set.
        transfer_link: Interconnect pricing the prefill -> decode KV
            migration (``zero-copy`` is the free-handoff limit); only
            read when ``pools`` is set.
    """

    _SECTION = "serving"

    batcher: str = "continuous"
    token_budget: int = 4096
    batch_size: int = 8
    max_running: int | None = None
    page_size: int | None = None
    scheduler: str = "youngest_first"
    placement: str = "balanced"
    horizon_s: float | None = None
    sanitize: bool = False
    pools: tuple[PoolSpec, ...] | None = None
    router: str = "round_robin"
    transfer_link: str = "pcie4"

    def __post_init__(self) -> None:
        _check_choice("serving.batcher", self.batcher, BATCHER_NAMES)
        _check_positive_int("serving.token_budget", self.token_budget)
        _check_positive_int("serving.batch_size", self.batch_size)
        _check_positive_int("serving.max_running", self.max_running,
                            optional=True)
        _check_positive_int("serving.page_size", self.page_size,
                            optional=True)
        _check_choice("serving.scheduler", self.scheduler,
                      SCHEDULER_NAMES)
        _check_choice("serving.placement", self.placement,
                      PLACEMENT_POLICIES)
        _check_positive_float("serving.horizon_s", self.horizon_s,
                              optional=True)
        _check_bool("serving.sanitize", self.sanitize)
        if self.pools is not None:
            if not isinstance(self.pools, tuple):
                _fail("serving.pools",
                      "must be a tuple of PoolSpec (a list of mappings "
                      "in config files)")
            for i, pool in enumerate(self.pools):
                if not isinstance(pool, PoolSpec):
                    _fail(f"serving.pools[{i}]",
                          f"must be a PoolSpec, got "
                          f"{type(pool).__name__}")
            try:
                validate_pools(self.pools)
            except ConfigError as exc:
                # validate_pools messages start with "pools: ...";
                # qualify them as serving.pools: ...
                raise ConfigError(f"serving.{exc}") from None
        _check_registered("serving.router", ROUTERS, self.router)
        _check_registered("serving.transfer_link", LINK_REGISTRY,
                          self.transfer_link)

    def to_dict(self) -> dict[str, Any]:
        """Plain-type payload; ``from_dict`` inverts it exactly.

        The disagg keys (``pools``/``router``/``transfer_link``) are
        emitted only when ``pools`` is set, so colocated specs keep
        their historical payload shape byte-for-byte.
        """
        out = super().to_dict()
        if self.pools is None:
            for key in ("pools", "router", "transfer_link"):
                del out[key]
        return out

    def _encode_field(self, name: str, value: Any) -> Any:
        if name == "pools" and value is not None:
            return [pool.to_dict() for pool in value]
        return value

    @classmethod
    def _decode_field(cls, name: str, value: Any) -> Any:
        if name == "pools" and value is not None:
            if not isinstance(value, (list, tuple)):
                _fail("serving.pools",
                      f"must be a list of pool mappings, got "
                      f"{type(value).__name__}")
            decoded = []
            for i, entry in enumerate(value):
                if isinstance(entry, PoolSpec):
                    decoded.append(entry)
                    continue
                if not isinstance(entry, Mapping):
                    _fail(f"serving.pools[{i}]",
                          f"must be a mapping, got "
                          f"{type(entry).__name__}")
                entry = dict(entry)
                if entry.get("engine") in ENGINE_ALIASES:
                    entry["engine"] = ENGINE_ALIASES[entry["engine"]]
                try:
                    decoded.append(PoolSpec.from_dict(entry))
                except ConfigError as exc:
                    # Pool errors are "field: message"; qualify them
                    # as serving.pools[i].field: message.
                    raise ConfigError(
                        f"serving.pools[{i}].{exc}") from None
            return tuple(decoded)
        return value


@dataclass(frozen=True)
class WorkloadSpec(_SpecBase):
    """What traffic the server faces.

    Attributes:
        kind: Arrival-trace shape, validated against the
            :data:`repro.workloads.WORKLOADS` registry (``poisson``,
            ``bursty``, ``diurnal``, ``flash_crowd``, ``trace`` plus
            any third-party registration).
        requests: Number of requests in the trace.
        qps: Offered load in requests/second.
        prompt_tokens: Mean prompt length.
        output_tokens: Mean output length.
        jitter: Half-width of the uniform length band, in [0, 1).
        eos_sampling: Geometric EOS-sampled output lengths instead of
            the uniform jitter band (seeded, reproducible).
        burst_factor: Burst rate multiplier (bursty traces only).
        burst_len: Requests per burst (bursty traces only).
        period_s: Day length in simulated seconds (diurnal only).
        amplitude: Peak-to-mean rate swing in [0, 1] (diurnal only).
        crowd_factor: Spike rate multiplier (flash_crowd only).
        crowd_start_s: Spike window start (flash_crowd only).
        crowd_duration_s: Spike window length (flash_crowd only).
        trace_path: CSV trace file to replay (required for — and only
            valid with — file-replay kinds such as ``trace``).
        tenants: Multi-tenant request classes
            (:class:`~repro.workloads.tenants.TenantSpec`); empty
            keeps the single implicit tenant and the pre-tenant
            report shape.
        routing_skew: Zipf skew of per-step expert loads.
        seed: Trace and engine RNG seed.
    """

    _SECTION = "workload"

    kind: str = "poisson"
    requests: int = 48
    qps: float = 2.0
    prompt_tokens: int = 512
    output_tokens: int = 32
    jitter: float = 0.5
    eos_sampling: bool = False
    burst_factor: float = 8.0
    burst_len: int = 16
    period_s: float = 60.0
    amplitude: float = 0.5
    crowd_factor: float = 8.0
    crowd_start_s: float = 5.0
    crowd_duration_s: float = 5.0
    trace_path: str | None = None
    tenants: tuple[TenantSpec, ...] = ()
    routing_skew: float = 0.0
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        _check_registered("workload.kind", WORKLOADS, self.kind)
        _check_positive_int("workload.requests", self.requests)
        _check_positive_float("workload.qps", self.qps)
        _check_positive_int("workload.prompt_tokens", self.prompt_tokens)
        _check_positive_int("workload.output_tokens", self.output_tokens)
        if (isinstance(self.jitter, bool)
                or not isinstance(self.jitter, (int, float))
                or not 0.0 <= self.jitter < 1.0):
            _fail("workload.jitter", "must be in [0, 1)")
        _check_bool("workload.eos_sampling", self.eos_sampling)
        _check_positive_float("workload.burst_factor", self.burst_factor)
        if self.burst_factor <= 1.0:
            _fail("workload.burst_factor", "must be > 1")
        _check_positive_int("workload.burst_len", self.burst_len)
        _check_positive_float("workload.period_s", self.period_s)
        if (isinstance(self.amplitude, bool)
                or not isinstance(self.amplitude, (int, float))
                or not 0.0 <= self.amplitude <= 1.0):
            _fail("workload.amplitude", "must be in [0, 1]")
        _check_positive_float("workload.crowd_factor", self.crowd_factor)
        if self.crowd_factor <= 1.0:
            _fail("workload.crowd_factor", "must be > 1")
        if (isinstance(self.crowd_start_s, bool)
                or not isinstance(self.crowd_start_s, (int, float))
                or self.crowd_start_s < 0):
            _fail("workload.crowd_start_s", "must be >= 0")
        _check_positive_float("workload.crowd_duration_s",
                              self.crowd_duration_s)
        if self.trace_path is not None:
            if not isinstance(self.trace_path, str) or not self.trace_path:
                _fail("workload.trace_path",
                      f"must be a non-empty string, got "
                      f"{self.trace_path!r}")
            if not WORKLOADS[self.kind].from_file:
                _fail("workload.trace_path",
                      f"only applies to file-replay kinds, not "
                      f"{self.kind!r}")
        elif WORKLOADS[self.kind].from_file:
            _fail("workload.trace_path",
                  f"required for kind {self.kind!r}")
        if not isinstance(self.tenants, tuple):
            _fail("workload.tenants",
                  "must be a tuple of TenantSpec (a list of mappings "
                  "in config files)")
        for i, tenant in enumerate(self.tenants):
            if not isinstance(tenant, TenantSpec):
                _fail(f"workload.tenants[{i}]",
                      f"must be a TenantSpec, got "
                      f"{type(tenant).__name__}")
        try:
            validate_tenants(self.tenants)
        except ConfigError as exc:
            _fail("workload.tenants", str(exc))
        try:
            validate_skew(self.routing_skew)
        except RoutingError as exc:
            _fail("workload.routing_skew", str(exc))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            _fail("workload.seed",
                  f"must be an integer, got {self.seed!r}")

    def _encode_field(self, name: str, value: Any) -> Any:
        if name == "tenants":
            return [tenant.to_dict() for tenant in value]
        return value

    @classmethod
    def _decode_field(cls, name: str, value: Any) -> Any:
        if name == "tenants":
            if not isinstance(value, (list, tuple)):
                _fail("workload.tenants",
                      f"must be a list of tenant mappings, got "
                      f"{type(value).__name__}")
            decoded = []
            for i, entry in enumerate(value):
                if isinstance(entry, TenantSpec):
                    decoded.append(entry)
                    continue
                if not isinstance(entry, Mapping):
                    _fail(f"workload.tenants[{i}]",
                          f"must be a mapping, got "
                          f"{type(entry).__name__}")
                try:
                    decoded.append(TenantSpec.from_dict(entry))
                except ConfigError as exc:
                    # Tenant errors are "field: message"; qualify them
                    # as workload.tenants[i].field: message.
                    raise ConfigError(
                        f"workload.tenants[{i}].{exc}") from None
            return tuple(decoded)
        return value


#: Section name -> spec class, in the order config files list them.
SECTIONS: dict[str, type[_SpecBase]] = {
    "model": ModelSpec,
    "hardware": HardwareSpec,
    "serving": ServingSpec,
    "workload": WorkloadSpec,
}


@dataclass(frozen=True)
class DeploymentSpec(_SpecBase):
    """One complete serving experiment as a value.

    Composes the four section specs; omitted sections (and omitted
    fields within a section) take their defaults, so the empty mapping
    is a valid config.  The whole spec round-trips exactly through
    ``to_dict()``/``from_dict()`` and compares by value, which is what
    the golden-equivalence and sweep-expansion guarantees rest on.
    """

    _SECTION = "deployment"

    model: ModelSpec = field(default_factory=ModelSpec)
    hardware: HardwareSpec = field(default_factory=HardwareSpec)
    serving: ServingSpec = field(default_factory=ServingSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)

    def __post_init__(self) -> None:
        for name, spec_cls in SECTIONS.items():
            value = getattr(self, name)
            if not isinstance(value, spec_cls):
                _fail(name, f"must be a {spec_cls.__name__}, got "
                            f"{type(value).__name__}")

    def to_dict(self) -> dict[str, Any]:
        return {name: getattr(self, name).to_dict()
                for name in SECTIONS}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeploymentSpec":
        if not isinstance(payload, Mapping):
            raise ConfigError(
                f"deployment config: expected a mapping, got "
                f"{type(payload).__name__}")
        unknown = sorted(set(payload) - set(SECTIONS))
        if unknown:
            hint = (" (put sweep axes under the top-level 'sweep' key "
                    "of the config file)" if unknown[0] == "sweep"
                    else "")
            raise ConfigError(
                f"{unknown[0]}: unknown section (known: "
                f"{', '.join(SECTIONS)}){hint}")
        kwargs = {}
        for name, spec_cls in SECTIONS.items():
            section = payload.get(name, {})
            if section is None:
                # A bare `model:` header in YAML parses to None; treat
                # it as the documented all-defaults section.
                section = {}
            kwargs[name] = spec_cls.from_dict(section)
        return cls(**kwargs)  # type: ignore[arg-type]

    def with_overrides(self, overrides: Mapping[str, Any]
                       ) -> "DeploymentSpec":
        """Copy with dotted-path fields replaced.

        Keys take the ``section.field`` form (``"workload.qps"``,
        ``"hardware.parallel"``); values pass through the same
        decoding and validation as ``from_dict``, so an override can
        use any file syntax (e.g. ``"ep=4,tp=2"`` for a plan).
        """
        payload = self.to_dict()
        for path, value in overrides.items():
            section, sep, name = path.partition(".")
            if not sep or section not in SECTIONS or not name:
                raise ConfigError(
                    f"override path {path!r} must take the "
                    f"section.field form with a section in "
                    f"{', '.join(SECTIONS)}")
            known = [f.name for f in fields(SECTIONS[section])]
            if name not in known:
                raise ConfigError(
                    f"{path}: unknown field (known: "
                    f"{', '.join(known)})")
            payload[section][name] = value
        return DeploymentSpec.from_dict(payload)
