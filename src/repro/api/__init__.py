"""Declarative deployment API — the canonical public surface.

Serving experiments are *data*: a :class:`DeploymentSpec` (four typed,
frozen section specs) validates on construction with path-qualified
errors, round-trips exactly through ``to_dict()``/``from_dict()`` and
through YAML/JSON config files, and expands ``sweep:`` sections into
cartesian grids.  :class:`Deployment` binds a spec to the execution
stack: ``build()`` returns the (context, batcher, trace) triple,
``run()`` returns a typed :class:`~repro.serve.metrics.ServeReport`.

Quick tour::

    from repro.api import Deployment, DeploymentSpec

    spec = DeploymentSpec.from_dict({
        "model":    {"engine": "samoyeds", "num_layers": 4},
        "workload": {"requests": 32, "qps": 4.0},
    })
    report = Deployment(spec).run()
    print(report.qps_sustained, report.ttft_s.p99)

    # or from a file, including sweeps:
    #   repro bench run examples/configs/serve_default.yaml
"""

from repro.api.spec import (
    ENGINE_ALIASES,
    PLACEMENT_POLICIES,
    SECTIONS,
    TRACE_KINDS,
    DeploymentSpec,
    HardwareSpec,
    ModelSpec,
    ServingSpec,
    WorkloadSpec,
)
from repro.api.loader import (
    SweepPoint,
    expand_sweep,
    load_config,
    load_deployment,
    load_sweep,
)
from repro.api.deployment import Deployment
from repro.workloads import TenantSpec

__all__ = [
    "DeploymentSpec",
    "ModelSpec",
    "HardwareSpec",
    "ServingSpec",
    "WorkloadSpec",
    "TenantSpec",
    "Deployment",
    "SweepPoint",
    "expand_sweep",
    "load_config",
    "load_deployment",
    "load_sweep",
    "ENGINE_ALIASES",
    "TRACE_KINDS",
    "PLACEMENT_POLICIES",
    "SECTIONS",
]
