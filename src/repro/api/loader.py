"""Config-file loading and sweep-grid expansion.

A deployment config file is a mapping with up to four spec sections
(``model``/``hardware``/``serving``/``workload`` — all optional, all
fields defaulted) plus an optional top-level ``sweep`` section mapping
dotted field paths to lists of values::

    model:    {engine: samoyeds}
    workload: {requests: 32, qps: 4.0}
    sweep:
      hardware.parallel: ["ep=1", "ep=2", "ep=4"]
      workload.qps: [2.0, 8.0]

The sweep expands to the cartesian grid of its axes — here six
deployments — in declaration order with the *last* axis varying
fastest, exactly the order nested ``for`` loops over the listed axes
would visit.  Files ending in ``.json`` are parsed as JSON; everything
else goes through PyYAML, which is gated so a missing dependency
produces a clear :class:`~repro.errors.ConfigError` rather than an
ImportError (JSON configs keep working without it).
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.api.spec import SECTIONS, DeploymentSpec
from repro.errors import ConfigError

try:                                    # gated: JSON works without it
    import yaml
except ImportError:                     # pragma: no cover - env-specific
    yaml = None


def load_config(path: str | os.PathLike) -> dict[str, Any]:
    """Read a YAML/JSON config file into a raw mapping.

    The raw dict still contains the ``sweep`` section if one is
    present; :func:`load_deployment` / :func:`load_sweep` are the
    typed entry points.
    """
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ConfigError(f"cannot read config {path!r}: {exc}") from None
    if path.endswith(".json"):
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}: invalid JSON: {exc}") from None
    else:
        if yaml is None:
            raise ConfigError(
                f"{path}: YAML configs need pyyaml (pip install "
                f"pyyaml), or use a .json config")
        try:
            raw = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ConfigError(f"{path}: invalid YAML: {exc}") from None
    if raw is None:
        raw = {}                        # an empty file is all-defaults
    if not isinstance(raw, dict):
        raise ConfigError(
            f"{path}: config must be a mapping, got "
            f"{type(raw).__name__}")
    return raw


def load_deployment(path: str | os.PathLike) -> DeploymentSpec:
    """Load a single-run config file into a validated spec.

    Rejects files with a ``sweep`` section — those describe many
    deployments; use :func:`load_sweep`.
    """
    raw = load_config(path)
    if "sweep" in raw:
        raise ConfigError(
            f"{os.fspath(path)}: config declares a sweep; use "
            f"load_sweep() (or `repro bench run`, which handles both)")
    return DeploymentSpec.from_dict(raw)


@dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point: the overrides applied and the result."""

    overrides: tuple[tuple[str, Any], ...]
    spec: DeploymentSpec

    def describe(self) -> str:
        """Compact ``path=value`` label for tables and JSON reports."""
        return " ".join(f"{path}={value}"
                        for path, value in self.overrides) or "base"


def expand_sweep(base: DeploymentSpec,
                 sweep: Mapping[str, Sequence[Any]]
                 ) -> list[SweepPoint]:
    """Expand a sweep section into the cartesian grid of deployments.

    ``sweep`` maps dotted ``section.field`` paths to non-empty value
    lists; each grid point applies one value per axis through
    :meth:`DeploymentSpec.with_overrides`, so every expanded spec is
    fully validated.  Axis order is declaration order, the last axis
    varying fastest.
    """
    if not isinstance(sweep, Mapping):
        raise ConfigError(
            f"sweep: expected a mapping of field paths to value "
            f"lists, got {type(sweep).__name__}")
    if not sweep:
        raise ConfigError("sweep: declares no axes")
    axes: list[tuple[str, list[Any]]] = []
    for path, values in sweep.items():
        if isinstance(values, (str, bytes)) or not isinstance(
                values, Sequence):
            raise ConfigError(
                f"sweep.{path}: expected a list of values, got "
                f"{values!r}")
        if not values:
            raise ConfigError(f"sweep.{path}: empty value list")
        axes.append((path, list(values)))
    points: list[SweepPoint] = []
    for combo in itertools.product(*(values for _, values in axes)):
        overrides = tuple((path, value) for (path, _), value
                          in zip(axes, combo))
        points.append(SweepPoint(
            overrides=overrides,
            spec=base.with_overrides(dict(overrides))))
    return points


_NO_SWEEP = object()                    # absent vs a bare `sweep:` key


def load_sweep(path: str | os.PathLike
               ) -> tuple[DeploymentSpec, list[SweepPoint]]:
    """Load any config file: base spec plus its expanded grid.

    A file without a ``sweep`` section yields exactly one point with
    empty ``overrides`` (the base spec), so callers can treat every
    config uniformly — and can tell the two shapes apart, since an
    expanded sweep point always carries at least one override.  A
    ``sweep`` key that is present but empty (a bare ``sweep:`` header,
    or ``sweep: {}``) is an error, not a silent single run: it usually
    means the axes were commented out by accident.
    """
    raw = load_config(path)
    sweep = raw.pop("sweep", _NO_SWEEP)
    base = DeploymentSpec.from_dict(raw)
    if sweep is _NO_SWEEP:
        return base, [SweepPoint(overrides=(), spec=base)]
    if sweep is None:
        raise ConfigError(
            f"{os.fspath(path)}: sweep: declares no axes (remove the "
            f"key for a single run)")
    return base, expand_sweep(base, sweep)


#: Section names, re-exported so callers introspecting configs need
#: only this module.
CONFIG_SECTIONS = tuple(SECTIONS)
