"""The :class:`Deployment` facade: spec in, report out.

``Deployment(spec).run()`` is the canonical way to execute a serving
experiment.  ``build()`` exposes the intermediate stack — the
:class:`~repro.context.ExecutionContext`, the batching policy and the
arrival trace — for callers that want to drive
:class:`~repro.serve.engine.ServingEngine` themselves; ``run()`` is
``build()`` plus the event loop, returning the typed
:class:`~repro.serve.metrics.ServeReport`.

The construction here is *definitionally* what the legacy
:func:`repro.serve.simulate` call does with the equivalent kwargs: the
same ``ExecutionContext.create`` path, the same batcher factory and the
same seeded trace generators, so a default-spec run is byte-identical
to its pre-spec counterpart (the golden tests pin this).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro.api.spec import DeploymentSpec
from repro.context import ExecutionContext
from repro.serve.batcher import Batcher, make_batcher
from repro.serve.disagg import DisaggCluster, DisaggServingEngine, PoolSpec
from repro.serve.engine import ServingEngine
from repro.serve.metrics import ServeReport
from repro.workloads import WORKLOADS, Request, assign_tenants


@dataclass(frozen=True)
class Deployment:
    """A validated spec bound to the machinery that executes it."""

    spec: DeploymentSpec

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "Deployment":
        """Load a single-run config file (YAML or JSON)."""
        from repro.api.loader import load_deployment
        return cls(spec=load_deployment(path))

    @classmethod
    def from_dict(cls, payload) -> "Deployment":
        """Rebuild from a ``DeploymentSpec.to_dict()`` payload.

        This is the wire format of the parallel experiment executor:
        :mod:`repro.exec` ships each sweep point to its worker process
        as the spec's plain-dict form (specs round-trip exactly, so
        the rebuilt deployment is value-identical to the parent's).
        """
        return cls(spec=DeploymentSpec.from_dict(payload))

    # ------------------------------------------------------------------
    # Stack construction
    # ------------------------------------------------------------------
    def build_context(self) -> ExecutionContext:
        """The execution context the spec describes."""
        model, hw = self.spec.model, self.spec.hardware
        return ExecutionContext.create(
            model.name, model.engine, hw.gpu, streams=hw.streams,
            flash=model.flash, parallel=hw.parallel, link=hw.link)

    def build_batcher(self) -> Batcher:
        """A fresh batching policy (engines must not share one)."""
        serving = self.spec.serving
        return make_batcher(serving.batcher,
                            token_budget=serving.token_budget,
                            batch_size=serving.batch_size,
                            max_running=serving.max_running)

    def build_trace(self) -> list[Request]:
        """The seeded arrival trace (deterministic per spec).

        Dispatches through the :data:`repro.workloads.WORKLOADS`
        registry: the factory named by ``workload.kind`` picks the
        options it declared from the spec's full option dict.  When
        the spec declares tenants, generated traces are stamped with
        tenant identities afterwards (file-replayed traces carry their
        own ``tenant`` column and are replayed verbatim — the tenant
        specs then contribute SLOs, priorities and rate limits only).
        """
        w = self.spec.workload
        factory = WORKLOADS[w.kind]
        trace = factory.build_from_options(
            requests=w.requests, qps=w.qps,
            prompt_tokens=w.prompt_tokens,
            output_tokens=w.output_tokens, jitter=w.jitter,
            eos_sampling=w.eos_sampling, seed=w.seed,
            burst_factor=w.burst_factor, burst_len=w.burst_len,
            period_s=w.period_s, amplitude=w.amplitude,
            crowd_factor=w.crowd_factor,
            crowd_start_s=w.crowd_start_s,
            crowd_duration_s=w.crowd_duration_s,
            trace_path=w.trace_path)
        if w.tenants and not factory.from_file:
            trace = assign_tenants(trace, w.tenants, seed=w.seed,
                                   jitter=w.jitter,
                                   eos_sampling=w.eos_sampling)
        return trace

    def build(self) -> tuple[ExecutionContext, Batcher, list[Request]]:
        """Materialise the whole stack the spec describes."""
        return self.build_context(), self.build_batcher(), \
            self.build_trace()

    def build_pool_context(self, pool: PoolSpec) -> ExecutionContext:
        """One pool's execution context: pool overrides over the
        deployment's model/hardware sections."""
        model, hw = self.spec.model, self.spec.hardware
        return ExecutionContext.create(
            model.name, pool.engine or model.engine,
            pool.gpu or hw.gpu, streams=hw.streams,
            flash=model.flash,
            parallel=pool.parallel if pool.parallel is not None
            else None,
            link=hw.link)

    def build_pool_batcher(self, pool: PoolSpec) -> Batcher:
        """One pool's batching policy: pool overrides over
        ``serving``."""
        serving = self.spec.serving
        return make_batcher(
            pool.batcher or serving.batcher,
            token_budget=pool.token_budget or serving.token_budget,
            batch_size=pool.batch_size or serving.batch_size,
            max_running=pool.max_running or serving.max_running)

    def _build_pool_engine(self, pool: PoolSpec) -> ServingEngine:
        """The classic engine carrying one pool's context, batcher and
        ledger configuration.  Pool engines never own the horizon —
        the disaggregated event loop holds the shared clock."""
        model, serving, w = (self.spec.model, self.spec.serving,
                             self.spec.workload)
        return ServingEngine(ctx=self.build_pool_context(pool),
                             batcher=self.build_pool_batcher(pool),
                             num_layers=model.num_layers,
                             routing_skew=w.routing_skew,
                             seed=w.seed,
                             page_size=serving.page_size,
                             placement_policy=serving.placement,
                             tenants=w.tenants,
                             scheduler=serving.scheduler,
                             sanitize=serving.sanitize or None)

    def build_engine(self) -> "ServingEngine | DisaggServingEngine":
        """The serving engine, ready to ``run()`` a trace.

        Colocated specs (``serving.pools`` unset) build the classic
        :class:`ServingEngine`.  A *degenerate* pool set — one pool
        serving both phases — also runs colocated (with the pool's
        overrides applied), which is what pins the degenerate-config
        report byte-identical to a pool-free spec.  Genuine multi-pool
        specs build a :class:`DisaggServingEngine`; each pool's
        parallel plan comes from its own ``parallel`` field
        (``hardware.parallel`` applies to colocated runs only).
        """
        model, serving, w = (self.spec.model, self.spec.serving,
                             self.spec.workload)
        pools = serving.pools
        if pools is not None:
            cluster = DisaggCluster.build(pools,
                                          link=serving.transfer_link)
            if not cluster.is_degenerate:
                return DisaggServingEngine(
                    cluster,
                    [self._build_pool_engine(p) for p in cluster.pools],
                    router=serving.router,
                    horizon_s=serving.horizon_s)
        degenerate = pools[0] if pools is not None else None
        ctx = (self.build_pool_context(degenerate)
               if degenerate is not None and (
                   degenerate.gpu or degenerate.engine
                   or degenerate.parallel)
               else self.build_context())
        batcher = (self.build_pool_batcher(degenerate)
                   if degenerate is not None else self.build_batcher())
        return ServingEngine(ctx=ctx,
                             batcher=batcher,
                             num_layers=model.num_layers,
                             routing_skew=w.routing_skew,
                             seed=w.seed,
                             page_size=serving.page_size,
                             horizon_s=serving.horizon_s,
                             placement_policy=serving.placement,
                             tenants=w.tenants,
                             scheduler=serving.scheduler,
                             sanitize=serving.sanitize or None)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, trace: Sequence[Request] | None = None,
            max_steps: int = 1_000_000) -> ServeReport:
        """Serve the spec's trace (or ``trace``) and report.

        Passing an explicit ``trace`` reuses one arrival sequence
        across several deployments (e.g. the CLI comparing engines
        under identical traffic); the engine configuration still comes
        entirely from the spec.
        """
        engine = self.build_engine()
        return engine.run(self.build_trace() if trace is None else trace,
                          max_steps=max_steps)
