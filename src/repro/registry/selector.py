"""Cost-driven engine selection: ``engine="auto"``.

Figures 12-13 of the paper show that no single kernel wins everywhere —
Samoyeds' SSMM beats the baselines on some (shape, density, device)
points and loses on others.  That is exactly the regime where the choice
should be automated: :class:`AutoEngine` queries every registered
engine's :class:`~repro.registry.capabilities.Capabilities`, prices the
compatible ones through their existing cost models and dispatches to
the argmin, so ``engine="auto"`` is never worse than the best fixed
engine *on the modelled grid*.

Selections are memoised in a :class:`SelectionTable` — a persistent
(device, problem-bucket, density) -> engine map with the same design as
:class:`~repro.kernels.autotuner.TuningTable`: power-of-two shape
buckets, JSON serialisation with a schema ``version`` field, and
:class:`~repro.errors.ConfigError` (naming the path) on corrupt or
schema-drifted files.  A deployment ships a pre-selected table the way
vendor libraries ship per-architecture dispatch tables.

The module registers one shared :data:`AUTO_ENGINE` under the name
``"auto"`` on import; :mod:`repro.moe` imports it, so every front door
(``ExecutionContext.create``, ``DeploymentSpec``, the CLI) accepts
``engine="auto"`` without further wiring.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ConfigError, ReproError
from repro.kernels.autotuner import problem_bucket
from repro.moe.layers import ENGINES, MoEEngine, register_engine
from repro.registry.capabilities import Capabilities
from repro.registry.core import Registry
from repro.utils.persist import (
    load_versioned_json,
    merge_versioned_json,
    save_versioned_json,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.hw.simulator import CostBreakdown
    from repro.hw.spec import GPUSpec
    from repro.kernels.base import MatmulKernel
    from repro.moe.config import MoEModelConfig


class SelectionTable:
    """Persistent (device, problem bucket, density) -> engine map.

    Mirrors :class:`~repro.kernels.autotuner.TuningTable`: entries are
    keyed by the power-of-two bucket of the expert-segment GEMM shape
    (extended with the MoE-layer shape — expert count, top-k, shared
    experts, activation), and each stores the winning engine name plus
    its modelled seconds at the bucket point.  ``save``/``load``
    round-trip through JSON with a schema ``version`` field so a stale
    file fails loudly instead of mis-dispatching.
    """

    VERSION = 1

    def __init__(self, entries: "dict[str, dict] | None" = None) -> None:
        self.entries: dict[str, dict] = dict(entries or {})

    @staticmethod
    def key(device: str, problem: str, density: float) -> str:
        """``device:problem:density`` — the problem component is the
        GEMM bucket plus the MoE-layer shape (see
        :meth:`AutoEngine._problem_key`)."""
        return f"{device}:{problem}:d{density:g}"

    @staticmethod
    def step_key(device: str, phase: str, problem: str,
                 density: float) -> str:
        """Key of a whole-*step* memo entry (the serving pricer's
        extension of the per-GEMM selection memo): the ``step:``
        prefix namespaces it away from :meth:`key`, and the serving
        phase (``prefill``/``decode``) joins the bucket because the
        two phases revisit disjoint step shapes.  The entry stores the
        dispatch winner plus the first modelled whole-step seconds
        seen in the bucket."""
        return f"step:{device}:{phase}:{problem}:d{density:g}"

    def record(self, key: str, engine: str, seconds: float) -> None:
        self.entries[key] = {"engine": engine, "seconds": float(seconds)}

    def lookup(self, key: str) -> "str | None":
        """Winning engine name for ``key``, or ``None`` on a miss."""
        entry = self.entries.get(key)
        return entry["engine"] if entry else None

    def save(self, path: "str | Path") -> None:
        save_versioned_json(path, "selection table", self.VERSION,
                            self.entries)

    def merge_save(self, path: "str | Path") -> None:
        """Merge this table's entries into the file at ``path``.

        Load-modify-merge through
        :func:`~repro.utils.persist.merge_versioned_json`: entries
        already on disk survive, this table's entries win collisions,
        and the write is atomic — the contract that lets N pool
        workers accumulate selections in one shared warm table
        instead of clobbering each other.  The in-memory table adopts
        the merged view.
        """
        self.entries = dict(merge_versioned_json(
            path, "selection table", self.VERSION, self.entries,
            entry_ok=lambda v: isinstance(v, dict) and "engine" in v))

    @classmethod
    def load(cls, path: "str | Path") -> "SelectionTable":
        """Load a saved table; corruption raises :class:`ConfigError`.

        Unlike :class:`~repro.kernels.autotuner.TuningTable` there is
        no pre-version legacy format to grandfather, so a missing
        ``version`` field is rejected.
        """
        return cls(entries=load_versioned_json(
            path, "selection table", cls.VERSION,
            entry_ok=lambda v: isinstance(v, dict) and "engine" in v))

    def __len__(self) -> int:
        return len(self.entries)


class AutoEngine(MoEEngine):
    """Dispatching engine: price all compatible engines, run the argmin.

    For each expert-segment shape bucket the selector filters the
    registry by capability (``supports(config)`` for activation
    constraints, ``capabilities().supports_device(spec)`` for the
    sparse-ALU gate), prices every survivor at the bucket point through
    its own cost model and memoises the winner in :attr:`table`.
    ``cost()`` then returns the winner's breakdown for the *actual*
    token count, with ``detail["selected_engine"]`` naming the choice.

    The functional ``run`` face inherits the exact reference data flow
    (mathematically identical to the dense engines): auto-selection is
    a *performance* dispatch; accuracy experiments pin their engine.
    """

    name = "auto"
    #: Dispatcher, not a contestant: figure sweeps comparing "every
    #: engine" skip meta engines (auto would trivially equal the best).
    is_meta = True

    def __init__(self, registry: "Registry[MoEEngine] | None" = None,
                 table: "SelectionTable | None" = None) -> None:
        self._registry = registry
        self.table = table if table is not None else SelectionTable()

    # ------------------------------------------------------------------
    # Candidate set
    # ------------------------------------------------------------------
    @property
    def registry(self) -> "Registry[MoEEngine]":
        return self._registry if self._registry is not None else ENGINES

    def candidates(self) -> "list[tuple[str, MoEEngine]]":
        """Registered fixed engines, in legend (registration) order."""
        return [(name, engine) for name, engine in self.registry.items()
                if not getattr(engine, "is_meta", False)]

    def compatible_engines(self, config: "MoEModelConfig",
                           spec: "GPUSpec") -> "list[MoEEngine]":
        """Candidates that can legally run ``config`` on ``spec``."""
        return [engine for _, engine in self.candidates()
                if engine.supports(config)
                and engine.capabilities().supports_device(spec)]

    @property
    def density(self) -> float:
        """Weight density of the problem (the selection-table key axis):
        the sparse candidates' pruning level, 1.0 when only dense
        engines are registered."""
        densities = [engine.capabilities().a_density
                     for _, engine in self.candidates()]
        return min(densities, default=1.0)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    @staticmethod
    def _bucket(config: "MoEModelConfig",
                tokens: int) -> "tuple[int, int, int]":
        """Power-of-two bucket of the expert-segment GEMM shape."""
        return problem_bucket(config.intermediate_size,
                              config.hidden_size, max(1, tokens))

    @staticmethod
    def _problem_key(config: "MoEModelConfig", tokens: int,
                     num_shared: "int | None") -> str:
        """Problem-bucket component of the selection key.

        Beyond the GEMM bucket, the MoE-layer argmin depends on the
        full layer shape: expert count, top-k, shared experts and the
        activation (the NS markers).  Two Table-2 models can share a
        GEMM bucket (qwen2-moe and deepseek-moe both have h=1408,
        i=2048) while having different winners, so all of it keys the
        memo — never the model *name*, which third-party configs are
        free to reuse across shapes.
        """
        m, k, n = AutoEngine._bucket(config, tokens)
        shared = (config.num_shared_experts if num_shared is None
                  else num_shared)
        return (f"{m}x{k}x{n}-e{config.num_experts}-k{config.top_k}"
                f"-s{shared}-{config.activation}")

    def validate_choice(self, name: str, config: "MoEModelConfig",
                        spec: "GPUSpec") -> "MoEEngine | None":
        """Revalidate a (possibly shipped/stale) table entry.

        The named engine must be registered, must be a *fixed* engine
        — ``"auto"`` in a hand-edited table would dispatch the
        dispatcher to itself — and must still support the model on
        this device.  Returns the engine, or ``None`` when the entry
        cannot be honoured (the caller re-prices from scratch).
        """
        if name not in self.registry:
            return None
        engine = self.registry.get(name)
        if (not getattr(engine, "is_meta", False)
                and engine.supports(config)
                and engine.capabilities().supports_device(spec)):
            return engine
        return None

    def select(self, config: "MoEModelConfig", tokens: int,
               spec: "GPUSpec",
               num_shared: "int | None" = None) -> MoEEngine:
        """The engine winning this (config, tokens, device) point.

        Memoised per problem bucket: the first query prices every
        compatible engine at the bucket point and records the argmin;
        later queries in the same bucket are one table lookup.
        """
        bucket = self._bucket(config, tokens)
        key = SelectionTable.key(
            spec.name, self._problem_key(config, tokens, num_shared),
            self.density)
        choice = self.table.lookup(key)
        if choice is not None:
            engine = self.validate_choice(choice, config, spec)
            if engine is not None:
                return engine
        engines = self.compatible_engines(config, spec)
        if not engines:
            raise ConfigError(
                f"no registered engine supports {config.name} on "
                f"{spec.name}; candidates: "
                f"{', '.join(n for n, _ in self.candidates())}")
        bucket_tokens = bucket[2]
        best: "tuple[float, MoEEngine] | None" = None
        for engine in engines:
            try:
                seconds = engine.cost(config, bucket_tokens, spec,
                                      num_shared=num_shared).time_s
            except ReproError:
                continue          # legal by capability, infeasible here
            if best is None or seconds < best[0]:
                best = (seconds, engine)
        if best is None:
            raise ConfigError(
                f"every compatible engine failed to price {config.name} "
                f"on {spec.name}")
        self.table.record(key, best[1].name, best[0])
        return best[1]

    # ------------------------------------------------------------------
    # MoEEngine interface
    # ------------------------------------------------------------------
    def supports(self, config: "MoEModelConfig") -> bool:
        return any(engine.supports(config)
                   for _, engine in self.candidates())

    def capabilities(self) -> Capabilities:
        """Union view: auto itself never *requires* SpTCs (it can fall
        back to a dense engine) and issues whatever the winner does."""
        shapes: list[str] = []
        for _, engine in self.candidates():
            for shape in engine.capabilities().mma_shapes:
                if shape not in shapes:
                    shapes.append(shape)
        return Capabilities(sparsity_format="auto",
                            a_density=self.density,
                            mma_shapes=tuple(shapes),
                            needs_sparse_tensor_cores=False)

    def tile_rows(self, config: "MoEModelConfig") -> int:
        """Expert-segment n-tile: the samoyeds candidate's choice when
        one is registered (§4.2's 64/128 rule), else the 64 default."""
        for _, engine in self.candidates():
            rows = getattr(engine, "tile_rows", None)
            if rows is not None:
                return rows(config)
        return 64

    def segment_kernel(self, config: "MoEModelConfig",
                       spec: "GPUSpec") -> "MatmulKernel | None":
        """The winner's segment kernel for scheduler-level pricing
        (nominal 4096-token point, the paper's realistic shape)."""
        winner = self.select(config, 4096, spec)
        return winner.segment_kernel(config, spec)

    def cost(self, config: "MoEModelConfig", tokens: int,
             spec: "GPUSpec",
             num_shared: "int | None" = None) -> "CostBreakdown":
        """The selected engine's breakdown at the actual token count,
        with ``detail['selected_engine']`` naming the winner."""
        engine = self.select(config, tokens, spec,
                             num_shared=num_shared)
        result = engine.cost(config, tokens, spec,
                             num_shared=num_shared)
        return replace(result, detail={**result.detail,
                                       "selected_engine": engine.name})


#: The shared dispatcher every front door resolves ``"auto"`` to.
AUTO_ENGINE = AutoEngine()

if "auto" not in ENGINES:          # tolerate repeated module execution
    register_engine(AUTO_ENGINE)
