"""Generic name -> object registry with uniform error semantics.

Before this module the reproduction carried five ad-hoc registries
(``KERNELS`` and ``ENGINES`` module dicts, ``hw/spec``'s GPU table,
``hw/interconnect``'s link table, ``moe/config``'s model table) with
three different collision behaviours and two different miss messages.
:class:`Registry` gives them one contract:

* **registration** — functional (``reg.register(name, obj)``) or as a
  decorator (``@reg.register("name")``); a name collision raises the
  registry's error class unless ``replace=True`` is passed, so a typo'd
  re-registration can never silently shadow a paper entry;
* **lookup** — ``get`` (and ``[]``) raise the registry's error class
  with the sorted known-name list and a did-you-mean suggestion, so a
  config typo is a one-glance fix instead of a bare ``KeyError``;
* **iteration** — the mapping protocol (``in``, ``len``, ``items`` …)
  preserves *registration order*, which is the paper's legend order for
  kernels and engines; ``names()`` is always sorted for messages.

Third-party code extends the system by registering into the public
registries (see DESIGN.md "Plugin registry & auto dispatch") — no repro
internals need editing.
"""

from __future__ import annotations

import difflib
from typing import Callable, Generic, Iterator, TypeVar

from repro.errors import ConfigError, ReproError

T = TypeVar("T")

#: Sentinel distinguishing "decorator form" from registering ``None``.
_MISSING = object()


class Registry(Generic[T]):
    """An ordered name -> object table with helpful failure modes.

    Attributes:
        kind: Human label used in messages (``"engine"``, ``"GPU"`` …).
        error_cls: :class:`~repro.errors.ReproError` subclass raised on
            misses and collisions (domains keep their historical error
            types: hardware registries raise ``HardwareModelError``,
            the rest ``ConfigError``).
    """

    def __init__(self, kind: str,
                 error_cls: "type[ReproError]" = ConfigError) -> None:
        self.kind = kind
        self.error_cls = error_cls
        self._entries: dict[str, T] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, obj: "T | object" = _MISSING, *,
                 replace: bool = False) -> "T | Callable[[T], T]":
        """Add ``obj`` under ``name``; returns ``obj``.

        With ``obj`` omitted, returns a decorator registering the
        decorated object *as-is*.  The system registries store
        **instances** (their consumers call ``capabilities()`` /
        ``cost()`` on the values), so register an instance —
        ``register_kernel(MyKernel())`` — or decorate a factory whose
        *result* you register; decorating a class stores the class
        object itself, which those consumers cannot use::

            @CONFIG_HOOKS.register("mine")      # value-style registry
            def my_hook(spec): ...

        A duplicate ``name`` raises ``error_cls`` unless
        ``replace=True`` (deliberate overwrite, e.g. tests swapping a
        stub in).
        """
        if obj is _MISSING:
            def decorator(target: T) -> T:
                self.register(name, target, replace=replace)
                return target
            return decorator
        if name in self._entries and not replace:
            raise self.error_cls(
                f"{self.kind} {name!r} is already registered; pass "
                f"replace=True to overwrite it")
        self._entries[name] = obj  # type: ignore[assignment]
        return obj  # type: ignore[return-value]

    def unregister(self, name: str) -> T:
        """Remove and return the entry (tests restoring a clean slate)."""
        if name not in self._entries:
            raise self.error_cls(self.missing_message(name))
        return self._entries.pop(name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> T:
        """Entry registered under ``name``.

        A miss raises ``error_cls`` listing every valid name (sorted)
        plus a closest-match suggestion — the uniform message the
        registry satellite tests pin for all five registries.
        """
        try:
            return self._entries[name]
        except (KeyError, TypeError):
            raise self.error_cls(self.missing_message(name)) from None

    def missing_message(self, name: object) -> str:
        """The unknown-name message (shared with path-qualified specs)."""
        known = ", ".join(self.names()) or "<none registered>"
        message = (f"unknown {self.kind} {name!r}; known "
                   f"{self.kind}s: {known}")
        close = difflib.get_close_matches(str(name), self._entries, n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        return message

    def names(self) -> list[str]:
        """All registered names, sorted (message / CLI order)."""
        return sorted(self._entries)

    # ------------------------------------------------------------------
    # Mapping protocol (registration order, the paper's legend order)
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> T:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> "tuple[str, ...]":
        return tuple(self._entries)

    def values(self) -> "tuple[T, ...]":
        return tuple(self._entries.values())

    def items(self) -> "tuple[tuple[str, T], ...]":
        return tuple(self._entries.items())

    def __repr__(self) -> str:
        return (f"Registry({self.kind!r}, "
                f"entries=[{', '.join(self._entries)}])")
