"""Plugin registry: typed registries, capability metadata, auto dispatch.

Three layers, lowest first:

* :class:`Registry` (:mod:`repro.registry.core`) — the generic ordered
  name -> object table behind all five system registries (engines,
  kernels, GPUs, links, models): decorator + functional registration,
  collision detection with ``replace=True``, did-you-mean misses;
* :class:`Capabilities` (:mod:`repro.registry.capabilities`) — the
  per-entry metadata every kernel and engine declares (sparsity format,
  A-density, MMA shapes, dtype, sparse-tensor-core requirement);
* :class:`AutoEngine` / :class:`SelectionTable`
  (:mod:`repro.registry.selector`) — the ``engine="auto"`` cost-driven
  dispatcher built on the two above.

``AutoEngine`` and ``SelectionTable`` are re-exported lazily: the
selector imports :mod:`repro.moe.layers`, so eagerly importing it here
would cycle for the modules that need :class:`Registry` *before* the
engine registry exists.
"""

from repro.registry.capabilities import Capabilities
from repro.registry.core import Registry

__all__ = ["Registry", "Capabilities", "AutoEngine", "SelectionTable",
           "AUTO_ENGINE"]


def __getattr__(name: str):
    if name in ("AutoEngine", "SelectionTable", "AUTO_ENGINE"):
        from repro.registry import selector
        return getattr(selector, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
