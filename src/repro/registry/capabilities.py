"""Capability metadata declared by every kernel and engine.

The paper's headline evaluation (Figures 12-13) shows that no single
kernel wins everywhere: which contestant is fastest — or even *legal* —
depends on the sparsity format it consumes, the density it was built
for, the MMA shapes it issues and whether the device has a sparse ALU
(Table 1).  :class:`Capabilities` turns those facts into queryable data
so dispatch (``engine="auto"``, ``repro list``) can reason about
compatibility instead of hard-coding names.

Every :class:`~repro.kernels.base.MatmulKernel` and
:class:`~repro.moe.layers.MoEEngine` answers ``capabilities()`` with one
of these records; third-party registrations declare theirs the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.hw.spec import GPUSpec


@dataclass(frozen=True)
class Capabilities:
    """What one kernel/engine consumes and requires.

    Attributes:
        sparsity_format: A-operand storage format (``"dense"``,
            ``"2:4"``, ``"v:n:m"``, ``"csr"``, ``"n:m"``,
            ``"samoyeds"``).
        a_density: Fraction of A elements stored/computed (1.0 dense).
        mma_shapes: Instruction shapes the implementation issues, by
            :attr:`~repro.hw.tensorcore.MmaShape.name` (empty for pure
            SIMT kernels).
        dtype: Operand element type.
        needs_sparse_tensor_cores: True when the implementation issues
            ``mma.sp`` and is therefore unavailable on devices without
            a sparse ALU (Table 1's mandatory requirement).
    """

    sparsity_format: str = "dense"
    a_density: float = 1.0
    mma_shapes: tuple[str, ...] = ()
    dtype: str = "fp16"
    needs_sparse_tensor_cores: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.a_density <= 1.0:
            raise ValueError(
                f"a_density must be in (0, 1], got {self.a_density}")

    def supports_device(self, spec: "GPUSpec") -> bool:
        """Can this implementation run on ``spec`` at all?

        The one hard architectural gate is the sparse ALU: ``mma.sp``
        users are unavailable where Table 1 says there is none (the
        paper's W7900 row).  Everything else — async copy, collective
        load/store — degrades performance, not legality, and is already
        priced by the simulator.
        """
        return not self.needs_sparse_tensor_cores or spec.has_sparse_alu

    def to_dict(self) -> dict[str, object]:
        """JSON payload for ``repro list`` and serve reports."""
        return {
            "sparsity_format": self.sparsity_format,
            "a_density": self.a_density,
            "mma_shapes": list(self.mma_shapes),
            "dtype": self.dtype,
            "needs_sparse_tensor_cores": self.needs_sparse_tensor_cores,
        }

    def describe(self) -> str:
        """One-line summary (the ``repro list`` table cell)."""
        shapes = ",".join(self.mma_shapes) if self.mma_shapes else "simt"
        sptc = "sptc" if self.needs_sparse_tensor_cores else "-"
        return (f"{self.sparsity_format} d={self.a_density:g} "
                f"{self.dtype} {shapes} {sptc}")
