"""Versioned JSON persistence shared by the dispatch-table artifacts.

:class:`~repro.kernels.autotuner.TuningTable` and
:class:`~repro.registry.selector.SelectionTable` both ship as JSON
files a deployment carries between runs, and both need the same
failure semantics: a schema ``version`` field, and
:class:`~repro.errors.ConfigError` naming the path on unreadable,
corrupt, version-drifted or malformed payloads — never a raw
``json.JSONDecodeError``/``KeyError`` traceback.  This module is that
contract, written once.

Writes are **atomic**: the payload is serialised first, written to a
temporary file in the destination directory, and moved into place
with :func:`os.replace` — a concurrent reader sees either the old
payload or the new one, never a torn file, and a crash mid-write
leaves the old payload intact.  :func:`merge_versioned_json` builds
on that with load-modify-merge semantics, so concurrent writers
(e.g. the :mod:`repro.exec` process-pool workers accumulating
selector entries) union their entries instead of clobbering each
other last-writer-wins.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Callable

from repro.errors import ConfigError


def save_versioned_json(path: "str | Path", kind: str, version: int,
                        entries: dict) -> None:
    """Atomically write ``{"version": ..., "entries": ...}``.

    The payload is serialised (sorted, indented) *before* any file is
    touched, then written to a same-directory temp file and renamed
    over ``path`` with :func:`os.replace`.  Serialisation errors and
    interrupted writes therefore leave an existing file exactly as it
    was; no reader can ever observe a partially-written payload.
    """
    payload = {"version": version, "entries": entries}
    text = json.dumps(payload, indent=2, sort_keys=True)
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(dir=directory,
                                    prefix=f".{path.name}.",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        # Crash containment: never leave the temp file behind (and
        # never touch the destination, which os.replace guarantees).
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def merge_versioned_json(path: "str | Path", kind: str, version: int,
                         entries: dict, *,
                         allow_legacy: bool = False,
                         entry_ok: "Callable[[object], bool] | None" = None
                         ) -> dict:
    """Load-modify-merge ``entries`` into the file at ``path``.

    If ``path`` exists its entries are loaded (with the usual
    validation), updated with ``entries`` (the caller's fresh entries
    win on key collisions — table entries are deterministic
    recomputations, so either side would do), and the union is
    atomically rewritten.  A missing file degrades to a plain save.
    Returns the merged entries mapping.

    This is what makes N concurrent writers *accumulate* instead of
    clobber: each merges the others' keys back in before writing.  Two
    writers racing between load and replace can still drop the loser's
    novel keys for that one write — the next merge re-adds them, and
    because entries are deterministic the loss is only ever a cache
    miss, never corruption.
    """
    merged: dict = {}
    if Path(path).exists():
        merged = dict(load_versioned_json(
            path, kind, version, allow_legacy=allow_legacy,
            entry_ok=entry_ok))
    merged.update(entries)
    save_versioned_json(path, kind, version, merged)
    return merged


def load_versioned_json(path: "str | Path", kind: str, version: int, *,
                        allow_legacy: bool = False,
                        entry_ok: "Callable[[object], bool] | None" = None
                        ) -> dict:
    """Load and validate a versioned payload, returning its entries.

    ``allow_legacy`` accepts pre-version files (a bare entries
    mapping); ``entry_ok`` additionally validates each entry value.
    Every failure raises :class:`ConfigError` as ``"{kind} {path}:
    reason"``.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"{kind} {path}: unreadable ({exc})") from None
    if not isinstance(payload, dict):
        raise ConfigError(
            f"{kind} {path}: expected a JSON object, got "
            f"{type(payload).__name__}")
    if "version" in payload:
        if payload["version"] != version:
            raise ConfigError(
                f"{kind} {path}: schema version {payload['version']!r} "
                f"!= supported {version}")
        entries = payload.get("entries")
    elif allow_legacy:
        entries = payload                   # legacy: bare entries map
    else:
        raise ConfigError(
            f"{kind} {path}: missing schema version (expected a "
            f"{{'version': {version}, 'entries': ...}} payload)")
    ok = entry_ok or (lambda value: isinstance(value, dict))
    if not isinstance(entries, dict) or not all(
            ok(value) for value in entries.values()):
        raise ConfigError(f"{kind} {path}: malformed entries")
    return entries
