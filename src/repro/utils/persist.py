"""Versioned JSON persistence shared by the dispatch-table artifacts.

:class:`~repro.kernels.autotuner.TuningTable` and
:class:`~repro.registry.selector.SelectionTable` both ship as JSON
files a deployment carries between runs, and both need the same
failure semantics: a schema ``version`` field, and
:class:`~repro.errors.ConfigError` naming the path on unreadable,
corrupt, version-drifted or malformed payloads — never a raw
``json.JSONDecodeError``/``KeyError`` traceback.  This module is that
contract, written once.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.errors import ConfigError


def save_versioned_json(path: "str | Path", kind: str, version: int,
                        entries: dict) -> None:
    """Write ``{"version": ..., "entries": ...}`` (sorted, indented)."""
    payload = {"version": version, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_versioned_json(path: "str | Path", kind: str, version: int, *,
                        allow_legacy: bool = False,
                        entry_ok: "Callable[[object], bool] | None" = None
                        ) -> dict:
    """Load and validate a versioned payload, returning its entries.

    ``allow_legacy`` accepts pre-version files (a bare entries
    mapping); ``entry_ok`` additionally validates each entry value.
    Every failure raises :class:`ConfigError` as ``"{kind} {path}:
    reason"``.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"{kind} {path}: unreadable ({exc})") from None
    if not isinstance(payload, dict):
        raise ConfigError(
            f"{kind} {path}: expected a JSON object, got "
            f"{type(payload).__name__}")
    if "version" in payload:
        if payload["version"] != version:
            raise ConfigError(
                f"{kind} {path}: schema version {payload['version']!r} "
                f"!= supported {version}")
        entries = payload.get("entries")
    elif allow_legacy:
        entries = payload                   # legacy: bare entries map
    else:
        raise ConfigError(
            f"{kind} {path}: missing schema version (expected a "
            f"{{'version': {version}, 'entries': ...}} payload)")
    ok = entry_ok or (lambda value: isinstance(value, dict))
    if not isinstance(entries, dict) or not all(
            ok(value) for value in entries.values()):
        raise ConfigError(f"{kind} {path}: malformed entries")
    return entries
