"""Small argument-validation helpers used across the library.

These raise the library's own exception types so that user-facing APIs fail
with actionable messages instead of bare ``AssertionError``.
"""

from __future__ import annotations

from repro.errors import ReproError, ShapeError


def require(condition: bool, message: str,
            error: type[ReproError] = ReproError) -> None:
    """Raise ``error(message)`` unless ``condition`` holds."""
    if not condition:
        raise error(message)


def check_positive(value: int | float, name: str) -> None:
    """Validate that a scalar parameter is strictly positive."""
    if value <= 0:
        raise ShapeError(f"{name} must be positive, got {value!r}")


def check_divisible(value: int, divisor: int, name: str) -> None:
    """Validate that ``value`` is an exact multiple of ``divisor``."""
    check_positive(divisor, f"divisor of {name}")
    if value % divisor != 0:
        raise ShapeError(
            f"{name}={value} must be divisible by {divisor}"
        )


def check_power_of_two(value: int, name: str) -> None:
    """Validate that a parameter is a power of two (hardware sizes)."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ShapeError(f"{name} must be a power of two, got {value!r}")
