"""Deterministic random-number helpers.

Every stochastic component of the library (synthetic workloads, router
inputs, pruning tasks) takes either an explicit ``numpy.random.Generator``
or an integer seed.  This module centralises generator construction so that
all experiments are reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0x5A3D  # "SAMD"


def new_rng(seed: int | np.random.Generator | None = None
            ) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for the library-wide default seed.  Never uses global numpy
    state.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)
