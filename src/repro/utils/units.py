"""Unit constants and human-readable formatting for reports."""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-prefix unit."""
    for unit, divisor in (("B", 1), ("KiB", KIB), ("MiB", MIB),
                          ("GiB", GIB), ("TiB", 1024 * GIB)):
        scaled = float(num_bytes) / divisor
        if abs(scaled) < 1024.0 or unit == "TiB":
            return f"{scaled:.2f} {unit}"
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Render a duration with an appropriate SI unit."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_tflops(flops_per_second: float) -> str:
    """Render a throughput in TFLOP/s."""
    return f"{flops_per_second / 1e12:.2f} TFLOP/s"
