"""Host metadata stamped into benchmark payloads.

``BENCH_sim.json`` and ``BENCH_sweep.json`` are trajectory artifacts:
numbers recorded on one machine get compared against numbers recorded
on another (a laptop vs a CI runner vs a future self).  Recording the
measuring host makes those comparisons honest — a 1-core container
cannot show a 4-way parallel speedup, and a reader should be able to
see that from the payload alone.  Regression gates deliberately ignore
this block: they compare machine-independent *ratios*, never absolute
numbers.
"""

from __future__ import annotations

import os
import platform


def host_metadata() -> dict[str, object]:
    """Describe the measuring host (cpu count, python, platform).

    Purely informational: ``--check`` gates never read it, so payloads
    recorded on different machines stay comparable on their ratios.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
