"""Shared helpers: validation, deterministic RNG, unit formatting."""

from repro.utils.validation import (
    check_divisible,
    check_positive,
    check_power_of_two,
    require,
)
from repro.utils.rng import new_rng
from repro.utils.units import (
    GIB,
    KIB,
    MIB,
    format_bytes,
    format_seconds,
    format_tflops,
)

__all__ = [
    "check_divisible",
    "check_positive",
    "check_power_of_two",
    "require",
    "new_rng",
    "GIB",
    "KIB",
    "MIB",
    "format_bytes",
    "format_seconds",
    "format_tflops",
]
