"""Samoyeds reproduction library.

A full-system reproduction of *"Samoyeds: Accelerating MoE Models with
Structured Sparsity Leveraging Sparse Tensor Cores"* (EuroSys 2025) in
Python.  Real Sparse-Tensor-Core hardware is replaced by an analytical GPU
performance model (:mod:`repro.hw`); every kernel also has a functionally
exact numpy implementation so all mathematical-equivalence claims are
testable.

Public surface (see README for a tour):

* :mod:`repro.formats` - 2:4, V:N:M, and the Samoyeds dual-side format;
* :mod:`repro.kernels` - cuBLAS/cuSPARSELt/Sputnik/VENOM baselines and the
  Samoyeds SSMM kernel, each with ``run`` (numpy) and ``cost`` (simulator);
* :mod:`repro.moe` - routers, experts, and the five MoE layer engines;
* :mod:`repro.models` - attention + decoder-layer end-to-end runner;
* :mod:`repro.pruning` - pattern-constrained pruning and accuracy proxy;
* :mod:`repro.serve` - request-level continuous-batching serving simulator;
* :mod:`repro.api` - declarative deployment specs (the canonical public
  surface: config-file driven runs, sweeps, typed reports);
* :mod:`repro.registry` - the plugin registry behind engines, kernels,
  GPUs, links and models (capability metadata, ``engine="auto"``
  cost-driven dispatch, ``repro list`` discovery);
* :mod:`repro.bench` - the harness that regenerates every paper figure.
"""

from repro.errors import (
    CapacityError,
    ConfigError,
    FormatError,
    HardwareModelError,
    PatternViolation,
    ReproError,
    RoutingError,
    ShapeError,
    TilingError,
)
from repro.formats import (
    ColumnSelection,
    SamoyedsPattern,
    SamoyedsWeight,
    prune_samoyeds,
)
from repro.hw import (
    ClusterSpec,
    GPUSpec,
    LinkSpec,
    ParallelPlan,
    get_gpu,
    get_link,
    list_gpus,
    parse_parallel,
)
from repro.registry import Capabilities, Registry
from repro.context import ExecutionContext
from repro.api import (
    Deployment,
    DeploymentSpec,
    HardwareSpec,
    ModelSpec,
    ServingSpec,
    WorkloadSpec,
    load_deployment,
    load_sweep,
)
from repro.serve.metrics import PercentileSummary, ServeReport

__all__ = [
    "ExecutionContext",
    "Registry",
    "Capabilities",
    "Deployment",
    "DeploymentSpec",
    "ModelSpec",
    "HardwareSpec",
    "ServingSpec",
    "WorkloadSpec",
    "load_deployment",
    "load_sweep",
    "ServeReport",
    "PercentileSummary",
    "ClusterSpec",
    "LinkSpec",
    "ParallelPlan",
    "get_link",
    "parse_parallel",
    "CapacityError",
    "ConfigError",
    "FormatError",
    "HardwareModelError",
    "PatternViolation",
    "ReproError",
    "RoutingError",
    "ShapeError",
    "TilingError",
    "ColumnSelection",
    "SamoyedsPattern",
    "SamoyedsWeight",
    "prune_samoyeds",
    "GPUSpec",
    "get_gpu",
    "list_gpus",
]

__version__ = "1.0.0"
