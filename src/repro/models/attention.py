"""Attention-layer cost model (naive and FlashAttention-2).

The paper uses attention only as context: Figure 2 shows the MoE layer
dominating the decoder once FlashAttention removes the quadratic memory
traffic, and every model-level experiment enables FlashAttention-2 for
fairness.  The model here covers both variants:

* QKVO projections — four dense GEMMs (cuBLAS class);
* score/value core — ``2 * S^2 * hidden`` FLOPs either with materialised
  S x S score matrices (naive: three extra DRAM round trips) or fused in
  SRAM (flash: no quadratic traffic, ~85% tensor-core efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import GPUSpec
from repro.kernels.gemm_dense import DENSE_GEMM
from repro.moe.config import MoEModelConfig


@dataclass(frozen=True)
class AttentionCost:
    """Seconds spent in one attention layer."""

    projection_s: float
    core_s: float
    softmax_s: float
    total_s: float
    flash: bool


def _projection_seconds(config: MoEModelConfig, tokens: int,
                        spec: GPUSpec) -> float:
    h = config.hidden_size
    gemm = DENSE_GEMM.cost(h, h, tokens, spec)
    return 4.0 * gemm.time_s          # Q, K, V, O projections


def naive_attention_cost(config: MoEModelConfig, tokens: int,
                         spec: GPUSpec, batch: int = 1) -> AttentionCost:
    """Unfused attention: S x S scores materialised in global memory."""
    h = config.hidden_size
    seq_tokens = tokens
    proj_s = _projection_seconds(config, batch * seq_tokens, spec)
    core_flops = batch * 2.0 * 2.0 * seq_tokens * seq_tokens * h  # QK^T, PV
    core_compute = core_flops / (spec.dense_tc_flops * 0.70)
    score_bytes = batch * config.num_heads * seq_tokens * seq_tokens * 2.0
    core_mem = 3.0 * score_bytes / spec.dram_bandwidth  # write, read, read
    softmax = 2.0 * score_bytes / spec.dram_bandwidth \
        + spec.kernel_launch_overhead_s
    core = max(core_compute, core_mem)
    total = proj_s + core + softmax + 2 * spec.kernel_launch_overhead_s
    return AttentionCost(projection_s=proj_s, core_s=core,
                         softmax_s=softmax, total_s=total, flash=False)


def flash_attention_cost(config: MoEModelConfig, tokens: int,
                         spec: GPUSpec, batch: int = 1) -> AttentionCost:
    """FlashAttention-2: fused core, no quadratic DRAM traffic."""
    h = config.hidden_size
    seq_tokens = tokens
    proj_s = _projection_seconds(config, batch * seq_tokens, spec)
    core_flops = batch * 2.0 * 2.0 * seq_tokens * seq_tokens * h
    core = core_flops / (spec.dense_tc_flops * 0.85)
    io_bytes = batch * 4.0 * seq_tokens * h * 2.0     # Q,K,V in; O out
    core = max(core, io_bytes / spec.dram_bandwidth)
    total = proj_s + core + spec.kernel_launch_overhead_s
    return AttentionCost(projection_s=proj_s, core_s=core, softmax_s=0.0,
                         total_s=total, flash=True)


def attention_cost(config: MoEModelConfig, tokens: int, spec: GPUSpec,
                   batch: int = 1, flash: bool = True) -> AttentionCost:
    """Dispatch on the FlashAttention toggle (Figure 2's two panels)."""
    if flash:
        return flash_attention_cost(config, tokens, spec, batch)
    return naive_attention_cost(config, tokens, spec, batch)


def decode_attention_cost(config: MoEModelConfig, context_tokens: int,
                          spec: GPUSpec, batch: int = 1,
                          flash: bool = True,
                          proj_s: "float | None" = None) -> AttentionCost:
    """One decode step: ``batch`` new tokens against cached contexts.

    ``context_tokens`` is the *total* KV-cache length summed across the
    batch (continuous batching mixes sequences of different ages, so the
    per-request contexts are heterogeneous; their attention costs are
    additive).  Decode attention is a GEMV per head: the score/value core
    streams the K and V caches once, so it is memory-bound on every
    device in the registry.  The quadratic term of prefill disappears —
    each new token does ``O(context)`` work.

    The projection GEMMs depend only on ``batch``, not on the cached
    contexts, and price through the (comparatively expensive) kernel
    model; ``proj_s`` lets a caller that evaluates many context sums at
    the same batch pass the memoised ``_projection_seconds`` value in
    — everything context-dependent below is closed-form arithmetic.
    """
    h = config.hidden_size
    projection_s = (proj_s if proj_s is not None
                    else _projection_seconds(config, batch, spec))
    core_flops = 2.0 * 2.0 * context_tokens * h        # QK^T and PV rows
    kv_bytes = 2.0 * 2.0 * context_tokens * h          # K and V, fp16
    # GEMV-shaped work: tensor cores idle, SIMT FLOPs bound compute.
    core_compute = core_flops / spec.cuda_core_flops
    core = max(core_compute, kv_bytes / spec.dram_bandwidth)
    if flash:
        total = projection_s + core + spec.kernel_launch_overhead_s
        return AttentionCost(projection_s=projection_s, core_s=core,
                             softmax_s=0.0, total_s=total, flash=True)
    score_bytes = batch * config.num_heads * max(
        context_tokens / max(batch, 1), 1.0) * 2.0
    softmax = 2.0 * score_bytes / spec.dram_bandwidth \
        + spec.kernel_launch_overhead_s
    total = (projection_s + core + softmax
             + 2 * spec.kernel_launch_overhead_s)
    return AttentionCost(projection_s=projection_s, core_s=core,
                         softmax_s=softmax, total_s=total, flash=False)
