"""End-to-end model substrate: attention, decoder layer, latency runner."""

from repro.models.attention import (
    AttentionCost,
    attention_cost,
    decode_attention_cost,
    flash_attention_cost,
    naive_attention_cost,
)
from repro.models.decoder import (
    DecoderBreakdown,
    decoder_cost,
    decoder_decode_cost,
)
from repro.models.runner import (
    end_to_end_speedups,
    model_latency,
    throughput_sweep,
)
from repro.models.full_model import (
    full_model_estimate,
    min_devices_for_model,
    total_params,
)

__all__ = [
    "AttentionCost",
    "attention_cost",
    "decode_attention_cost",
    "flash_attention_cost",
    "naive_attention_cost",
    "DecoderBreakdown",
    "decoder_cost",
    "decoder_decode_cost",
    "model_latency",
    "throughput_sweep",
    "end_to_end_speedups",
    "full_model_estimate",
    "min_devices_for_model",
    "total_params",
]
