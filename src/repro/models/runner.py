"""End-to-end latency / throughput runner (§6.3, Figures 15 and 16).

Measures a single decoder layer per the paper's protocol and converts to
throughput.  Memory feasibility is enforced through the Table-3 footprint
model, so over-budget (engine, batch) points raise
:class:`~repro.errors.CapacityError` exactly where the paper prints OOM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError, ConfigError
from repro.hw.spec import GPUSpec
from repro.models.decoder import DecoderBreakdown, decoder_cost
from repro.moe.config import MoEModelConfig
from repro.moe.layers import ENGINES, MoEEngine
from repro.moe.memory_model import footprint


@dataclass(frozen=True)
class ModelPoint:
    """One (engine, batch) measurement."""

    engine: str
    batch: int
    seq_len: int
    latency_s: float
    tokens_per_s: float


def _resolve(engine: MoEEngine | str) -> MoEEngine:
    if isinstance(engine, str):
        try:
            return ENGINES[engine]
        except KeyError:
            raise ConfigError(f"unknown engine {engine!r}") from None
    return engine


def model_latency(config: MoEModelConfig, engine: MoEEngine | str,
                  spec: GPUSpec, batch: int = 1,
                  seq_len: int | None = None, flash: bool = True,
                  check_memory: bool = True) -> DecoderBreakdown:
    """Latency of one decoder layer at (batch, seq)."""
    eng = _resolve(engine)
    seq = min(seq_len or config.max_seq_len, config.max_seq_len)
    if check_memory:
        footprint(config, eng.name, seq, spec).require_batch(batch)
    return decoder_cost(config, seq, spec, engine=eng, batch=batch,
                        flash=flash)


def model_point(config: MoEModelConfig, engine: MoEEngine | str,
                spec: GPUSpec, batch: int, seq_len: int,
                flash: bool = True,
                check_memory: bool = True) -> ModelPoint:
    """Latency + throughput of one configuration."""
    eng = _resolve(engine)
    breakdown = model_latency(config, eng, spec, batch=batch,
                              seq_len=seq_len, flash=flash,
                              check_memory=check_memory)
    seq = min(seq_len, config.max_seq_len)
    tokens = batch * seq
    return ModelPoint(engine=eng.name, batch=batch, seq_len=seq,
                      latency_s=breakdown.total_s,
                      tokens_per_s=tokens / breakdown.total_s)


def throughput_sweep(config: MoEModelConfig, spec: GPUSpec,
                     batches: list[int], seq_len: int,
                     engines: list[str] | None = None
                     ) -> dict[str, list[ModelPoint | None]]:
    """Figure 16: throughput vs batch size; ``None`` marks OOM / NS."""
    engines = engines or list(ENGINES)
    out: dict[str, list[ModelPoint | None]] = {}
    for name in engines:
        series: list[ModelPoint | None] = []
        for batch in batches:
            try:
                series.append(model_point(config, name, spec, batch,
                                          seq_len))
            except (CapacityError, ConfigError):
                series.append(None)
        out[name] = series
    return out


def end_to_end_speedups(config: MoEModelConfig, spec: GPUSpec,
                        batch: int = 1, seq_len: int | None = None,
                        baseline: str = "transformers"
                        ) -> dict[str, float | None]:
    """Figure 15: speedup of every engine over ``baseline``.

    ``None`` marks NS/OOM entries, mirroring the paper's markers.
    """
    seq = min(seq_len or 4096, config.max_seq_len)
    try:
        base = model_point(config, baseline, spec, batch, seq)
    except (CapacityError, ConfigError) as exc:
        raise ConfigError(
            f"baseline {baseline} infeasible for {config.name}: {exc}"
        ) from exc
    out: dict[str, float | None] = {}
    for name in ENGINES:
        if name == baseline:
            out[name] = 1.0
            continue
        try:
            point = model_point(config, name, spec, batch, seq)
            out[name] = base.latency_s / point.latency_s
        except (CapacityError, ConfigError):
            out[name] = None
    return out
