"""End-to-end latency / throughput runner (§6.3, Figures 15 and 16).

Measures a single decoder layer per the paper's protocol and converts to
throughput.  Memory feasibility is enforced through the Table-3 footprint
model, so over-budget (engine, batch) points raise
:class:`~repro.errors.CapacityError` exactly where the paper prints OOM.

Every entry point accepts either an :class:`~repro.context.ExecutionContext`
or the legacy ``(config, engine, spec)`` positional triple; the serving
engine in :mod:`repro.serve` always passes a context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.context import ExecutionContext
from repro.errors import CapacityError, ConfigError
from repro.hw.spec import GPUSpec
from repro.models.decoder import DecoderBreakdown, decoder_cost
from repro.moe.config import MoEModelConfig
from repro.moe.layers import ENGINES, MoEEngine


@dataclass(frozen=True)
class ModelPoint:
    """One (engine, batch) measurement."""

    engine: str
    batch: int
    seq_len: int
    latency_s: float
    tokens_per_s: float


def model_latency(context: ExecutionContext | MoEModelConfig,
                  engine: MoEEngine | str | None = None,
                  spec: GPUSpec | None = None, batch: int = 1,
                  seq_len: int | None = None, flash: bool | None = None,
                  check_memory: bool = True) -> DecoderBreakdown:
    """Latency of one decoder layer at (batch, seq)."""
    ctx = ExecutionContext.resolve(context, engine, spec, flash)
    seq = min(seq_len or ctx.config.max_seq_len, ctx.config.max_seq_len)
    if check_memory:
        # Per-device footprint under the context's parallel plan.
        ctx.footprint(seq).require_batch(batch)
    return decoder_cost(ctx.config, seq, ctx.spec, engine=ctx.engine,
                        batch=batch, flash=ctx.flash,
                        parallel=ctx.parallel, cluster=ctx.cluster)


def model_point(context: ExecutionContext | MoEModelConfig,
                engine: MoEEngine | str | None = None,
                spec: GPUSpec | None = None, batch: int = 1,
                seq_len: int | None = None, flash: bool | None = None,
                check_memory: bool = True) -> ModelPoint:
    """Latency + throughput of one configuration."""
    ctx = ExecutionContext.resolve(context, engine, spec, flash)
    breakdown = model_latency(ctx, batch=batch, seq_len=seq_len,
                              check_memory=check_memory)
    seq = min(seq_len or ctx.config.max_seq_len, ctx.config.max_seq_len)
    tokens = batch * seq
    return ModelPoint(engine=ctx.engine.name, batch=batch, seq_len=seq,
                      latency_s=breakdown.total_s,
                      tokens_per_s=tokens / breakdown.total_s)


def throughput_sweep(context: ExecutionContext | MoEModelConfig,
                     spec: GPUSpec | None = None,
                     batches: list[int] | None = None,
                     seq_len: int | None = None,
                     engines: list[str] | None = None
                     ) -> dict[str, list[ModelPoint | None]]:
    """Figure 16: throughput vs batch size; ``None`` marks OOM / NS.

    With an :class:`ExecutionContext` first argument the sweep keeps the
    context's device and flash setting and still compares every engine
    (pass ``engines`` to narrow it); the context's own engine is only the
    default when ``engines`` is a one-element list elsewhere.
    """
    if isinstance(context, ExecutionContext):
        base = context
    else:
        base = ExecutionContext.resolve(context, "transformers", spec)
    if batches is None:
        raise ConfigError("throughput_sweep requires explicit batches")
    seq = seq_len if seq_len is not None else base.config.max_seq_len
    engines = engines or list(ENGINES)
    out: dict[str, list[ModelPoint | None]] = {}
    for name in engines:
        ctx = base.with_engine(name)
        series: list[ModelPoint | None] = []
        for batch in batches:
            try:
                series.append(model_point(ctx, batch=batch, seq_len=seq))
            except (CapacityError, ConfigError):
                series.append(None)
        out[name] = series
    return out


def end_to_end_speedups(context: ExecutionContext | MoEModelConfig,
                        spec: GPUSpec | None = None,
                        batch: int = 1, seq_len: int | None = None,
                        baseline: str = "transformers"
                        ) -> dict[str, float | None]:
    """Figure 15: speedup of every engine over ``baseline``.

    ``None`` marks NS/OOM entries, mirroring the paper's markers.  The
    default sequence length is the model's positional limit
    (``config.max_seq_len``), matching §6.3's protocol of measuring each
    model at its own maximum context.
    """
    if isinstance(context, ExecutionContext):
        base_ctx = context.with_engine(baseline)
    else:
        base_ctx = ExecutionContext.resolve(context, baseline, spec)
    config = base_ctx.config
    seq = min(seq_len or config.max_seq_len, config.max_seq_len)
    try:
        base = model_point(base_ctx, batch=batch, seq_len=seq)
    except (CapacityError, ConfigError) as exc:
        raise ConfigError(
            f"baseline {baseline} infeasible for {config.name}: {exc}"
        ) from exc
    out: dict[str, float | None] = {}
    for name, eng in ENGINES.items():
        if getattr(eng, "is_meta", False):
            continue     # auto is a dispatcher, not a contestant
        if name == baseline:
            out[name] = 1.0
            continue
        try:
            point = model_point(base_ctx.with_engine(name), batch=batch,
                                seq_len=seq)
            out[name] = base.latency_s / point.latency_s
        except (CapacityError, ConfigError):
            out[name] = None
    return out
