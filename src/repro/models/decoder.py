"""Decoder-layer composition: attention + MoE + normalisation.

Produces the Figure 2 time breakdown and the building block for the
end-to-end runner (§6.3 measures one decoder layer; decoder layers are
>90% of total model time and mutually similar, per the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import GPUSpec
from repro.models.attention import attention_cost, decode_attention_cost
from repro.moe.config import MoEModelConfig
from repro.moe.layers import ENGINES, MoEEngine


@dataclass(frozen=True)
class DecoderBreakdown:
    """Per-component seconds for one decoder layer forward."""

    model: str
    engine: str
    attention_s: float
    moe_s: float
    norm_s: float
    flash: bool
    phase: str = "prefill"

    @property
    def total_s(self) -> float:
        return self.attention_s + self.moe_s + self.norm_s

    @property
    def moe_fraction(self) -> float:
        """Figure 2's y-axis: MoE share of the decoder layer."""
        return self.moe_s / self.total_s if self.total_s > 0 else 0.0

    def fractions(self) -> dict[str, float]:
        total = self.total_s
        if total <= 0:
            return {"attention": 0.0, "moe": 0.0, "norm": 0.0}
        return {
            "attention": self.attention_s / total,
            "moe": self.moe_s / total,
            "norm": self.norm_s / total,
        }


def norm_seconds(config: MoEModelConfig, tokens: int,
                 spec: GPUSpec) -> float:
    """Two RMSNorms: pure elementwise traffic over the hidden states."""
    bytes_per_pass = 2.0 * tokens * config.hidden_size * 2
    return 2.0 * (bytes_per_pass / spec.dram_bandwidth
                  + spec.kernel_launch_overhead_s)


_norm_seconds = norm_seconds


def decoder_cost(config: MoEModelConfig, tokens: int, spec: GPUSpec,
                 engine: MoEEngine | str = "transformers",
                 batch: int = 1, flash: bool = True,
                 num_shared: int | None = None) -> DecoderBreakdown:
    """Simulated latency breakdown of one decoder layer.

    Args:
        config: Table-2 model.
        tokens: Sequence length per batch element.
        spec: Target device.
        engine: MoE engine instance or registry name.
        batch: Batch size (scales every component linearly except the
            attention core, which is quadratic in sequence, linear in
            batch — handled inside the attention model).
        flash: FlashAttention toggle (Figure 2's two panels).
        num_shared: Override the config's shared-expert count.
    """
    if isinstance(engine, str):
        engine = ENGINES[engine]
    attn = attention_cost(config, tokens, spec, batch=batch, flash=flash)
    moe = engine.cost(config, tokens * batch, spec, num_shared=num_shared)
    norm = _norm_seconds(config, tokens * batch, spec)
    return DecoderBreakdown(
        model=config.name,
        engine=engine.name,
        attention_s=attn.total_s,
        moe_s=moe.time_s,
        norm_s=norm,
        flash=flash,
        phase="prefill",
    )


def decoder_decode_cost(config: MoEModelConfig, context_tokens: int,
                        spec: GPUSpec,
                        engine: MoEEngine | str = "transformers",
                        batch: int = 1, flash: bool = True,
                        num_shared: int | None = None) -> DecoderBreakdown:
    """Decode-phase decoder layer: one new token per sequence.

    Serving splits request lifetime into a *prefill* step (the whole
    prompt, :func:`decoder_cost`) and many *decode* steps.  A decode step
    processes ``batch`` fresh tokens — one per running sequence — while
    attention reads the cumulative KV caches (``context_tokens`` summed
    across the batch).  Only the new tokens traverse the MoE layer, so
    the expert workload shrinks to ``batch`` tokens and the per-expert
    padding discussion of §6.2 bites hardest here.
    """
    if isinstance(engine, str):
        engine = ENGINES[engine]
    attn = decode_attention_cost(config, context_tokens, spec,
                                 batch=batch, flash=flash)
    moe = engine.cost(config, max(batch, 1), spec, num_shared=num_shared)
    norm = norm_seconds(config, max(batch, 1), spec)
    return DecoderBreakdown(
        model=config.name,
        engine=engine.name,
        attention_s=attn.total_s,
        moe_s=moe.time_s,
        norm_s=norm,
        flash=flash,
        phase="decode",
    )
