"""Decoder-layer composition: attention + MoE + normalisation.

Produces the Figure 2 time breakdown and the building block for the
end-to-end runner (§6.3 measures one decoder layer; decoder layers are
>90% of total model time and mutually similar, per the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.interconnect import (
    ACT_BYTES,
    ClusterSpec,
    ParallelPlan,
    make_cluster,
)
from repro.hw.spec import GPUSpec
from repro.models.attention import attention_cost, decode_attention_cost
from repro.moe.config import MoEModelConfig
from repro.moe.layers import ENGINES, MoEEngine


@dataclass(frozen=True)
class DecoderBreakdown:
    """Per-component seconds for one decoder layer forward.

    ``comm_s`` is the interconnect time of a tensor/expert-parallel
    shard (all-reduces at the attention and MLP output boundaries plus
    the MoE dispatch/combine all-to-all); it is 0 on a single device.
    """

    model: str
    engine: str
    attention_s: float
    moe_s: float
    norm_s: float
    flash: bool
    phase: str = "prefill"
    comm_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.attention_s + self.moe_s + self.norm_s + self.comm_s

    @property
    def moe_fraction(self) -> float:
        """Figure 2's y-axis: MoE share of the decoder layer."""
        return self.moe_s / self.total_s if self.total_s > 0 else 0.0

    @property
    def comm_fraction(self) -> float:
        """Interconnect share of the layer (0 on a single device)."""
        return self.comm_s / self.total_s if self.total_s > 0 else 0.0

    def fractions(self) -> dict[str, float]:
        total_s = self.total_s
        if total_s <= 0:
            return {"attention": 0.0, "moe": 0.0, "norm": 0.0}
        out = {
            "attention": self.attention_s / total_s,
            "moe": self.moe_s / total_s,
            "norm": self.norm_s / total_s,
        }
        if self.comm_s > 0:
            out["comm"] = self.comm_s / total_s
        return out


def norm_seconds(config: MoEModelConfig, tokens: int,
                 spec: GPUSpec) -> float:
    """Two RMSNorms: pure elementwise traffic over the hidden states."""
    bytes_per_pass = 2.0 * tokens * config.hidden_size * 2
    return 2.0 * (bytes_per_pass / spec.dram_bandwidth
                  + spec.kernel_launch_overhead_s)


_norm_seconds = norm_seconds


def boundary_comm_seconds(config: MoEModelConfig, tokens: int,
                          parallel: ParallelPlan,
                          cluster: ClusterSpec) -> float:
    """Interconnect seconds of one decoder layer for ``tokens`` new
    tokens under ``parallel``.

    Tensor parallelism stitches shards with two ring all-reduces over
    the hidden states (after the attention output projection and after
    the MoE/MLP down projection — the Megatron boundaries); expert
    parallelism moves each routed token's activation to its expert and
    the expert output back via two all-to-alls over the EP group.
    """
    if parallel.is_trivial or tokens <= 0:
        return 0.0
    from repro.moe.scheduler import dispatch_combine_seconds
    hidden_bytes = float(tokens) * config.hidden_size * ACT_BYTES
    comm_s = 2.0 * cluster.allreduce_seconds(hidden_bytes, parallel.tp)
    comm_s += dispatch_combine_seconds(config, tokens * config.top_k,
                                       cluster, parallel.ep)
    return comm_s


def _parallel_terms(config: MoEModelConfig, tokens: int, spec: GPUSpec,
                    parallel: "ParallelPlan | None",
                    cluster: "ClusterSpec | None"
                    ) -> tuple[float, float, float] | None:
    """(attention divisor, moe divisor, comm seconds) for a shard, or
    ``None`` on the single-device path."""
    if parallel is None or parallel.is_trivial:
        return None
    cluster = cluster or make_cluster(spec, parallel)
    comm_s = boundary_comm_seconds(config, tokens, parallel, cluster)
    return float(parallel.tp), float(parallel.ep * parallel.tp), comm_s


def decoder_cost(config: MoEModelConfig, tokens: int, spec: GPUSpec,
                 engine: MoEEngine | str = "transformers",
                 batch: int = 1, flash: bool = True,
                 num_shared: int | None = None,
                 parallel: ParallelPlan | None = None,
                 cluster: ClusterSpec | None = None) -> DecoderBreakdown:
    """Simulated latency breakdown of one decoder layer.

    Args:
        config: Table-2 model.
        tokens: Sequence length per batch element.
        spec: Target device.
        engine: MoE engine instance or registry name.
        batch: Batch size (scales every component linearly except the
            attention core, which is quadratic in sequence, linear in
            batch — handled inside the attention model).
        flash: FlashAttention toggle (Figure 2's two panels).
        num_shared: Override the config's shared-expert count.
        parallel: Optional device-parallel plan; attention shards over
            ``tp``, expert work over ``ep * tp``, and the boundary
            collectives are charged from ``cluster``.
        cluster: Topology pricing the collectives (defaults to a
            homogeneous NVLink cluster of ``spec`` copies).
    """
    if isinstance(engine, str):
        engine = ENGINES[engine]
    attn = attention_cost(config, tokens, spec, batch=batch, flash=flash)
    moe = engine.cost(config, tokens * batch, spec, num_shared=num_shared)
    norm_s = _norm_seconds(config, tokens * batch, spec)
    terms = _parallel_terms(config, tokens * batch, spec, parallel,
                            cluster)
    if terms is None:
        return DecoderBreakdown(
            model=config.name,
            engine=engine.name,
            attention_s=attn.total_s,
            moe_s=moe.time_s,
            norm_s=norm_s,
            flash=flash,
            phase="prefill",
        )
    attn_div, moe_div, comm_s = terms
    return DecoderBreakdown(
        model=config.name,
        engine=engine.name,
        attention_s=attn.total_s / attn_div,
        moe_s=moe.time_s / moe_div,
        norm_s=norm_s,
        flash=flash,
        phase="prefill",
        comm_s=comm_s,
    )


def decoder_decode_cost(config: MoEModelConfig, context_tokens: int,
                        spec: GPUSpec,
                        engine: MoEEngine | str = "transformers",
                        batch: int = 1, flash: bool = True,
                        num_shared: int | None = None,
                        parallel: ParallelPlan | None = None,
                        cluster: ClusterSpec | None = None
                        ) -> DecoderBreakdown:
    """Decode-phase decoder layer: one new token per sequence.

    Serving splits request lifetime into a *prefill* step (the whole
    prompt, :func:`decoder_cost`) and many *decode* steps.  A decode step
    processes ``batch`` fresh tokens — one per running sequence — while
    attention reads the cumulative KV caches (``context_tokens`` summed
    across the batch).  Only the new tokens traverse the MoE layer, so
    the expert workload shrinks to ``batch`` tokens and the per-expert
    padding discussion of §6.2 bites hardest here.
    """
    if isinstance(engine, str):
        engine = ENGINES[engine]
    attn = decode_attention_cost(config, context_tokens, spec,
                                 batch=batch, flash=flash)
    moe = engine.cost(config, max(batch, 1), spec, num_shared=num_shared)
    norm_s = norm_seconds(config, max(batch, 1), spec)
    terms = _parallel_terms(config, max(batch, 1), spec, parallel,
                            cluster)
    if terms is None:
        return DecoderBreakdown(
            model=config.name,
            engine=engine.name,
            attention_s=attn.total_s,
            moe_s=moe.time_s,
            norm_s=norm_s,
            flash=flash,
            phase="decode",
        )
    attn_div, moe_div, comm_s = terms
    return DecoderBreakdown(
        model=config.name,
        engine=engine.name,
        attention_s=attn.total_s / attn_div,
        moe_s=moe.time_s / moe_div,
        norm_s=norm_s,
        flash=flash,
        phase="decode",
        comm_s=comm_s,
    )
