"""Whole-model extrapolation from the per-layer substrate.

The paper measures one decoder layer (justified in §6.3: decoder layers
are >90% of runtime and mutually similar).  This module provides the
inverse direction for users sizing deployments: extrapolate a full
model's parameters, memory, latency and serving throughput from the
per-layer models, across devices and engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError
from repro.hw.interconnect import ClusterSpec, ParallelPlan, make_cluster
from repro.hw.spec import GPUSpec
from repro.models.decoder import decoder_cost
from repro.moe.config import MoEModelConfig
from repro.moe.memory_model import (
    DTYPE,
    FRAGMENTATION,
    fixed_overhead_bytes,
    kv_cache_bytes,
    moe_workspace_bytes,
    weight_bytes,
)
from repro.utils.units import GIB


@dataclass(frozen=True)
class ModelEstimate:
    """Full-model numbers for one (model, engine, device, workload)."""

    model: str
    engine: str
    device: str
    batch: int
    seq_len: int
    total_params: int
    weights_bytes: float
    kv_bytes: float
    latency_s: float
    tokens_per_s: float
    fits: bool

def total_params(config: MoEModelConfig) -> int:
    """All-layer parameter count (attention + experts + embeddings)."""
    per_layer = config.attention_param_count + config.moe_param_count
    embeddings = 2 * 32000 * config.hidden_size       # in/out embeddings
    return per_layer * config.num_layers + embeddings


def full_model_estimate(config: MoEModelConfig, engine: str,
                        spec: GPUSpec, batch: int = 1,
                        seq_len: int | None = None,
                        flash: bool = True) -> ModelEstimate:
    """Extrapolate one decoder layer to the whole model.

    Latency scales by ``num_layers``; weights and KV cache scale the
    same way; the workspace is reused across layers so it counts once.
    """
    seq = min(seq_len or config.max_seq_len, config.max_seq_len)
    layer = decoder_cost(config, seq, spec, engine=engine, batch=batch,
                         flash=flash)
    latency = layer.total_s * config.num_layers

    weights = weight_bytes(config, engine) * config.num_layers
    kv = kv_cache_bytes(config, seq) * batch * config.num_layers
    workspace = moe_workspace_bytes(config, seq, engine) * batch
    need = (weights + kv + workspace + fixed_overhead_bytes(config, engine))
    fits = need <= spec.dram_capacity * (1.0 - FRAGMENTATION)

    return ModelEstimate(
        model=config.name,
        engine=engine,
        device=spec.name,
        batch=batch,
        seq_len=seq,
        total_params=total_params(config),
        weights_bytes=weights,
        kv_bytes=kv,
        latency_s=latency,
        tokens_per_s=batch * seq / latency,
        fits=fits,
    )


def require_fits(estimate: ModelEstimate, spec: GPUSpec) -> None:
    """Raise :class:`CapacityError` when the estimate does not fit."""
    if not estimate.fits:
        raise CapacityError(
            f"{estimate.model} with {estimate.engine} does not fit on "
            f"{spec.name} at batch {estimate.batch}",
            required_bytes=int(estimate.weights_bytes + estimate.kv_bytes),
            available_bytes=int(spec.dram_capacity))


@dataclass(frozen=True)
class ClusterEstimate:
    """Full-model numbers for one parallel plan on one cluster.

    All byte quantities are *per device*; ``fits`` checks the
    bottleneck device's budget.  ``comm_s`` is the per-forward
    interconnect time (TP boundary all-reduces plus EP dispatch and
    combine all-to-alls, summed over layers).
    """

    model: str
    engine: str
    cluster: str
    parallel: ParallelPlan
    batch: int
    seq_len: int
    weights_bytes_per_device: float
    kv_bytes_per_device: float
    latency_s: float
    comm_s: float
    tokens_per_s: float
    fits: bool

    @property
    def num_devices(self) -> int:
        return self.parallel.num_devices

    @property
    def comm_fraction(self) -> float:
        return self.comm_s / self.latency_s if self.latency_s > 0 else 0.0

    @property
    def weights_gib_per_device(self) -> float:
        return self.weights_bytes_per_device / GIB


def cluster_model_estimate(config: MoEModelConfig, engine: str,
                           parallel: ParallelPlan,
                           spec: GPUSpec | None = None,
                           cluster: ClusterSpec | None = None,
                           batch: int = 1, seq_len: int | None = None,
                           flash: bool = True) -> ClusterEstimate:
    """Whole-model extrapolation of one shard of a parallel deployment.

    The per-layer breakdown composes TP shards with all-reduces at the
    attention/MLP boundaries and EP expert partitions with dispatch /
    combine all-to-alls (:func:`repro.models.decoder.decoder_cost`'s
    parallel path), then scales by ``num_layers`` exactly as the
    single-device estimate does.  Data-parallel replicas multiply
    aggregate throughput without changing per-device latency.
    """
    if cluster is None:
        if spec is None:
            raise CapacityError("cluster_model_estimate needs a spec or "
                                "a cluster")
        cluster = make_cluster(spec, parallel)
    device = cluster.device(0)
    seq = min(seq_len or config.max_seq_len, config.max_seq_len)
    layer = decoder_cost(config, seq, device, engine=engine, batch=batch,
                         flash=flash, parallel=parallel, cluster=cluster)
    latency = layer.total_s * config.num_layers
    comm = layer.comm_s * config.num_layers

    weights = (weight_bytes(config, engine, parallel)
               * config.num_layers)
    kv = (kv_cache_bytes(config, seq) * batch * config.num_layers
          / parallel.tp)
    workspace = (moe_workspace_bytes(config, seq, engine) * batch
                 / (parallel.ep * parallel.tp))
    need = weights + kv + workspace + fixed_overhead_bytes(config, engine)
    budget = min(g.dram_capacity for g in cluster.gpus) \
        * (1.0 - FRAGMENTATION)
    return ClusterEstimate(
        model=config.name,
        engine=engine,
        cluster=cluster.describe(),
        parallel=parallel,
        batch=batch,
        seq_len=seq,
        weights_bytes_per_device=weights,
        kv_bytes_per_device=kv,
        latency_s=latency,
        comm_s=comm,
        tokens_per_s=batch * seq / latency * parallel.dp,
        fits=need <= budget,
    )


def min_devices_for_model(config: MoEModelConfig, engine: str,
                          spec: GPUSpec, batch: int = 1,
                          seq_len: int | None = None) -> int:
    """Naive tensor-parallel width: how many cards until weights fit.

    Splits weights and KV evenly; workspace replicates.  A lower bound a
    deployment planner would refine, but sufficient to show the paper's
    memory story at model scale (Samoyeds' 3.5x weight compression cuts
    the card count).
    """
    seq = min(seq_len or config.max_seq_len, config.max_seq_len)
    weights = weight_bytes(config, engine) * config.num_layers
    kv = kv_cache_bytes(config, seq) * batch * config.num_layers
    workspace = moe_workspace_bytes(config, seq, engine) * batch
    budget = spec.dram_capacity * (1.0 - FRAGMENTATION) \
        - fixed_overhead_bytes(config, engine)
    for devices in range(1, 129):
        if (weights + kv) / devices + workspace <= budget:
            return devices
    raise CapacityError(f"{config.name} needs more than 128 {spec.name}s")


DTYPE_BYTES = DTYPE
