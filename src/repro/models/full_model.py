"""Whole-model extrapolation from the per-layer substrate.

The paper measures one decoder layer (justified in §6.3: decoder layers
are >90% of runtime and mutually similar).  This module provides the
inverse direction for users sizing deployments: extrapolate a full
model's parameters, memory, latency and serving throughput from the
per-layer models, across devices and engines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError
from repro.hw.spec import GPUSpec
from repro.models.decoder import decoder_cost
from repro.moe.config import MoEModelConfig
from repro.moe.memory_model import (
    DTYPE,
    FIXED_OVERHEAD,
    FRAGMENTATION,
    kv_cache_bytes,
    moe_workspace_bytes,
    weight_bytes,
)
from repro.utils.units import GIB


@dataclass(frozen=True)
class ModelEstimate:
    """Full-model numbers for one (model, engine, device, workload)."""

    model: str
    engine: str
    device: str
    batch: int
    seq_len: int
    total_params: int
    weights_bytes: float
    kv_bytes: float
    latency_s: float
    tokens_per_s: float
    fits: bool

    @property
    def weights_gib(self) -> float:
        return self.weights_bytes / GIB


def total_params(config: MoEModelConfig) -> int:
    """All-layer parameter count (attention + experts + embeddings)."""
    per_layer = config.attention_param_count + config.moe_param_count
    embeddings = 2 * 32000 * config.hidden_size       # in/out embeddings
    return per_layer * config.num_layers + embeddings


def full_model_estimate(config: MoEModelConfig, engine: str,
                        spec: GPUSpec, batch: int = 1,
                        seq_len: int | None = None,
                        flash: bool = True) -> ModelEstimate:
    """Extrapolate one decoder layer to the whole model.

    Latency scales by ``num_layers``; weights and KV cache scale the
    same way; the workspace is reused across layers so it counts once.
    """
    seq = min(seq_len or config.max_seq_len, config.max_seq_len)
    layer = decoder_cost(config, seq, spec, engine=engine, batch=batch,
                         flash=flash)
    latency = layer.total_s * config.num_layers

    weights = weight_bytes(config, engine) * config.num_layers
    kv = kv_cache_bytes(config, seq) * batch * config.num_layers
    workspace = moe_workspace_bytes(config, seq, engine) * batch
    need = (weights + kv + workspace + FIXED_OVERHEAD[engine])
    fits = need <= spec.dram_capacity * (1.0 - FRAGMENTATION)

    return ModelEstimate(
        model=config.name,
        engine=engine,
        device=spec.name,
        batch=batch,
        seq_len=seq,
        total_params=total_params(config),
        weights_bytes=weights,
        kv_bytes=kv,
        latency_s=latency,
        tokens_per_s=batch * seq / latency,
        fits=fits,
    )


def require_fits(estimate: ModelEstimate, spec: GPUSpec) -> None:
    """Raise :class:`CapacityError` when the estimate does not fit."""
    if not estimate.fits:
        raise CapacityError(
            f"{estimate.model} with {estimate.engine} does not fit on "
            f"{spec.name} at batch {estimate.batch}",
            required_bytes=int(estimate.weights_bytes + estimate.kv_bytes),
            available_bytes=int(spec.dram_capacity))


def min_devices_for_model(config: MoEModelConfig, engine: str,
                          spec: GPUSpec, batch: int = 1,
                          seq_len: int | None = None) -> int:
    """Naive tensor-parallel width: how many cards until weights fit.

    Splits weights and KV evenly; workspace replicates.  A lower bound a
    deployment planner would refine, but sufficient to show the paper's
    memory story at model scale (Samoyeds' 3.5x weight compression cuts
    the card count).
    """
    seq = min(seq_len or config.max_seq_len, config.max_seq_len)
    weights = weight_bytes(config, engine) * config.num_layers
    kv = kv_cache_bytes(config, seq) * batch * config.num_layers
    workspace = moe_workspace_bytes(config, seq, engine) * batch
    budget = spec.dram_capacity * (1.0 - FRAGMENTATION) \
        - FIXED_OVERHEAD[engine]
    for devices in range(1, 129):
        if (weights + kv) / devices + workspace <= budget:
            return devices
    raise CapacityError(f"{config.name} needs more than 128 {spec.name}s")


DTYPE_BYTES = DTYPE
