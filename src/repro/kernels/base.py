"""Common kernel machinery.

Every matmul kernel in the reproduction implements two faces:

* ``run(...)`` — a functionally exact numpy execution used by tests and
  the accuracy pipeline;
* ``cost(m, k, n, spec, ...)`` — an analytical performance estimate that
  assembles a :class:`~repro.hw.simulator.KernelLaunch` from the kernel's
  tiling and per-iteration memory/compute demands and hands it to the
  simulator.

Subclasses describe *their own* per-iteration behaviour by overriding the
``_*_per_iter`` hooks; the shared :meth:`MatmulKernel.cost` assembles the
launch so all kernels are scored by the same machinery.

Calibration constants: each kernel carries an ``EFFICIENCY`` in (0, 1] —
the fraction of the modelled issue rate the real library sustains.  These
are fixed per kernel (documented in DESIGN.md §5), never tuned per
experiment.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.hw.memory import AccessPattern, dram_bytes, smem_load_cycles
from repro.hw.simulator import CostBreakdown, KernelLaunch, simulate_kernel
from repro.hw.spec import GPUSpec
from repro.hw.tensorcore import MmaShape
from repro.kernels.tiling import TilingConfig, heuristic_config
from repro.registry.capabilities import Capabilities


@dataclass(frozen=True)
class GemmProblem:
    """A logical ``C[m, n] = A[m, k] @ B[k, n]`` problem."""

    m: int
    k: int
    n: int

    @property
    def flops(self) -> float:
        """Effective FLOPs — zeros counted, the paper's throughput basis."""
        return 2.0 * self.m * self.k * self.n

    def padded(self, mb: int, nb: int) -> "GemmProblem":
        """Tile-quantised problem actually executed by the kernel."""
        return GemmProblem(
            m=math.ceil(self.m / mb) * mb,
            k=self.k,
            n=math.ceil(self.n / nb) * nb,
        )


class MatmulKernel(abc.ABC):
    """Base class for all kernel cost models."""

    #: Report label; matches the paper's legend names.
    name: str = "kernel"
    #: Sustained fraction of modelled issue rate (calibration constant).
    EFFICIENCY: float = 1.0
    #: Software-pipeline depth used by the implementation.
    PIPELINE_STAGES: int = 3
    #: Host-side launch overhead; vendor dispatchers differ.
    LAUNCH_OVERHEAD_S: float = 4.0e-6
    #: Fraction of A elements stored/computed (1.0 = dense).
    A_DENSITY: float = 1.0
    #: A-operand storage format (capability metadata).
    SPARSITY_FORMAT: str = "dense"
    #: Whether the implementation uses tensor cores at all (Sputnik's
    #: SIMT path sets this False; its ``mma_shape`` is only a tiling
    #: granularity, not an issued instruction).
    USES_TENSOR_CORES: bool = True

    # ------------------------------------------------------------------
    # Capability metadata
    # ------------------------------------------------------------------
    def capabilities(self) -> Capabilities:
        """Declared capability metadata, derived from the kernel's own
        class attributes and MMA shape; kernels with richer constraints
        override.  Queried by ``repro list kernels`` and the auto
        dispatcher's device gate."""
        shape = self.mma_shape()
        return Capabilities(
            sparsity_format=self.SPARSITY_FORMAT,
            a_density=self.A_DENSITY,
            mma_shapes=(shape.name,) if self.USES_TENSOR_CORES else (),
            needs_sparse_tensor_cores=(self.USES_TENSOR_CORES
                                       and shape.sparse))

    # ------------------------------------------------------------------
    # Per-kernel hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def mma_shape(self) -> MmaShape:
        """Instruction shape the kernel issues."""

    @abc.abstractmethod
    def compute_cycles_per_iter(self, cfg: TilingConfig,
                                spec: GPUSpec) -> float:
        """SM cycles of MMA/SIMT issue for one block-tile k-iteration."""

    @abc.abstractmethod
    def a_bytes_per_iter(self, cfg: TilingConfig, spec: GPUSpec) -> float:
        """DRAM bytes for the A-side operands of one iteration."""

    def b_bytes_per_iter(self, cfg: TilingConfig, spec: GPUSpec) -> float:
        """DRAM bytes for the B tile of one iteration (dense default)."""
        return dram_bytes(
            AccessPattern(rows=cfg.kb, row_bytes=cfg.nb * 2), spec)

    def smem_cycles_per_iter(self, cfg: TilingConfig,
                             spec: GPUSpec) -> float:
        """Shared->register cycles per iteration (conflict-free default)."""
        frag_bytes = cfg.warps_per_block * (cfg.mw * cfg.kb
                                            + cfg.kb * cfg.nw) * 2
        return smem_load_cycles(frag_bytes, conflict_ways=1, spec=spec)

    def epilogue_bytes(self, cfg: TilingConfig) -> float:
        """Output write-back bytes per block (fp16 C tile)."""
        return cfg.mb * cfg.nb * 2.0

    def prologue_bytes(self, problem: GemmProblem) -> float:
        """One-time loads before the main loop (e.g. SEL array)."""
        del problem
        return 0.0

    def default_config(self, problem: GemmProblem,
                       spec: GPUSpec) -> TilingConfig:
        return heuristic_config(problem.m, problem.n, problem.k, spec,
                                self.mma_shape())

    #: k-slices simultaneously live in L2 (blocks drift out of lockstep).
    L2_DRIFT_SLICES = 4

    def cache_stripes(self, problem: GemmProblem, cfg: TilingConfig
                      ) -> tuple[float, float]:
        """(A, B) bytes each stripe keeps live in L2.

        Concurrent blocks stream the k dimension in near-lockstep, so L2
        holds only a few ``k_b``-slices of each shared stripe at a time,
        not the whole ``k`` extent.
        """
        del problem
        a_slice = cfg.mb * cfg.kb * 2.0 * self.A_DENSITY
        b_slice = cfg.kb * cfg.nb * 2.0
        return (a_slice * self.L2_DRIFT_SLICES,
                b_slice * self.L2_DRIFT_SLICES)

    def porting_factor(self, native: GPUSpec, target: GPUSpec) -> float:
        """Efficiency retained when a kernel tuned on ``native`` runs on
        ``target`` without re-tuning (§6.6's direct-porting protocol).

        Vendor libraries re-tune per device, so the default is 1.0;
        hand-tuned research kernels override this.
        """
        del native, target
        return 1.0

    # ------------------------------------------------------------------
    # Shared cost assembly
    # ------------------------------------------------------------------
    def cost(self, m: int, k: int, n: int, spec: GPUSpec,
             cfg: TilingConfig | None = None) -> CostBreakdown:
        """Simulated execution cost of the ``m x k x n`` problem."""
        problem = GemmProblem(m=m, k=k, n=n)
        if cfg is None:
            cfg = self.default_config(problem, spec)
        padded = problem.padded(cfg.mb, cfg.nb)
        grid, _, grid_n = cfg.grid(padded.m, padded.n)
        a_stripe, b_stripe = self.cache_stripes(padded, cfg)
        launch = KernelLaunch(
            name=self.name,
            grid_blocks=grid,
            grid_n=grid_n,
            block=cfg.block_resources(a_density=self.A_DENSITY),
            iters_per_block=cfg.k_iters(padded.k),
            compute_cycles_per_iter=self.compute_cycles_per_iter(cfg, spec),
            smem_cycles_per_iter=self.smem_cycles_per_iter(cfg, spec),
            dram_bytes_per_iter=(self.a_bytes_per_iter(cfg, spec)
                                 + self.b_bytes_per_iter(cfg, spec)),
            a_stripe_bytes=a_stripe,
            b_stripe_bytes=b_stripe,
            epilogue_bytes=self.epilogue_bytes(cfg),
            prologue_bytes=self.prologue_bytes(padded),
            pipeline_stages=cfg.stages if spec.has_async_copy else 1,
            efficiency=self.EFFICIENCY,
        )
        result = simulate_kernel(launch, spec, flops=problem.flops)
        return CostBreakdown(
            name=result.name,
            time_s=result.time_s
            + (self.LAUNCH_OVERHEAD_S - spec.kernel_launch_overhead_s),
            flops=result.flops,
            useful_bytes=result.useful_bytes,
            dram_bytes=result.dram_bytes,
            compute_time_s=result.compute_time_s,
            memory_time_s=result.memory_time_s,
            epilogue_time_s=result.epilogue_time_s,
            launch_overhead_s=self.LAUNCH_OVERHEAD_S,
            waves=result.waves,
            occupancy=result.occupancy,
            l2_hit_fraction=result.l2_hit_fraction,
            limiter=result.limiter,
            detail=result.detail,
        )
