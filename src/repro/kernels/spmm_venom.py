"""VENOM baseline: V:N:M sparse-weight x dense-input on SpTC.

VENOM (Castro et al., SC'23) is the strongest baseline: it reaches beyond
the fixed 50% of cuSPARSELt by layering vector-wise column selection on
top of 2:4, and it does use ``mma.sp``.  The paper's critique (§3.3,
Figure 6) is about what happens *around* the tensor core:

* each V-row panel selects different columns, so the B operand cannot be
  fed with ``ldmatrix`` — the kernel assembles fragments with scalar
  shared-memory reads through an index indirection (extra SIMT work,
  bank conflicts);
* the panel-varying selection breaks stripe reuse granularity in L2 and
  adds an index/metadata side-channel to every iteration;
* its pipeline is shallower (2 stages) and tuned for its native GPU —
  the portability experiment (Figure 18) shows the consequences.
"""

from __future__ import annotations

import numpy as np

from repro.formats.venom import VenomMatrix, VenomPattern, DEFAULT_VENOM
from repro.hw.memory import AccessPattern, dram_bytes, smem_load_cycles
from repro.hw.spec import GPUSpec
from repro.hw.tensorcore import SAMOYEDS_MMA, MmaShape, require_sparse_alu
from repro.kernels.base import GemmProblem, MatmulKernel
from repro.kernels.tiling import TilingConfig


def venom_spmm(weight: VenomMatrix, dense_rhs: np.ndarray) -> np.ndarray:
    """Functional V:N:M sparse x dense product (decode + matmul)."""
    return weight.matmul(dense_rhs)


class VenomKernel(MatmulKernel):
    """Cost model of VENOM's Spatha kernel."""

    name = "venom"
    #: Sustains ~72% of the sparse roofline on its native platform.
    EFFICIENCY = 0.72
    PIPELINE_STAGES = 2
    SPARSITY_FORMAT = "v:n:m"
    #: Serial overhead on the mma stream at the native platform: every B
    #: fragment is assembled through an index indirection (scalar address
    #: math + non-ldmatrix loads) that cannot be hoisted off the critical
    #: path, and the 2-stage pipeline exposes part of each fragment
    #: latency.  The SIMT work is fixed per fragment, so on devices with
    #: faster tensor cores it consumes relatively more of the mma budget
    #: — the §6.6 portability collapse (Figure 18).
    FRAGMENT_OVERHEAD_BASE = 0.75
    REFERENCE_TC_RATE = 1024.0

    def fragment_overhead(self, spec: GPUSpec) -> float:
        """Overhead multiplier, scaled by the device's TC:SIMT ratio."""
        return 1.0 + self.FRAGMENT_OVERHEAD_BASE * (
            spec.tc_flops_per_sm_cycle / self.REFERENCE_TC_RATE)

    def porting_factor(self, native: GPUSpec, target: GPUSpec) -> float:
        """VENOM's §6.6 fragility: memory-computation imbalance.

        Its shallow pipeline and per-fragment indirection are balanced
        for the native device's bandwidth:compute ratio; on devices with
        relatively faster memory and slower tensor cores (A100, 3090)
        the pipeline stalls and the speedup collapses (Figure 18 shows
        VENOM retaining ~5% on A100).
        """
        if native.name == target.name:
            return 1.0
        native_balance = native.dram_bandwidth / native.dense_tc_flops
        target_balance = target.dram_bandwidth / target.dense_tc_flops
        imbalance = max(0.0, target_balance / native_balance - 1.0)
        return max(0.45, 1.0 - 1.1 * imbalance)
    #: B-fragment gathers conflict 2-way (no ldmatrix on indexed rows).
    B_CONFLICT_WAYS = 2

    def __init__(self, pattern: VenomPattern = DEFAULT_VENOM) -> None:
        self.pattern = pattern

    @property
    def A_DENSITY(self) -> float:  # type: ignore[override]
        return self.pattern.density

    def mma_shape(self) -> MmaShape:
        return SAMOYEDS_MMA

    def default_config(self, problem: GemmProblem,
                       spec: GPUSpec) -> TilingConfig:
        require_sparse_alu(spec)
        cfg = super().default_config(problem, spec)
        return cfg.scaled(stages=self.PIPELINE_STAGES)

    def compute_cycles_per_iter(self, cfg: TilingConfig,
                                spec: GPUSpec) -> float:
        # Column selection compacts k by N/M; mma.sp doubles throughput on
        # the inner 2:4.  Fragment assembly inflates the compute stage.
        kept = self.pattern.n / self.pattern.m
        flops = 2.0 * cfg.mb * cfg.nb * cfg.kb * kept
        mma = flops / (spec.tc_flops_per_sm_cycle * spec.sparse_tc_speedup)
        return mma * self.fragment_overhead(spec)

    def a_bytes_per_iter(self, cfg: TilingConfig, spec: GPUSpec) -> float:
        kept = self.pattern.n / self.pattern.m
        values_bytes = dram_bytes(
            AccessPattern(rows=cfg.mb,
                          row_bytes=max(int(cfg.kb * kept), 4)), spec)
        metadata_bytes = dram_bytes(
            AccessPattern(
                rows=1,
                row_bytes=max(int(cfg.mb * cfg.kb * kept / 8), 1),
                contiguous=True), spec)
        panels = max(1, cfg.mb // self.pattern.v)
        indices_bytes = dram_bytes(
            AccessPattern(
                rows=panels,
                row_bytes=max(cfg.kb // self.pattern.m
                              * self.pattern.n * 2, 4)), spec)
        return values_bytes + metadata_bytes + indices_bytes

    def b_bytes_per_iter(self, cfg: TilingConfig, spec: GPUSpec) -> float:
        # The full dense B tile is staged (keeps DRAM coalesced); the
        # selection happens at the shared-memory level.
        return dram_bytes(
            AccessPattern(rows=cfg.kb, row_bytes=cfg.nb * 2), spec)

    def smem_cycles_per_iter(self, cfg: TilingConfig,
                             spec: GPUSpec) -> float:
        kept = self.pattern.n / self.pattern.m
        a_bytes = cfg.warps_per_block * cfg.mw * cfg.kb * kept * 2
        b_bytes = cfg.warps_per_block * cfg.kb * kept * cfg.nw * 2
        a_cycles = smem_load_cycles(int(a_bytes), conflict_ways=1, spec=spec)
        b_cycles = smem_load_cycles(int(b_bytes),
                                    conflict_ways=self.B_CONFLICT_WAYS,
                                    spec=spec)
        return a_cycles + b_cycles


VENOM = VenomKernel()
