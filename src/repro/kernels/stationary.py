"""Data-stationary optimisation for the output matrix (§4.3, Figure 9).

Because the Samoyeds format selects *different* sub-rows in every
``V``-column stripe, the accumulator fragments a warp produces must be
remapped to different output rows whenever the k-loop crosses a sub-row
boundary.  Passing indexed registers straight to ``mma.sp`` would demote
the accumulator to local memory (left of Figure 9); Samoyeds instead keeps
a zero-initialised intermediate register file ``C_IR`` and *shuffles* it
into the right rows every ``V / k_b`` iterations.

This module quantifies both choices so the kernel cost model and the
ablation bench (Figure 17, ``+S``) can price the difference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TilingError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class StationaryCost:
    """Per-k-iteration cost of one accumulator-handling strategy."""

    extra_smem_cycles: float      # register-shuffle work (compute stage)
    extra_dram_bytes: float       # local-memory spill traffic


def shuffle_interval(v: int, kb: int) -> int:
    """Iterations between C_IR shuffles (= ``V / k_b``)."""
    check_positive(v, "v")
    check_positive(kb, "kb")
    if v % kb:
        raise TilingError(f"V={v} must be a multiple of k_b={kb}")
    return v // kb


def stationary_register_cost(mb: int, nb: int, v: int, kb: int,
                             warps: int = 4,
                             moved_fraction: float = 0.5) -> StationaryCost:
    """Cost with the C_IR optimisation enabled.

    A shuffle permutes only the accumulator fragments whose destination
    row changed (``moved_fraction`` of the ``mb x nb x 4``-byte tile, the
    stored-sub-row share) through warp-shuffle lanes; all warps shuffle in
    parallel at 128 B/cycle each.  The cost amortises over ``V / k_b``
    iterations.
    """
    interval = shuffle_interval(v, kb)
    shuffle_bytes = mb * nb * 4 * moved_fraction
    cycles_per_shuffle = shuffle_bytes / (128.0 * max(warps, 1))
    return StationaryCost(
        extra_smem_cycles=cycles_per_shuffle / interval,
        extra_dram_bytes=0.0,
    )


#: Local-memory spill throughput seen by one block (bytes/cycle).  Spills
#: are L1/L2-resident in practice, so the cost is cache-bandwidth class,
#: not DRAM class.
SPILL_BYTES_PER_CYCLE = 1024.0


def local_memory_spill_cost(mb: int, nb: int, v: int, kb: int
                            ) -> StationaryCost:
    """Cost with the optimisation disabled (accumulator in local memory).

    Every sub-row boundary forces a store and reload of the fp32
    accumulator tile through the local-memory path; the traffic is mostly
    absorbed by L1/L2 but still serialises against the compute stage.
    """
    interval = shuffle_interval(v, kb)
    spill_bytes = 2.0 * mb * nb * 4      # store + load
    return StationaryCost(
        extra_smem_cycles=spill_bytes / SPILL_BYTES_PER_CYCLE / interval,
        extra_dram_bytes=0.0,
    )


def fusion_savings_bytes(m: int, n: int, fuse_activation: bool = True,
                         fuse_weighted_acc: bool = True) -> float:
    """DRAM bytes saved by the §4.3 operator fusions.

    Each un-fused elementwise operator costs a full intermediate round
    trip (write fp16 result + read it back).
    """
    roundtrip = 2.0 * m * n * 2
    saved = 0.0
    if fuse_activation:
        saved += roundtrip
    if fuse_weighted_acc:
        saved += roundtrip
    return saved
