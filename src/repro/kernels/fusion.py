"""Operator fusion (§4.3, last paragraph).

Two fusions ride on the Samoyeds kernel epilogue:

* the expert activation function (SiLU/GELU) fuses with its producing
  GEMM, removing one intermediate round trip;
* the weighted accumulation of expert outputs (scalar broadcast + dot
  product) fuses with the ``down_proj`` GEMM, removing another round trip
  *and* a kernel launch.

The functional faces below are used by the MoE layer engines; the byte
accounting feeds the layer-level cost models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hw.spec import GPUSpec


@dataclass(frozen=True)
class FusionPlan:
    """Which epilogue fusions are enabled."""

    fuse_activation: bool = True
    fuse_weighted_acc: bool = True

    @property
    def extra_kernel_launches(self) -> int:
        """Standalone elementwise kernels needed when fusion is off."""
        return (0 if self.fuse_activation else 1) + \
               (0 if self.fuse_weighted_acc else 1)


def fused_gemm_activation(gemm_out: np.ndarray,
                          activation: Callable[[np.ndarray], np.ndarray]
                          ) -> np.ndarray:
    """Apply ``activation`` as if fused into the GEMM epilogue."""
    return activation(gemm_out)


def fused_weighted_accumulate(acc: np.ndarray, expert_out: np.ndarray,
                              gate_weights: np.ndarray,
                              token_ids: np.ndarray) -> np.ndarray:
    """Scatter-add ``gate_weights * expert_out`` into the shared output.

    Args:
        acc: ``(tokens, hidden)`` running output (modified in place).
        expert_out: ``(len_d, hidden)`` this expert's rows.
        gate_weights: ``(len_d,)`` router weights for those rows.
        token_ids: ``(len_d,)`` destination row ids.
    """
    np.add.at(acc, token_ids, gate_weights[:, None] * expert_out)
    return acc


def unfused_extra_seconds(m: int, n: int, plan: FusionPlan,
                          spec: GPUSpec, dtype_bytes: int = 2) -> float:
    """Time added by the round trips and launches fusion would remove."""
    roundtrip = 2.0 * m * n * dtype_bytes / spec.dram_bandwidth
    extra = 0.0
    if not plan.fuse_activation:
        extra += roundtrip + spec.kernel_launch_overhead_s
    if not plan.fuse_weighted_acc:
        extra += roundtrip + spec.kernel_launch_overhead_s
    return extra
