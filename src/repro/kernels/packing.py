"""Data-packing analysis (§4.4, Figure 10).

Three packing decisions shape the Samoyeds kernel's memory behaviour:

* **matrix A** — packed in format order in global memory, 128-bit
  transactions to shared memory, ``ldmatrix`` (permuted, conflict-free)
  to registers;
* **matrix B** — stored *transposed* so the token-sparse columns become
  contiguous rows that can be skipped wholesale, preserving coalescing;
* **metadata** — re-laid-out per Figure 10 so each thread's sixteen 2-bit
  values land in one aligned 32-bit word (see
  :mod:`repro.formats.metadata_packing` for the exact permutation).

The functions here convert those decisions into the transaction counts and
bank-conflict multipliers the kernel cost model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats.metadata_packing import (
    TILE,
    metadata_load_transactions,
)
from repro.hw.memory import AccessPattern, dram_bytes
from repro.hw.spec import GPUSpec


@dataclass(frozen=True)
class PackingPlan:
    """Which packing optimisations are enabled."""

    a_swizzled: bool = True         # permuted smem layout for A
    b_transposed: bool = True       # B stored/accessed transposed
    metadata_packed: bool = True    # Figure 10 layout


def a_smem_conflict_ways(plan: PackingPlan) -> int:
    """Bank-conflict multiplier for A-fragment loads."""
    return 1 if plan.a_swizzled else 8


def b_tile_dram_bytes(kb: int, nb: int, plan: PackingPlan,
                      spec: GPUSpec, selected_fraction: float = 1.0
                      ) -> float:
    """DRAM bytes to stage one B tile.

    Transposed B keeps each needed token row contiguous, so loads stay
    coalesced regardless of which columns the SEL array picks.  The
    untransposed layout reads ``kb``-strided scraps of each selected
    column: per-element sector rounding.
    """
    rows = max(1, int(round(kb * 1.0)))
    if plan.b_transposed:
        return dram_bytes(
            AccessPattern(rows=max(1, int(nb * selected_fraction)),
                          row_bytes=rows * 2), spec)
    # Column-major pulls: nb columns, each touching `rows` separate
    # sectors of 2 useful bytes.
    per_element_sector_bytes = spec.dram_transaction_bytes
    return nb * selected_fraction * rows * per_element_sector_bytes


def metadata_tile_bytes(mb: int, kb: int, subrow_density: float,
                        plan: PackingPlan) -> float:
    """Bytes of metadata traffic for one block iteration.

    The metadata covers ``mb * subrow_density`` stored sub-rows by
    ``kb / 2`` kept elements at 2 bits each; the unpacked layout touches
    4x the words (Figure 10's scatter factor).
    """
    stored_rows = max(1, int(mb * subrow_density))
    bits = stored_rows * (kb // 2) * 2
    tiles = max(1, bits // (TILE * TILE * 2))
    words = metadata_load_transactions(tiles, packed=plan.metadata_packed)
    return words * 4.0


def packing_speedup_estimate(plan: PackingPlan) -> float:
    """Rough kernel-level factor packing contributes (for reports only)."""
    factor = 1.0
    if not plan.a_swizzled:
        factor *= 0.85
    if not plan.b_transposed:
        factor *= 0.55
    if not plan.metadata_packed:
        factor *= 0.93
    return factor
