"""The Samoyeds sparse-sparse matrix-multiplication (SSMM) kernel.

This is the paper's primary contribution: a kernel computing

``C[m, len_d] = A_samoyeds[m, k] @ B[k, :][:, SEL]``

where A is in the dual `(N, M, V)` + 2:4 weight format and B is read
through the SEL column-selection array — no permutation tensors, no dense
zero traffic.  Three faces are provided:

* :func:`samoyeds_ssmm` — functional reference (decode + gather + matmul);
* :func:`samoyeds_ssmm_tiled` — a faithful Algorithm-1 walk: iterates
  sub-row blocks, resolves ``indices`` to scatter partial products into
  the right output rows (the C_IR shuffle), and consumes ``metadata``
  through the 2:4 decode — used to validate the format plumbing;
* :class:`SamoyedsKernel` — the performance model, with feature flags
  mirroring §4.2-4.5 so the ablation benches can disable each
  optimisation individually.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ShapeError
from repro.formats.samoyeds import SamoyedsPattern, SamoyedsWeight
from repro.formats.selection import ColumnSelection
from repro.formats.twofour import TwoFourMatrix
from repro.hw.memory import AccessPattern, dram_bytes, smem_load_cycles
from repro.hw.spec import GPUSpec
from repro.hw.tensorcore import SAMOYEDS_MMA, MmaShape, require_sparse_alu
from repro.kernels.base import GemmProblem, MatmulKernel
from repro.kernels.layout import LayoutPlan, extra_layout_passes_seconds
from repro.kernels.packing import PackingPlan, metadata_tile_bytes
from repro.kernels.stationary import (
    local_memory_spill_cost,
    stationary_register_cost,
)
from repro.kernels.tiling import TilingConfig, heuristic_config


# ----------------------------------------------------------------------
# Functional implementations
# ----------------------------------------------------------------------

def samoyeds_ssmm(weight: SamoyedsWeight, inputs: ColumnSelection,
                  compressed_output: bool = True) -> np.ndarray:
    """Reference SSMM: exact result via decode + gather.

    Returns the compressed ``(m, len_d)`` output, or the scattered
    ``(m, n_full)`` output (zero columns included) when
    ``compressed_output`` is False — both mathematically equivalent to
    the dense computation on the pruned weight.
    """
    if weight.shape[1] != inputs.full.shape[0]:
        raise ShapeError(
            f"weight k={weight.shape[1]} != input k={inputs.full.shape[0]}")
    compact = weight.to_dense() @ inputs.gather()
    if compressed_output:
        return compact
    out = np.zeros((weight.shape[0], inputs.full.shape[1]),
                   dtype=compact.dtype)
    out[:, inputs.sel] = compact
    return out


def samoyeds_ssmm_tiled(weight: SamoyedsWeight, inputs: ColumnSelection,
                        kb: int | None = None) -> np.ndarray:
    """Algorithm-1-shaped execution over the encoded operands.

    Walks ``(block-row, V-stripe)`` tiles: decodes each stored sub-row
    from *data* + *metadata* (the 2:4 step), multiplies against the
    SEL-selected B rows of that stripe, and scatters the partial product
    into the output row named by *indices* — the exact bookkeeping the
    C_IR shuffle performs in registers on hardware.
    """
    p = weight.pattern
    m, k = weight.shape
    kb = kb or p.v
    if p.v % kb:
        raise ShapeError(f"kb={kb} must divide V={p.v}")

    b_sel = inputs.gather().astype(np.float64)        # reads via SEL
    mb_count = m // p.m
    stripes = k // p.v

    decoder = TwoFourMatrix(data=weight.data, metadata=weight.metadata,
                            shape=(mb_count * p.n, k))
    stored = decoder.to_dense().astype(np.float64)    # (mb*N, k)

    out = np.zeros((m, inputs.len_d), dtype=np.float64)
    for block_row in range(mb_count):
        rows = stored[block_row * p.n:(block_row + 1) * p.n]
        for stripe in range(stripes):
            dest = weight.indices[block_row, stripe].astype(np.int64)
            for sub in range(p.v // kb):             # k-loop inside stripe
                k0 = stripe * p.v + sub * kb
                partial = rows[:, k0:k0 + kb] @ b_sel[k0:k0 + kb]
                # C_IR -> C shuffle: route the N partials to their rows.
                out[block_row * p.m + dest] += partial
    return out.astype(np.result_type(weight.data, inputs.full))


# ----------------------------------------------------------------------
# Performance model
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SamoyedsFeatures:
    """Feature flags for the §4.2-4.5 optimisations (ablation knobs)."""

    input_selection: bool = True      # dual-side sparsity (SEL reads)
    data_stationary: bool = True      # C_IR register shuffle (§4.3)
    packing: PackingPlan = PackingPlan()
    layout: LayoutPlan = LayoutPlan()

    def without(self, feature: str) -> "SamoyedsFeatures":
        """Copy with one named optimisation disabled."""
        if feature == "stationary":
            return replace(self, data_stationary=False)
        if feature == "packing":
            return replace(self, packing=PackingPlan(
                a_swizzled=False, b_transposed=False,
                metadata_packed=False))
        if feature == "layout":
            # The §4.5 runtime transposes come back; the offline weight
            # transpose and the compressed output belong to the format
            # itself and stay on (Figure 17's T step is about runtime
            # transposition overhead).
            return replace(self, layout=LayoutPlan(
                offline_weight_transpose=True,
                fused_input_transpose=False,
                fused_output_transpose=False,
                compressed_output=True))
        if feature == "input_selection":
            return replace(self, input_selection=False)
        raise ValueError(f"unknown feature {feature!r}")


class SamoyedsKernel(MatmulKernel):
    """Cost model of the Samoyeds SSMM kernel."""

    name = "samoyeds"
    #: Purpose-built kernel: ~88% of the modelled sparse roofline on the
    #: native platform (RTX 4070 Super).
    EFFICIENCY = 0.88
    PIPELINE_STAGES = 3
    SPARSITY_FORMAT = "samoyeds"

    def __init__(self,
                 pattern: SamoyedsPattern = SamoyedsPattern(1, 2, 32),
                 features: SamoyedsFeatures | None = None) -> None:
        self.pattern = pattern
        self.features = features or SamoyedsFeatures()

    @property
    def A_DENSITY(self) -> float:  # type: ignore[override]
        return self.pattern.density

    @property
    def subrow_density(self) -> float:
        """Fraction of sub-rows stored (N / M)."""
        return self.pattern.n / self.pattern.m

    def mma_shape(self) -> MmaShape:
        # Short sub-rows (V < 32) cannot host an m16n8k32 k-slice; the
        # kernel falls back to the narrower m16n8k16 sparse shape.
        from repro.hw.tensorcore import MMA_SP_SHAPES
        if self.pattern.v % SAMOYEDS_MMA.k == 0:
            return SAMOYEDS_MMA
        return MMA_SP_SHAPES[1]

    def porting_factor(self, native, spec) -> float:
        """Graceful §6.6 degradation: Samoyeds' sparse memory paradigm
        dampens (but does not remove) the tuning mismatch when ported."""
        if native.name == spec.name:
            return 1.0
        native_balance = native.dram_bandwidth / native.dense_tc_flops
        target_balance = spec.dram_bandwidth / spec.dense_tc_flops
        imbalance = max(0.0, target_balance / native_balance - 1.0)
        factor = max(0.75, 1.0 - 0.15 * imbalance)
        if spec.architecture != native.architecture:
            factor *= 0.95
        return factor

    def default_config(self, problem: GemmProblem,
                       spec: GPUSpec) -> TilingConfig:
        require_sparse_alu(spec)
        cfg = heuristic_config(problem.m, problem.n, problem.k, spec,
                               self.mma_shape(), subrow_v=self.pattern.v)
        return cfg.scaled(stages=self.PIPELINE_STAGES
                          if spec.has_async_copy else 1)

    # ------------------------------------------------------------------
    # Per-iteration demands
    # ------------------------------------------------------------------
    def compute_cycles_per_iter(self, cfg: TilingConfig,
                                spec: GPUSpec) -> float:
        # Only the stored sub-rows are computed; mma.sp doubles
        # throughput over their 2:4 zeros.
        flops = 2.0 * cfg.mb * cfg.nb * cfg.kb * self.subrow_density
        return flops / (spec.tc_flops_per_sm_cycle * spec.sparse_tc_speedup)

    def a_bytes_per_iter(self, cfg: TilingConfig, spec: GPUSpec) -> float:
        stored_rows = max(1, int(cfg.mb * self.subrow_density))
        values_bytes = dram_bytes(
            AccessPattern(rows=stored_rows, row_bytes=cfg.kb), spec)
        metadata_bytes = metadata_tile_bytes(
            cfg.mb, cfg.kb, self.subrow_density, self.features.packing)
        index_rows = max(1, cfg.mb // self.pattern.m)
        index_cols = max(1, cfg.kb // self.pattern.v) * self.pattern.n
        indices_bytes = dram_bytes(
            AccessPattern(rows=1, row_bytes=index_rows * index_cols,
                          contiguous=True), spec)
        return values_bytes + metadata_bytes + indices_bytes

    def b_bytes_per_iter(self, cfg: TilingConfig, spec: GPUSpec) -> float:
        from repro.kernels.packing import b_tile_dram_bytes
        return b_tile_dram_bytes(cfg.kb, cfg.nb, self.features.packing,
                                 spec)

    def smem_cycles_per_iter(self, cfg: TilingConfig,
                             spec: GPUSpec) -> float:
        from repro.kernels.packing import a_smem_conflict_ways
        ways = a_smem_conflict_ways(self.features.packing)
        a_bytes = (cfg.warps_per_block * cfg.mw * cfg.kb
                   * self.subrow_density * 2)
        b_bytes = cfg.warps_per_block * cfg.kb * cfg.nw * 2
        cycles = (smem_load_cycles(int(a_bytes), conflict_ways=ways,
                                   spec=spec)
                  + smem_load_cycles(int(b_bytes), conflict_ways=1,
                                     spec=spec))
        if self.features.data_stationary:
            shuffle = stationary_register_cost(
                cfg.mb, cfg.nb, self.pattern.v, cfg.kb,
                warps=cfg.warps_per_block,
                moved_fraction=self.subrow_density)
            cycles += shuffle.extra_smem_cycles
        else:
            spill = local_memory_spill_cost(cfg.mb, cfg.nb,
                                            self.pattern.v, cfg.kb)
            cycles += spill.extra_smem_cycles
        return cycles

    def prologue_bytes(self, problem: GemmProblem) -> float:
        # The SEL array is loaded to shared memory once (Algorithm 1 l.5).
        return problem.n * 4.0 if self.features.input_selection else 0.0

    def epilogue_bytes(self, cfg: TilingConfig) -> float:
        if self.features.layout.compressed_output:
            return cfg.mb * cfg.nb * 2.0
        # Dense layout writes the zero rows too; the expansion factor is
        # applied at cost() where n_full is known.
        return cfg.mb * cfg.nb * 2.0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def cost(self, m: int, k: int, n: int, spec: GPUSpec,
             cfg: TilingConfig | None = None,
             n_full: int | None = None):
        """Simulated cost; ``n`` is ``len_d`` (selected tokens).

        ``n_full`` (total token columns) prices the dense-output penalty
        when the compressed layout is disabled, and the SEL prologue.
        """
        require_sparse_alu(spec)
        result = super().cost(m, k, n, spec, cfg)
        extra_s = extra_layout_passes_seconds(
            m, k, n, self.features.layout, spec)
        if n_full is not None and not self.features.layout.compressed_output:
            wasted_cols = max(0, n_full - n)
            waste_traffic = 2.0 * m * wasted_cols * 2  # write + re-read
            extra_s += waste_traffic / spec.dram_bandwidth
        if extra_s <= 0.0:
            return result
        return type(result)(**{**result.__dict__,
                               "time_s": result.time_s + extra_s})


SAMOYEDS_KERNEL = SamoyedsKernel()
