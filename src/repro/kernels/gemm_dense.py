"""Dense GEMM baseline — the cuBLAS stand-in.

Functionally a plain matmul; the cost model reflects a highly tuned dense
tensor-core kernel: full A and B tiles staged through shared memory with
``ldmatrix`` (conflict-free), deep software pipeline, near-roofline
efficiency.  cuBLAS is the performance ceiling every sparse kernel must
beat to be worth using.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.hw.memory import AccessPattern, dram_bytes
from repro.hw.spec import GPUSpec
from repro.hw.tensorcore import BASELINE_MMA, MmaShape
from repro.kernels.base import MatmulKernel
from repro.kernels.tiling import TilingConfig


def dense_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference dense matmul (the functional face of cuBLAS)."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ShapeError(
            f"incompatible GEMM operands {a.shape} x {b.shape}")
    return a @ b


class DenseGemmKernel(MatmulKernel):
    """Cost model of a vendor dense GEMM (cuBLAS class)."""

    name = "cublas"
    #: cuBLAS sustains ~88% of tensor-core roofline on large fp16 GEMMs.
    EFFICIENCY = 0.88
    PIPELINE_STAGES = 4
    A_DENSITY = 1.0

    def mma_shape(self) -> MmaShape:
        return BASELINE_MMA

    def compute_cycles_per_iter(self, cfg: TilingConfig,
                                spec: GPUSpec) -> float:
        flops = 2.0 * cfg.mb * cfg.nb * cfg.kb
        return flops / spec.tc_flops_per_sm_cycle

    def a_bytes_per_iter(self, cfg: TilingConfig, spec: GPUSpec) -> float:
        return dram_bytes(
            AccessPattern(rows=cfg.mb, row_bytes=cfg.kb * 2), spec)


DENSE_GEMM = DenseGemmKernel()
