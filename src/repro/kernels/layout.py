"""Layout optimisation (§4.5, Figure 11).

The linear layer ``x @ W`` is restructured to ``(W^T x^T)^T`` to satisfy
SpTC operand ordering.  Done naively this adds three transposes worth of
memory I/O.  Samoyeds' three-step plan removes them:

1. ``W^T`` happens *offline* during pruning — zero runtime cost;
2. the input transpose rides along the global->shared copy (hardware fast
   path) — zero extra DRAM traffic;
3. the output transpose fuses into the epilogue.

Separately, the *intermediate* activations inside an expert are row-sparse
(only routed tokens are alive).  The compressed output layout writes just
the ``len_d`` live rows instead of the full token dimension, eliminating
zero traffic — worth 1.05x at low input sparsity and up to ~2.7x at high
sparsity (Figure 11b), which the bench regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.spec import GPUSpec


@dataclass(frozen=True)
class LayoutPlan:
    """Which §4.5 layout optimisations are enabled."""

    offline_weight_transpose: bool = True
    fused_input_transpose: bool = True
    fused_output_transpose: bool = True
    compressed_output: bool = True


def transpose_pass_seconds(rows: int, cols: int, spec: GPUSpec,
                           dtype_bytes: int = 2) -> float:
    """Cost of a standalone transpose kernel (read + write + launch)."""
    traffic = 2.0 * rows * cols * dtype_bytes
    return traffic / spec.dram_bandwidth + spec.kernel_launch_overhead_s


def extra_layout_passes_seconds(m: int, k: int, n: int, plan: LayoutPlan,
                                spec: GPUSpec) -> float:
    """Total time of the transpose passes the plan has NOT eliminated."""
    total = 0.0
    if not plan.offline_weight_transpose:
        total += transpose_pass_seconds(m, k, spec)
    if not plan.fused_input_transpose:
        total += transpose_pass_seconds(k, n, spec)
    if not plan.fused_output_transpose:
        total += transpose_pass_seconds(m, n, spec)
    return total


def output_bytes(m: int, len_d: int, n_full: int, plan: LayoutPlan,
                 dtype_bytes: int = 2) -> float:
    """Epilogue write-back bytes for one expert's output.

    Compressed layout writes the ``m x len_d`` live block; the dense
    layout writes (and later re-reads for the weighted sum) the full
    ``m x n_full`` token dimension including zero rows.
    """
    if plan.compressed_output:
        return float(m * len_d * dtype_bytes)
    return float(m * n_full * dtype_bytes)


def layout_speedup(m: int, k: int, len_d: int, n_full: int,
                   spec: GPUSpec) -> float:
    """Figure 11b's quantity: kernel speedup of the compressed layout.

    Compares a roofline model of the expert kernel with dense versus
    compressed output at the given input sparsity (``1 - len_d/n_full``).
    Compute time is identical (expressed as bandwidth-equivalent bytes so
    the comparison stays one-dimensional); the ratio is driven by
    epilogue traffic, which the dense layout pays for zero rows too.
    """
    compute_equiv = (2.0 * m * k * len_d * 0.25   # 75%-sparse FLOPs ...
                     / spec.flops_per_byte)       # ... as byte-equivalents
    base_traffic = (m * k * 0.25 * 2      # compressed A at 75% sparsity
                    + k * len_d * 2       # live B columns
                    + compute_equiv)
    dense_plan = LayoutPlan(compressed_output=False)
    sparse_plan = LayoutPlan(compressed_output=True)
    t_dense = (base_traffic + output_bytes(m, len_d, n_full, dense_plan)
               * 2.0) / spec.dram_bandwidth       # write + re-read
    t_sparse = (base_traffic + output_bytes(m, len_d, n_full, sparse_plan)
                * 2.0) / spec.dram_bandwidth
    return t_dense / t_sparse
