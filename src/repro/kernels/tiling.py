"""Three-step tiling (§4.2, Figure 8).

A :class:`TilingConfig` fixes the thread-block tile (``mb x nb x kb``), the
warp tile (``mw x nw``) and the pipeline depth.  Step ➌ — decomposing warp
tiles into MMA instructions — is delegated to :mod:`repro.hw.tensorcore`.

Legality enforces the same constraints a CUDA build would:

* warp tiles decompose into whole MMA instructions;
* the multi-stage shared-memory buffers fit the SM;
* for the Samoyeds kernel, ``k_b`` divides the sub-row length ``V`` (the
  tiling window must cross sub-row boundaries only at shuffle points) and
  ``k_b <= V``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Iterable

from repro.errors import TilingError
from repro.hw.occupancy import BlockResources, compute_occupancy
from repro.hw.spec import GPUSpec
from repro.hw.tensorcore import MmaShape, instructions_per_warp_tile


@dataclass(frozen=True)
class TilingConfig:
    """One point in the kernel configuration space.

    Attributes:
        mb, nb, kb: Thread-block tile (step ➊).
        mw, nw: Warp tile (step ➋).
        stages: Software-pipeline depth (Algorithm 1's ``num_pipe``).
        registers_per_thread: Register budget (occupancy input).
    """

    mb: int
    nb: int
    kb: int
    mw: int
    nw: int
    stages: int = 3
    registers_per_thread: int = 96

    @property
    def warps_per_block(self) -> int:
        return (self.mb // self.mw) * (self.nb // self.nw)

    def smem_bytes(self, dtype_bytes: int = 2,
                   a_density: float = 1.0) -> int:
        """Multi-stage A+B staging buffers (+8% for indices/SEL slack)."""
        a_tile = self.mb * self.kb * dtype_bytes * a_density
        b_tile = self.kb * self.nb * dtype_bytes
        return int(self.stages * (a_tile + b_tile) * 1.08)

    def block_resources(self, dtype_bytes: int = 2,
                        a_density: float = 1.0) -> BlockResources:
        return BlockResources(
            warps=self.warps_per_block,
            smem_bytes=self.smem_bytes(dtype_bytes, a_density),
            registers_per_thread=self.registers_per_thread,
        )

    def grid(self, m: int, n: int) -> tuple[int, int, int]:
        """(blocks, grid_m, grid_n) covering an ``m x n`` output."""
        grid_m = math.ceil(m / self.mb)
        grid_n = math.ceil(n / self.nb)
        return grid_m * grid_n, grid_m, grid_n

    def k_iters(self, k: int) -> int:
        return math.ceil(k / self.kb)

    def validate(self, shape: MmaShape, spec: GPUSpec,
                 a_density: float = 1.0,
                 subrow_v: int | None = None) -> None:
        """Raise :class:`TilingError` on any constraint violation."""
        if self.mb % self.mw or self.nb % self.nw:
            raise TilingError(
                f"block tile {self.mb}x{self.nb} not divisible by "
                f"warp tile {self.mw}x{self.nw}")
        if self.warps_per_block < 1 or self.warps_per_block > 16:
            raise TilingError(
                f"{self.warps_per_block} warps/block outside [1, 16]")
        instructions_per_warp_tile(self.mw, self.nw, self.kb, shape)
        if subrow_v is not None:
            if self.kb > subrow_v:
                raise TilingError(
                    f"k_b={self.kb} must not exceed sub-row V={subrow_v}")
            if subrow_v % self.kb:
                raise TilingError(
                    f"sub-row V={subrow_v} must be a multiple of k_b="
                    f"{self.kb} (shuffle every V/k_b iterations)")
        compute_occupancy(self.block_resources(a_density=a_density), spec)

    def scaled(self, **changes: int) -> "TilingConfig":
        """Copy with fields replaced (adaptation studies, Table 6)."""
        return replace(self, **changes)


#: The development-platform default (RTX 4070 Super, §5/§6.6).
DEFAULT_TILING = TilingConfig(mb=128, nb=128, kb=32, mw=64, nw=64, stages=3)

#: Smaller tile for many-expert models (§4.2 last paragraph).
NARROW_TILING = TilingConfig(mb=128, nb=64, kb=32, mw=64, nw=32, stages=3)


def heuristic_config(m: int, n: int, k: int, spec: GPUSpec,
                     shape: MmaShape,
                     subrow_v: int | None = None) -> TilingConfig:
    """Pick a legal tiling for a problem size following §4.2's rules:
    large tiles on non-reduction dims for data reuse, ``k_b`` small and
    bounded by ``V``, shrink tiles when the problem lacks parallelism."""
    mb = 128 if m >= 512 else 64 if m >= 128 else 32
    nb = 128 if n >= 512 else 64 if n >= 128 else 32
    kb = shape.k
    if subrow_v is not None:
        kb = min(kb, subrow_v)
    mw = min(mb, 64)
    nw = min(nb, 64)
    while (mb // mw) * (nb // nw) > 8:
        mw *= 2
    cfg = TilingConfig(mb=mb, nb=nb, kb=kb, mw=mw, nw=nw)
    cfg.validate(shape, spec, subrow_v=subrow_v)
    return cfg


def candidate_configs(shape: MmaShape, spec: GPUSpec,
                      subrow_v: int | None = None,
                      stages_options: Iterable[int] = (2, 3, 4),
                      ) -> list[TilingConfig]:
    """Enumerate the legal configuration space for autotuning."""
    out: list[TilingConfig] = []
    for mb in (32, 64, 128, 256):
        for nb in (32, 64, 128, 256):
            for kb in {shape.k, shape.k * 2}:
                if subrow_v is not None and (kb > subrow_v
                                             or subrow_v % kb):
                    continue
                for mw in (16, 32, 64, 128):
                    for nw in (16, 32, 64, 128):
                        if mb % mw or nb % nw:
                            continue
                        for stages in stages_options:
                            cfg = TilingConfig(mb=mb, nb=nb, kb=kb,
                                               mw=mw, nw=nw, stages=stages)
                            try:
                                cfg.validate(shape, spec,
                                             subrow_v=subrow_v)
                            except TilingError:
                                continue
                            out.append(cfg)
    return out


def autotune(configs: Iterable[TilingConfig],
             cost_fn: Callable[[TilingConfig], float]) -> TilingConfig:
    """Exhaustive search: return the config minimising ``cost_fn``.

    ``cost_fn`` should return simulated seconds; raises
    :class:`TilingError` when no candidate is provided.
    """
    best: TilingConfig | None = None
    best_cost = math.inf
    for cfg in configs:
        cost = cost_fn(cfg)
        if cost < best_cost:
            best, best_cost = cfg, cost
    if best is None:
        raise TilingError("autotune received no legal configurations")
    return best
