"""cuSPARSELt baseline: 2:4 sparse-weight x dense-input on SpTC.

NVIDIA's vendor library for hardware 2:4 sparsity.  Strengths and
weaknesses both appear in the paper's data: it wins on large aligned
shapes (it reads half the A bytes and issues ``mma.sp`` at double rate)
but loses to cuBLAS on the irregular shapes of real MoE experts because
its fixed tile menu pads aggressively and its dispatcher adds overhead —
which is how the paper's realistic benchmark shows Samoyeds 3.95x over
cuBLAS but 4.29x over cuSPARSELt.
"""

from __future__ import annotations

import math

import numpy as np

from repro.formats.twofour import TwoFourMatrix
from repro.hw.memory import AccessPattern, dram_bytes
from repro.hw.spec import GPUSpec
from repro.hw.tensorcore import SAMOYEDS_MMA, MmaShape, require_sparse_alu
from repro.kernels.base import GemmProblem, MatmulKernel
from repro.kernels.tiling import TilingConfig


def cusparselt_spmm(weight: TwoFourMatrix, dense_rhs: np.ndarray
                    ) -> np.ndarray:
    """Functional 2:4 sparse x dense product (decode + matmul)."""
    return weight.matmul(dense_rhs)


class CuSparseLtKernel(MatmulKernel):
    """Cost model of cuSPARSELt's 2:4 SpMM."""

    name = "cusparselt"
    #: Library sustains ~60% of the sparse roofline: 2:4 metadata decode
    #: shares the mma pipe and the fixed kernel menu rarely fits exactly.
    EFFICIENCY = 0.60
    PIPELINE_STAGES = 3
    #: Library dispatch + algorithm selection overhead per call.
    LAUNCH_OVERHEAD_S = 9.0e-6
    A_DENSITY = 0.5
    SPARSITY_FORMAT = "2:4"
    #: Internal shape quantum: dimensions are padded to multiples of this.
    PAD_QUANTUM = 256

    def mma_shape(self) -> MmaShape:
        return SAMOYEDS_MMA

    def default_config(self, problem: GemmProblem,
                       spec: GPUSpec) -> TilingConfig:
        require_sparse_alu(spec)
        return super().default_config(problem, spec)

    def compute_cycles_per_iter(self, cfg: TilingConfig,
                                spec: GPUSpec) -> float:
        # mma.sp covers the full logical kb while reading half the data,
        # i.e. double throughput on the A-side zeros.
        flops = 2.0 * cfg.mb * cfg.nb * cfg.kb
        return flops / (spec.tc_flops_per_sm_cycle * spec.sparse_tc_speedup)

    def a_bytes_per_iter(self, cfg: TilingConfig, spec: GPUSpec) -> float:
        values_bytes = dram_bytes(
            AccessPattern(rows=cfg.mb, row_bytes=cfg.kb), spec)  # kb/2 * 2B
        metadata_bytes = dram_bytes(
            AccessPattern(rows=1, row_bytes=max(cfg.mb * cfg.kb // 8, 1),
                          contiguous=True), spec)
        return values_bytes + metadata_bytes

    def cost(self, m: int, k: int, n: int, spec: GPUSpec,
             cfg: TilingConfig | None = None):
        """Pad dimensions to the library's internal quantum first."""
        require_sparse_alu(spec)
        q = self.PAD_QUANTUM
        padded_m = math.ceil(m / q) * q
        padded_n = math.ceil(n / q) * q
        result = super().cost(padded_m, k, padded_n, spec, cfg)
        # Report throughput against the *useful* problem, as the paper does.
        true_flops = 2.0 * m * k * n
        return type(result)(
            **{**result.__dict__, "flops": true_flops})


CUSPARSELT = CuSparseLtKernel()
