"""Device-aware autotuner with §6.6 adaptation rules.

The paper tunes the Samoyeds kernel per device by hand (Table 6 distils
two rules: shrink tiles on SM-rich/L2-poor parts, deepen the pipeline on
bandwidth-rich/TC-slow parts).  This module turns that workflow into
code:

* :func:`tune` — exhaustive search over the legal configuration space
  for one (kernel, problem, device), with an in-process cache;
* :func:`adapted_config` — apply the Table-6 rules to a config tuned on
  a different device, without a full re-search;
* :class:`TuningTable` — a persistent map from (device, problem bucket)
  to the best configuration, the artifact a deployment would ship.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import ConfigError, TilingError
from repro.hw.spec import GPUSpec
from repro.kernels.base import GemmProblem, MatmulKernel
from repro.kernels.tiling import TilingConfig, autotune, candidate_configs
from repro.utils.persist import (
    load_versioned_json,
    merge_versioned_json,
    save_versioned_json,
)


def problem_bucket(m: int, k: int, n: int) -> tuple[int, int, int]:
    """Round a problem to its power-of-two bucket (tuning-table key)."""
    def bucket(x: int) -> int:
        return 1 << max(0, math.ceil(math.log2(max(x, 1))))
    return bucket(m), bucket(k), bucket(n)


@dataclass
class TuneResult:
    """Outcome of one tuning search."""

    config: TilingConfig
    seconds: float
    candidates: int
    heuristic_seconds: float

    @property
    def gain_over_heuristic(self) -> float:
        return self.heuristic_seconds / self.seconds


_CACHE: dict[tuple, TuneResult] = {}


def tune(kernel: MatmulKernel, m: int, k: int, n: int, spec: GPUSpec,
         subrow_v: int | None = None,
         use_cache: bool = True) -> TuneResult:
    """Exhaustive tuning of ``kernel`` for one problem on one device."""
    key = (kernel.name, spec.name, problem_bucket(m, k, n), subrow_v)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    shape = kernel.mma_shape()
    candidates = candidate_configs(shape, spec, subrow_v=subrow_v)
    if not candidates:
        raise TilingError(
            f"no legal configurations for {kernel.name} on {spec.name}")
    best = autotune(candidates,
                    lambda cfg: kernel.cost(m, k, n, spec, cfg=cfg).time_s)
    tuned_s = kernel.cost(m, k, n, spec, cfg=best).time_s
    heuristic_s = kernel.cost(m, k, n, spec).time_s
    result = TuneResult(config=best, seconds=tuned_s,
                        candidates=len(candidates),
                        heuristic_seconds=heuristic_s)
    if use_cache:
        _CACHE[key] = result
    return result


def clear_cache() -> None:
    """Drop all memoised tuning results (tests use this)."""
    _CACHE.clear()


def adapted_config(cfg: TilingConfig, native: GPUSpec,
                   target: GPUSpec) -> TilingConfig:
    """Apply the Table-6 rules when moving ``cfg`` between devices.

    * Target has more SMs and/or less L2 than the native device ->
      halve the output tiles (more parallelism, smaller L2 footprint).
    * Target is relatively memory-rich / TC-slow -> one more pipeline
      stage to smooth the fetch/compute imbalance.
    """
    out = cfg
    sm_ratio = target.sm_count / native.sm_count
    l2_ratio = target.l2_bytes / native.l2_bytes
    if sm_ratio > 1.2 or l2_ratio < 0.9:
        out = out.scaled(mb=max(32, out.mb // 2),
                         nb=max(32, out.nb // 2),
                         mw=max(16, out.mw // 2),
                         nw=max(16, out.nw // 2))
    native_balance = native.dram_bandwidth / native.dense_tc_flops
    target_balance = target.dram_bandwidth / target.dense_tc_flops
    if target_balance > native_balance * 1.2:
        out = out.scaled(stages=min(out.stages + 1, 5))
    return out


@dataclass
class TuningTable:
    """Persistent (device, bucket) -> config map.

    Serialises to JSON so a deployment can ship pre-tuned tables, the
    way vendor libraries ship per-architecture kernel selections.  The
    payload carries a schema ``version`` field; :meth:`load` raises
    :class:`~repro.errors.ConfigError` naming the path on unreadable,
    corrupt or schema-drifted files instead of surfacing raw
    ``json``/``KeyError`` tracebacks (version-less legacy payloads —
    a bare entries mapping — are still accepted).
    """

    VERSION = 1

    entries: dict[str, dict] = field(default_factory=dict)

    @staticmethod
    def _key(device: str, bucket: tuple[int, int, int]) -> str:
        return f"{device}:{bucket[0]}x{bucket[1]}x{bucket[2]}"

    def record(self, device: str, m: int, k: int, n: int,
               config: TilingConfig) -> None:
        self.entries[self._key(device, problem_bucket(m, k, n))] = \
            asdict(config)

    def lookup(self, device: str, m: int, k: int, n: int
               ) -> TilingConfig | None:
        raw = self.entries.get(self._key(device, problem_bucket(m, k, n)))
        if raw is None:
            return None
        try:
            return TilingConfig(**raw)
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                f"tuning-table entry for {self._key(device, problem_bucket(m, k, n))} "
                f"does not describe a TilingConfig: {exc}") from None

    def save(self, path: str | Path) -> None:
        save_versioned_json(path, "tuning table", self.VERSION,
                            self.entries)

    def merge_save(self, path: str | Path) -> None:
        """Merge this table's entries into the file at ``path``.

        Same load-modify-merge + atomic-replace contract as
        :meth:`~repro.registry.selector.SelectionTable.merge_save`,
        so concurrently tuned devices/buckets accumulate in one shared
        artifact.  The in-memory table adopts the merged view.
        """
        self.entries = dict(merge_versioned_json(
            path, "tuning table", self.VERSION, self.entries,
            allow_legacy=True))

    @classmethod
    def load(cls, path: str | Path) -> "TuningTable":
        """Load a saved table; failures raise :class:`ConfigError`.

        Version-less legacy payloads (a bare entries mapping, the
        pre-schema format) are still accepted.
        """
        return cls(entries=load_versioned_json(
            path, "tuning table", cls.VERSION, allow_legacy=True))

    def __len__(self) -> int:
        return len(self.entries)
