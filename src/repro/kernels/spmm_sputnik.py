"""Sputnik baseline: unstructured CSR SpMM on CUDA cores.

Sputnik (Gale et al., SC'20) is the leading open-source unstructured
sparse kernel for deep learning.  Its handicaps at LLM sparsity ratios
(50-90%) are exactly the ones §3.2 lists: no tensor cores (SIMT FMA
throughput only), per-nonzero index decode, scattered B-row gathers that
defeat coalescing and the L2, row-length load imbalance, and no
``cp.async`` pipeline — the model charges each of these explicitly, which
is why it lands 18-33x behind Samoyeds just as the paper measures.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CsrMatrix
from repro.hw.memory import AccessPattern, dram_bytes
from repro.hw.spec import GPUSpec
from repro.hw.tensorcore import MmaShape
from repro.kernels.base import GemmProblem, MatmulKernel
from repro.kernels.tiling import TilingConfig


def sputnik_spmm(weight: CsrMatrix, dense_rhs: np.ndarray) -> np.ndarray:
    """Functional unstructured SpMM (row-gather reference)."""
    return weight.matmul(dense_rhs)


def row_imbalance_factor(weight: CsrMatrix) -> float:
    """Warp-level load imbalance: max/mean non-zeros per row (capped)."""
    row_nnz = weight.row_nnz()
    mean = float(row_nnz.mean()) if row_nnz.size else 0.0
    if mean <= 0:
        return 1.0
    return float(min(2.0, row_nnz.max() / mean))


class SputnikKernel(MatmulKernel):
    """Cost model of Sputnik's CSR SpMM."""

    name = "sputnik"
    EFFICIENCY = 0.55
    #: Sputnik predates cp.async; fetch and compute serialise.
    PIPELINE_STAGES = 1
    A_DENSITY = 0.25          # evaluated at the paper's 75% sparsity
    SPARSITY_FORMAT = "csr"
    USES_TENSOR_CORES = False
    #: Extra SIMT cycles per non-zero for index decode and address math.
    DECODE_CYCLES_PER_NNZ = 2.0
    #: Random gathers defeat stripe reuse; rows arrive uncoalesced.
    GATHER_AMPLIFICATION = 1.5
    #: Static imbalance factor for the synthetic (uniform) workloads.
    IMBALANCE = 1.3

    def __init__(self, density: float = 0.25) -> None:
        self.density = density

    def mma_shape(self) -> MmaShape:
        # SIMT kernel: no tensor-core instruction; return the dense shape
        # only to satisfy tiling legality for grid arithmetic.
        from repro.hw.tensorcore import BASELINE_MMA
        return BASELINE_MMA

    def compute_cycles_per_iter(self, cfg: TilingConfig,
                                spec: GPUSpec) -> float:
        nnz = cfg.mb * cfg.kb * self.density
        fma_flops = 2.0 * nnz * cfg.nb
        fma_cycles = fma_flops / spec.cuda_core_flops_per_sm_cycle
        decode = nnz * self.DECODE_CYCLES_PER_NNZ
        return (fma_cycles + decode) * self.IMBALANCE

    def a_bytes_per_iter(self, cfg: TilingConfig, spec: GPUSpec) -> float:
        # values (2B) + column indices (4B) per non-zero, CSR-contiguous.
        nnz = cfg.mb * cfg.kb * self.density
        return dram_bytes(
            AccessPattern(rows=1, row_bytes=max(int(nnz * 6), 1),
                          contiguous=True), spec)

    def b_bytes_per_iter(self, cfg: TilingConfig, spec: GPUSpec) -> float:
        # every referenced B row is gathered individually, no cp.async,
        # poor sector utilisation.
        base_bytes = dram_bytes(
            AccessPattern(rows=cfg.kb, row_bytes=cfg.nb * 2), spec)
        return base_bytes * self.GATHER_AMPLIFICATION

    def cache_stripes(self, problem: GemmProblem, cfg: TilingConfig
                      ) -> tuple[float, float]:
        # Scattered accesses get no deterministic stripe reuse in L2.
        del problem, cfg
        return 0.0, 0.0

    def smem_cycles_per_iter(self, cfg: TilingConfig,
                             spec: GPUSpec) -> float:
        # No ldmatrix: scalar lds with 2-way conflicts on the gathers.
        from repro.hw.memory import smem_load_cycles
        frag_bytes = cfg.warps_per_block * (cfg.mw * cfg.kb * self.density
                                            + cfg.kb * cfg.nw) * 2
        return smem_load_cycles(int(frag_bytes), conflict_ways=2, spec=spec)


SPUTNIK = SputnikKernel()
