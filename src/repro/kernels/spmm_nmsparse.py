"""nmSPARSE-class baseline: N:M structured sparsity WITHOUT SpTC.

§3.3 names kernels like BBS and nmSPARSE that exploit balanced N:M
structure for scheduling regularity but "fail to utilize SpTC for
further acceleration".  This kernel models that class: the weight is
2:4-balanced (perfect load balance, coalesced gathers, compile-time
known offsets — all the wins over Sputnik), but the math runs on SIMT
FMA units, which is exactly why Samoyeds' mma.sp path dominates it.

Not part of the default ``KERNELS`` registry (the paper's Figure 12
legend does not include it); exposed for the related-work comparison in
tests and for users exploring the design space.
"""

from __future__ import annotations

import numpy as np

from repro.formats.twofour import TwoFourMatrix
from repro.hw.memory import AccessPattern, dram_bytes, smem_load_cycles
from repro.hw.spec import GPUSpec
from repro.hw.tensorcore import BASELINE_MMA, MmaShape
from repro.kernels.base import MatmulKernel
from repro.kernels.tiling import TilingConfig


def nmsparse_spmm(weight: TwoFourMatrix, dense_rhs: np.ndarray
                  ) -> np.ndarray:
    """Functional N:M sparse x dense product (same math as cuSPARSELt's
    operand; the difference is purely in the execution model)."""
    return weight.matmul(dense_rhs)


class NmSparseKernel(MatmulKernel):
    """Cost model of an nmSPARSE/BBS-class SIMT N:M kernel."""

    name = "nmsparse"
    #: Well-engineered SIMT code: far better than Sputnik's irregular
    #: path, but bounded by FMA throughput.
    EFFICIENCY = 0.75
    PIPELINE_STAGES = 2
    A_DENSITY = 0.5
    SPARSITY_FORMAT = "n:m"
    USES_TENSOR_CORES = False

    def mma_shape(self) -> MmaShape:
        # SIMT kernel; the dense shape only drives tile legality.
        return BASELINE_MMA

    def compute_cycles_per_iter(self, cfg: TilingConfig,
                                spec: GPUSpec) -> float:
        # Only the stored half of the weights is multiplied, on CUDA
        # cores.  The balanced pattern means no imbalance factor and no
        # per-element index decode (offsets are pattern-derived).
        flops = 2.0 * cfg.mb * cfg.nb * cfg.kb * self.A_DENSITY
        return flops / spec.cuda_core_flops_per_sm_cycle

    def a_bytes_per_iter(self, cfg: TilingConfig, spec: GPUSpec) -> float:
        values_bytes = dram_bytes(
            AccessPattern(rows=cfg.mb, row_bytes=cfg.kb), spec)
        metadata_bytes = dram_bytes(
            AccessPattern(rows=1, row_bytes=max(cfg.mb * cfg.kb // 8, 1),
                          contiguous=True), spec)
        return values_bytes + metadata_bytes

    def smem_cycles_per_iter(self, cfg: TilingConfig,
                             spec: GPUSpec) -> float:
        # Vector-wise loads keep shared-memory access conflict-free
        # (nmSPARSE's contribution); traffic is the compressed A plus
        # the B fragments gathered through pattern offsets.
        a_bytes = cfg.warps_per_block * cfg.mw * cfg.kb * 0.5 * 2
        b_bytes = cfg.warps_per_block * cfg.kb * 0.5 * cfg.nw * 2
        return (smem_load_cycles(int(a_bytes), conflict_ways=1, spec=spec)
                + smem_load_cycles(int(b_bytes), conflict_ways=1,
                                   spec=spec))


NMSPARSE = NmSparseKernel()
