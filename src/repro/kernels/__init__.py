"""Matrix-multiplication kernels: the Samoyeds SSMM and all baselines.

Each kernel exposes a functional numpy face (exact math, used in tests and
the MoE engines) and a :class:`~repro.kernels.base.MatmulKernel` cost model
scored by the GPU simulator.  ``KERNELS`` is the registry the benchmark
harness iterates, in the paper's legend order.
"""

from repro.kernels.base import GemmProblem, MatmulKernel
from repro.kernels.tiling import (
    DEFAULT_TILING,
    NARROW_TILING,
    TilingConfig,
    autotune,
    candidate_configs,
    heuristic_config,
)
from repro.kernels.gemm_dense import DENSE_GEMM, DenseGemmKernel, dense_gemm
from repro.kernels.spmm_cusparselt import (
    CUSPARSELT,
    CuSparseLtKernel,
    cusparselt_spmm,
)
from repro.kernels.spmm_nmsparse import (
    NMSPARSE,
    NmSparseKernel,
    nmsparse_spmm,
)
from repro.kernels.spmm_sputnik import SPUTNIK, SputnikKernel, sputnik_spmm
from repro.kernels.spmm_venom import VENOM, VenomKernel, venom_spmm
from repro.kernels.ssmm_samoyeds import (
    SAMOYEDS_KERNEL,
    SamoyedsFeatures,
    SamoyedsKernel,
    samoyeds_ssmm,
    samoyeds_ssmm_tiled,
)
from repro.kernels.stationary import (
    local_memory_spill_cost,
    stationary_register_cost,
)
from repro.kernels.packing import PackingPlan
from repro.kernels.layout import LayoutPlan, layout_speedup
from repro.kernels.fusion import FusionPlan, fused_weighted_accumulate
from repro.kernels.autotuner import TuningTable, adapted_config, tune
from repro.registry.core import Registry

#: Registry in the paper's legend order (Figures 12 and 13).
KERNELS: Registry[MatmulKernel] = Registry("kernel")


def register_kernel(kernel: MatmulKernel,
                    replace: bool = False) -> MatmulKernel:
    """Add ``kernel`` to the registry under its ``name``.

    Collisions raise :class:`~repro.errors.ConfigError` unless
    ``replace=True`` (mirrors :func:`repro.hw.spec.register_gpu`).
    Third-party kernels subclass :class:`~repro.kernels.base.MatmulKernel`,
    declare ``capabilities()`` and register here.
    """
    return KERNELS.register(kernel.name, kernel, replace=replace)


for _kernel in (DENSE_GEMM, SPUTNIK, CUSPARSELT, VENOM, SAMOYEDS_KERNEL):
    register_kernel(_kernel)
del _kernel

__all__ = [
    "GemmProblem",
    "MatmulKernel",
    "TilingConfig",
    "DEFAULT_TILING",
    "NARROW_TILING",
    "autotune",
    "candidate_configs",
    "heuristic_config",
    "DENSE_GEMM",
    "DenseGemmKernel",
    "dense_gemm",
    "CUSPARSELT",
    "CuSparseLtKernel",
    "cusparselt_spmm",
    "NMSPARSE",
    "NmSparseKernel",
    "nmsparse_spmm",
    "SPUTNIK",
    "SputnikKernel",
    "sputnik_spmm",
    "VENOM",
    "VenomKernel",
    "venom_spmm",
    "SAMOYEDS_KERNEL",
    "SamoyedsFeatures",
    "SamoyedsKernel",
    "samoyeds_ssmm",
    "samoyeds_ssmm_tiled",
    "stationary_register_cost",
    "local_memory_spill_cost",
    "PackingPlan",
    "LayoutPlan",
    "layout_speedup",
    "FusionPlan",
    "fused_weighted_accumulate",
    "TuningTable",
    "adapted_config",
    "tune",
    "KERNELS",
    "register_kernel",
]
