"""Warm pre-pass: populate the shared dispatch table before fan-out.

``engine="auto"`` runs price every registered engine once per problem
bucket and memoise the winner in the process-wide
:class:`~repro.registry.selector.SelectionTable`.  A serial sweep pays
that pricing once and every later point hits the memo; a cold process
pool would pay it once *per worker*.  This pre-pass performs the
per-GEMM-bucket selections once in the parent — every power-of-two
token count up to each spec's step token budget, the buckets a serving
run revisits — and merge-saves them to the shared table file workers
pre-load, so the fan-out starts from a populated cache.

Selection is deterministic, so warming is purely a performance
choice: warm or cold, every worker computes identical winners and the
payloads are byte-identical (the golden tests pin this).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError


def warm_tokens(token_budget: int) -> "list[int]":
    """The token counts whose power-of-two buckets cover a budget."""
    tokens = []
    t = 1
    while t <= token_budget:
        tokens.append(t)
        t *= 2
    if not tokens or tokens[-1] < token_budget:
        tokens.append(token_budget)        # the final partial bucket
    return tokens


def warm_selection_table(specs: Sequence, path: "str | None" = None
                         ) -> int:
    """Price the selections ``specs`` will need, once, in this process.

    Only ``engine="auto"`` specs contribute; each distinct
    (model, gpu, token-budget) combination is priced at every
    power-of-two token count up to the budget, recording the winners
    in the process-wide table.  With ``path`` given, the accumulated
    entries are atomically merge-saved there for workers to pre-load.
    Per-point selection failures are skipped — an infeasible point
    reports its own error when it runs.  Returns the number of
    entries in the warm table.
    """
    from repro.hw.spec import get_gpu
    from repro.moe.config import MODEL_REGISTRY
    from repro.registry.selector import AUTO_ENGINE

    seen = set()
    for spec in specs:
        if spec.model.engine != "auto":
            continue
        key = (spec.model.name, spec.hardware.gpu,
               spec.serving.token_budget)
        if key in seen:
            continue
        seen.add(key)
        try:
            config = MODEL_REGISTRY.get(spec.model.name)
            gpu = get_gpu(spec.hardware.gpu)
        except ReproError:
            continue
        for tokens in warm_tokens(spec.serving.token_budget):
            try:
                AUTO_ENGINE.select(config, tokens, gpu)
            except ReproError:
                continue
    if path is not None and AUTO_ENGINE.table.entries:
        AUTO_ENGINE.table.merge_save(path)
    return len(AUTO_ENGINE.table.entries)
