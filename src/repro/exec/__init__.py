"""Parallel experiment execution: process-pool sweeps.

Multi-point workloads — ``repro bench run config.yaml`` sweep grids,
``repro bench scale`` device sweeps, the Fig 12/13/16-style capacity
grids — are embarrassingly parallel: every point prices
deterministically from its own :class:`~repro.api.spec.DeploymentSpec`
and seed.  This package fans them over a ``spawn``-safe process pool:

* :class:`~repro.exec.worker.PointJob` /
  :class:`~repro.exec.worker.PointResult` — the plain-dict wire forms
  crossing the process boundary (spec dict in, ``ServeReport``
  payload out);
* :func:`~repro.exec.worker.run_point` — the worker entry: rebuild
  the spec, pre-load the shared dispatch table, run, merge new
  selector entries back (atomic merge-on-write);
* :class:`~repro.exec.pool.PointRunner` — the executor: deterministic
  index-ordered results, per-point fault containment, a progress
  callback per completed point;
* :func:`~repro.exec.warm.warm_selection_table` — the optional
  pre-pass that prices ``engine="auto"`` selections once in the
  parent so workers start from a populated cache.

Determinism contract: serial and parallel runs of the same grid
produce byte-identical payloads — warm or cold caches only change
*when* a winner is computed, never *which* winner wins.  The CLI
exposes the pool as ``--jobs N`` on ``repro bench run`` and ``repro
bench scale``; ``repro bench sweepbench`` measures the speedup into
``BENCH_sweep.json``.
"""

from repro.exec.pool import PointRunner, ProgressFn
from repro.exec.warm import warm_selection_table, warm_tokens
from repro.exec.worker import PointJob, PointResult, run_point

__all__ = [
    "PointJob",
    "PointResult",
    "PointRunner",
    "ProgressFn",
    "run_point",
    "warm_selection_table",
    "warm_tokens",
]
