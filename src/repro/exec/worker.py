"""Spawn-safe worker entry of the parallel experiment executor.

A sweep point crosses the process boundary as a :class:`PointJob`
carrying the :class:`~repro.api.spec.DeploymentSpec` in its plain-dict
form (specs round-trip exactly through ``to_dict``/``from_dict``, so
the worker rebuilds a value-identical deployment) and comes back as a
:class:`PointResult` carrying the ``ServeReport.to_dict()`` payload —
plain types end to end, picklable under any start method, importable
by a ``spawn`` child without side effects beyond the normal
:mod:`repro` import.

Failure semantics mirror the serial sweep loop where they can and
contain what the serial loop cannot:

* a :class:`~repro.errors.ReproError` (infeasible point — OOM, an
  unplaceable expert grid, a config the engine rejects) becomes an
  ``error`` result, exactly the entry the serial ``repro bench run``
  loop records;
* any *other* exception marks the result ``crashed`` — the point is
  lost, every other point is unaffected (serially this would abort
  the whole sweep);
* shared-table I/O failures are swallowed: the warm dispatch table is
  a cache, and a cache miss must never fail a point.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass(frozen=True)
class PointJob:
    """One sweep point, in wire form.

    Attributes:
        index: Position of the point in the sweep grid; results are
            reassembled by this key, never by completion order.
        spec: ``DeploymentSpec.to_dict()`` payload.
        label: Human-readable point label for progress lines.
        table_path: Optional shared :class:`SelectionTable` file the
            worker pre-loads before pricing and merges its new
            entries back into afterwards (atomic merge-on-write).
    """

    index: int
    spec: dict
    label: str = ""
    table_path: "str | None" = None


@dataclass(frozen=True)
class PointResult:
    """Outcome of one sweep point.

    Exactly one of ``report`` / ``error`` is set.  ``crashed``
    distinguishes a contained non-:class:`~repro.errors.ReproError`
    failure (a bug, not an infeasible point) from the modelled
    ``error`` case.  ``table_entries`` carries the selection-table
    entries this run recorded, so the parent can warm its own
    dispatcher without re-reading the shared file.
    """

    index: int
    label: str = ""
    report: "dict | None" = None
    error: "str | None" = None
    crashed: bool = False
    table_entries: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


def _preload_table(table_path: str) -> None:
    """Adopt warm entries from the shared table file.

    Entries already present in this process (a pool worker serves many
    points) win over the file's — they are fresher, and identical
    anyway because selection is deterministic.  A missing or corrupt
    file is a cache miss, not an error.
    """
    from repro.registry.selector import AUTO_ENGINE, SelectionTable

    if not os.path.exists(table_path):
        return
    try:
        warm = SelectionTable.load(table_path)
    except ReproError:
        return
    table = AUTO_ENGINE.table
    for key, entry in warm.entries.items():
        table.entries.setdefault(key, entry)


def _publish_table(table_path: str, new_entries: dict) -> None:
    """Merge this point's new selection entries into the shared file.

    Atomic merge-on-write (see
    :meth:`~repro.registry.selector.SelectionTable.merge_save`), so
    concurrent workers accumulate entries instead of clobbering each
    other.  I/O failures are swallowed: the table is a cache.
    """
    from repro.registry.selector import SelectionTable

    try:
        SelectionTable(dict(new_entries)).merge_save(table_path)
    except (ReproError, OSError):
        pass


def run_point(job: PointJob) -> PointResult:
    """Execute one sweep point in this process (the pool's entry).

    Rebuilds the spec, optionally pre-loads the shared dispatch table,
    runs the deployment, and returns the report payload plus whatever
    selection-table entries the run recorded.
    """
    from repro.api.deployment import Deployment
    from repro.registry.selector import AUTO_ENGINE

    table = AUTO_ENGINE.table
    try:
        deployment = Deployment.from_dict(job.spec)
        if job.table_path is not None:
            _preload_table(job.table_path)
        before = set(table.entries)
        report = deployment.run()
    except ReproError as exc:
        return PointResult(index=job.index, label=job.label,
                           error=str(exc))
    except Exception as exc:  # crash containment: fail only this point
        return PointResult(
            index=job.index, label=job.label, crashed=True,
            error=f"worker crashed: {type(exc).__name__}: {exc}")
    new_entries = {key: value for key, value in table.entries.items()
                   if key not in before}
    if new_entries and job.table_path is not None:
        _publish_table(job.table_path, new_entries)
    return PointResult(index=job.index, label=job.label,
                       report=report.to_dict(),
                       table_entries=new_entries)
