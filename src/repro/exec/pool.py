"""The :class:`PointRunner` process pool.

Sweep points are embarrassingly parallel — every
:class:`~repro.api.spec.DeploymentSpec` prices deterministically from
its own seed, with no shared mutable state beyond the dispatch-table
caches (which :mod:`repro.exec.worker` makes warm-shared and
merge-safe).  ``PointRunner`` fans a list of specs over a
``spawn``-context :class:`~concurrent.futures.ProcessPoolExecutor`
and reassembles the results **by point index**: the returned list is
always in grid order, whatever order workers finish in.

``jobs=1`` (or a single point) runs in-process through the same
:func:`~repro.exec.worker.run_point` entry — the serial timing side
of ``repro bench sweepbench`` and a no-multiprocessing fallback in
one.

Fault containment: an infeasible point surfaces as its ``error``
result (like the serial loop); an unexpected exception inside a
worker is caught there and marks only that point ``crashed``; if the
pool itself breaks (a worker process killed hard), every point whose
future died reports a crash result and the rest of the sweep
continues to completion — the executor never raises out of ``run``
for a per-point failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.exec.worker import PointJob, PointResult, run_point

#: Progress callback: ``(result, completed_so_far, total)``; invoked
#: once per point in *completion* order (the result list itself stays
#: in grid order).
ProgressFn = Callable[[PointResult, int, int], None]


@dataclass
class PointRunner:
    """Execute independent deployment points, optionally in parallel.

    Attributes:
        jobs: Worker process count; ``1`` runs in-process.
        table_path: Optional shared warm dispatch-table file (see
            :func:`repro.exec.warm.warm_selection_table`).
        progress: Optional per-completion callback.
    """

    jobs: int = 1
    table_path: "str | None" = None
    progress: "ProgressFn | None" = None

    def __post_init__(self) -> None:
        if not isinstance(self.jobs, int) or isinstance(self.jobs, bool) \
                or self.jobs < 1:
            raise ConfigError(f"jobs must be a positive integer, "
                              f"got {self.jobs!r}")

    # ------------------------------------------------------------------
    def make_jobs(self, specs: Sequence, labels: "Sequence[str] | None"
                  = None) -> "list[PointJob]":
        """Wire-form jobs for ``specs`` (specs or their dict payloads)."""
        if labels is not None and len(labels) != len(specs):
            raise ConfigError(
                f"{len(labels)} labels for {len(specs)} specs")
        jobs = []
        for index, spec in enumerate(specs):
            payload = spec if isinstance(spec, dict) else spec.to_dict()
            jobs.append(PointJob(
                index=index, spec=payload,
                label=labels[index] if labels is not None else "",
                table_path=self.table_path))
        return jobs

    def run(self, specs: Sequence, labels: "Sequence[str] | None" = None
            ) -> "list[PointResult]":
        """Run every spec; the result list is indexed like ``specs``."""
        jobs = self.make_jobs(specs, labels)
        if not jobs:
            return []
        if self.jobs == 1 or len(jobs) == 1:
            return self._run_serial(jobs)
        return self._run_pool(jobs)

    # ------------------------------------------------------------------
    def _notify(self, result: PointResult, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(result, done, total)

    def _run_serial(self, jobs: "list[PointJob]") -> "list[PointResult]":
        results = []
        for done, job in enumerate(jobs, start=1):
            result = run_point(job)
            results.append(result)
            self._notify(result, done, len(jobs))
        return results

    def _run_pool(self, jobs: "list[PointJob]") -> "list[PointResult]":
        # Imported lazily: the serial path must work on platforms
        # where multiprocessing is restricted.
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor, as_completed

        total = len(jobs)
        results: "list[PointResult | None]" = [None] * total
        context = multiprocessing.get_context("spawn")
        workers = min(self.jobs, total)
        done = 0
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            futures = {pool.submit(run_point, job): job for job in jobs}
            for future in as_completed(futures):
                job = futures[future]
                try:
                    result = future.result()
                except Exception as exc:
                    # The worker process died before returning (or the
                    # pool broke): fail this point, keep the sweep.
                    result = PointResult(
                        index=job.index, label=job.label, crashed=True,
                        error=(f"worker crashed: "
                               f"{type(exc).__name__}: {exc}"))
                results[job.index] = result
                done += 1
                self._notify(result, done, total)
        return [r for r in results if r is not None]
