"""REP003/REP004 — registry and event-object discipline.

REP003 (registry hygiene): every concrete engine/kernel class — one
that subclasses ``MoEEngine``/``MatmulKernel`` or is decorated with
``@ENGINES.register``/``@KERNELS.register`` — must resolve a
``capabilities()`` method (the ``engine="auto"`` selector dispatches on
it), and every concrete *engine* must appear in the memory model's
``WEIGHT_FACTOR`` and ``FIXED_OVERHEAD`` tables (``repro bench
maxbatch`` prices it from those).  Meta engines (``is_meta = True``,
e.g. the auto selector) price through their delegates and are exempt
from the table check.

REP004 (event discipline): every subclass of the calendar's ``Event``
must be a ``@dataclass(frozen=True)``, and no code may write
attributes on a value known to be an event — events are shared payload
on the calendar heap; mutating one corrupts replay determinism.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project, dotted_name
from repro.analysis.rules import LintRule, register_rule

ENGINE_ROOTS = ("MoEEngine",)
KERNEL_ROOTS = ("MatmulKernel",)
REGISTER_DECORATORS = {
    "ENGINES.register": "engine", "KERNELS.register": "kernel",
    "register_engine": "engine", "register_kernel": "kernel",
}
MEMORY_TABLES = ("WEIGHT_FACTOR", "FIXED_OVERHEAD")

EVENT_ROOT = "Event"
#: The calendar's concrete event types, recognised even when the
#: ``Event`` base itself is outside the linted set.
EVENT_TYPE_NAMES = {"Event", "Arrival", "StepComplete", "Preempt",
                    "HorizonExpired"}


def _class_attr_str(cls: ast.ClassDef, attr: str) -> str | None:
    """Value of a ``attr = "literal"`` class-body assignment."""
    for stmt in cls.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        if any(isinstance(t, ast.Name) and t.id == attr for t in targets):
            value = stmt.value
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, str):
                return value.value
    return None


def _class_attr_true(cls: ast.ClassDef, attr: str) -> bool:
    for stmt in cls.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        if any(isinstance(t, ast.Name) and t.id == attr for t in targets):
            value = stmt.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _registered_kind(cls: ast.ClassDef) -> str | None:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name in REGISTER_DECORATORS:
            return REGISTER_DECORATORS[name]
    return None


@register_rule
class RegistryHygiene(LintRule):
    code = "REP003"
    summary = ("registered engines/kernels declare capabilities() and "
               "a memory-model entry")

    def check(self, module: ModuleInfo,
              project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node, project))
        return findings

    def _check_class(self, module: ModuleInfo, cls: ast.ClassDef,
                     project: Project) -> list[Finding]:
        ancestry = project.ancestry(cls)
        kind = _registered_kind(cls)
        if kind is None:
            if any(root in ancestry for root in ENGINE_ROOTS):
                kind = "engine"
            elif any(root in ancestry for root in KERNEL_ROOTS):
                kind = "kernel"
        if kind is None:
            return []
        if _class_attr_true(cls, "abstract") or self._is_base(cls, project):
            return []

        findings: list[Finding] = []
        has_caps = project.resolves_method(cls, "capabilities")
        if has_caps is False:
            findings.append(self.finding(
                module, cls,
                f"{kind} class `{cls.name}` does not declare (or "
                "inherit) capabilities(); the auto selector and "
                "compatibility gates require it"))

        if kind == "engine" and not _class_attr_true(cls, "is_meta"):
            name = _class_attr_str(cls, "name")
            if name is not None:
                for table in MEMORY_TABLES:
                    keys = project.dict_literal_keys(table)
                    if keys is not None and name not in keys:
                        findings.append(self.finding(
                            module, cls,
                            f"engine `{name}` has no entry in the "
                            f"memory model's {table} table; maxbatch/"
                            "admission cannot price it"))
        return findings

    @staticmethod
    def _is_base(cls: ast.ClassDef, project: Project) -> bool:
        """Abstract intermediates (someone's base class) are exempt —
        only leaf classes get registered."""
        for _module, other in project.class_index.values():
            if other is cls:
                continue
            if cls.name in project.base_names(other):
                return True
        return False


@register_rule
class EventDiscipline(LintRule):
    code = "REP004"
    summary = "event types are frozen dataclasses and never mutated"

    def check(self, module: ModuleInfo,
              project: Project) -> list[Finding]:
        findings: list[Finding] = []
        event_names = self._event_class_names(project)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) \
                    and self._is_event_class(node, project):
                findings.extend(self._check_frozen(module, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(
                    self._check_mutations(module, node, event_names))
        return findings

    # -- class shape -----------------------------------------------------
    @staticmethod
    def _is_event_class(cls: ast.ClassDef, project: Project) -> bool:
        if cls.name == EVENT_ROOT:
            return True
        ancestry = project.ancestry(cls)
        return EVENT_ROOT in ancestry \
            or bool(ancestry & (EVENT_TYPE_NAMES - {EVENT_ROOT}))

    def _check_frozen(self, module: ModuleInfo,
                      cls: ast.ClassDef) -> list[Finding]:
        for deco in cls.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if dotted_name(target) in ("dataclass", "dataclasses.dataclass"):
                if isinstance(deco, ast.Call):
                    for kw in deco.keywords:
                        if kw.arg == "frozen" \
                                and isinstance(kw.value, ast.Constant) \
                                and kw.value.value is True:
                            return []
                return [self.finding(
                    module, cls,
                    f"event type `{cls.name}` must be declared "
                    "@dataclass(frozen=True); events are shared "
                    "calendar payload")]
        return [self.finding(
            module, cls,
            f"event type `{cls.name}` is not a frozen dataclass; "
            "declare it @dataclass(frozen=True)")]

    # -- mutation sites --------------------------------------------------
    def _event_class_names(self, project: Project) -> set[str]:
        names = set(EVENT_TYPE_NAMES)
        for name, (_module, cls) in project.class_index.items():
            if self._is_event_class(cls, project):
                names.add(name)
        return names

    def _check_mutations(self, module: ModuleInfo,
                         func: "ast.FunctionDef | ast.AsyncFunctionDef",
                         event_names: set[str]) -> list[Finding]:
        event_vars: set[str] = set()
        for arg in (*func.args.posonlyargs, *func.args.args,
                    *func.args.kwonlyargs):
            annotation = arg.annotation
            if annotation is not None:
                name = dotted_name(annotation)
                if name and name.rsplit(".", 1)[-1] in event_names:
                    event_vars.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, ast.Call):
                    called = dotted_name(value.func)
                    if called \
                            and called.rsplit(".", 1)[-1] in event_names:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                event_vars.add(target.id)
        if not event_vars:
            return []
        findings: list[Finding] = []
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in event_vars:
                        findings.append(self.finding(
                            module, node,
                            f"attribute write to event "
                            f"`{target.value.id}.{target.attr}`; events "
                            "are frozen — build a new event instead"))
        return findings
