"""``repro lint`` — run the static invariant checker.

Usage::

    repro lint src/                      # whole tree, default rules
    repro lint src/repro/serve --select REP001,REP005
    repro lint src/ --format json        # machine-readable output
    repro lint src/ --write-baseline     # grandfather current findings

Exit codes: 0 clean (or baseline-covered), 1 findings, 2 usage error.

The baseline (``lint-baseline.json`` at the invocation root by
default) suppresses grandfathered findings by ``(rule, path, message)``
— see DESIGN.md "Static analysis & sim-sanitizer" for the workflow.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.engine import (DEFAULT_BASELINE, LintEngine,
                                   load_baseline, write_baseline)
from repro.analysis.rules import RULES
from repro.errors import ConfigError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static invariant checker for the repro codebase.")
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE} if present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings as the new baseline and exit 0")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit")
    return parser


def _resolve_baseline(args: argparse.Namespace) -> "Path | None":
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE)
    return default if default.is_file() else None


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in RULES.names():
            print(f"{code}  {RULES.get(code).summary}")
        return 0

    select = None
    if args.select is not None:
        select = [code.strip() for code in args.select.split(",")
                  if code.strip()]

    try:
        engine = LintEngine(select=select)
    except ConfigError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline(args)
    try:
        baseline = (load_baseline(baseline_path)
                    if baseline_path is not None else None)
        result = engine.run(args.paths, baseline=baseline)
    except ConfigError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = Path(args.baseline) if args.baseline is not None \
            else Path(DEFAULT_BASELINE)
        count = write_baseline(result.findings, target)
        print(f"wrote {count} baseline entr"
              f"{'y' if count == 1 else 'ies'} to {target}")
        return 0

    if args.format == "json":
        payload = {
            "version": 1,
            "files": result.files,
            "rules": result.rules,
            "findings": [f.to_dict() for f in result.new],
            "baselined": result.baselined,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in result.new:
            print(finding.format())
        summary = (f"{len(result.new)} finding"
                   f"{'' if len(result.new) == 1 else 's'} "
                   f"({result.baselined} baselined) across "
                   f"{result.files} files")
        print(summary)
        for key in result.stale_baseline:
            print(f"note: stale baseline entry {key[0]} {key[1]}: "
                  f"{key[2]}", file=sys.stderr)
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
