"""REP001 — determinism discipline.

The simulator's core contract is that a fixed seed reproduces a run
bit for bit (the golden tests pin JSON byte-identity).  Three things
break that silently:

* **wall-clock reads** (``time.time``, ``datetime.now`` …) leaking
  into model code — model time must come from the event calendar's
  clock.  The ``bench/`` harness is exempt: measuring *real* elapsed
  time is its job.
* **unseeded / global RNG** — ``np.random.default_rng()`` with no
  seed, the global ``np.random.*`` state, or the stdlib ``random``
  module.  All randomness flows through ``utils/rng.py`` so one seed
  governs a run.
* **float accumulation over set iteration** in pricing paths — set
  order is salted per process, so ``sum`` over a set of floats can
  differ between runs even with equal elements.  (Dict iteration is
  fine: insertion order is defined.)
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project, dotted_name
from repro.analysis.rules import LintRule, register_rule

#: Call chains that read the wall clock.
WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "date.today",
}

#: Directories whose job is measuring real elapsed time.
TIMER_EXEMPT_DIRS = ("bench",)

#: The one module allowed to construct numpy generators.
RNG_HOME = "utils/rng.py"

#: Pricing-path directories where set-order float accumulation is
#: checked (the paths whose sums end up in golden-pinned reports).
PRICING_DIRS = ("serve", "models", "moe", "kernels", "hw")


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically-recognisable set: display, comprehension, or a
    direct ``set(...)`` / ``frozenset(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register_rule
class Determinism(LintRule):
    code = "REP001"
    summary = ("no wall clock, unseeded/global RNG, or set-order "
               "float accumulation in model code")

    def check(self, module: ModuleInfo,
              project: Project) -> list[Finding]:
        findings: list[Finding] = []
        timers_ok = module.in_dir(*TIMER_EXEMPT_DIRS)
        rng_home = module.matches(RNG_HOME)
        pricing = module.in_dir(*PRICING_DIRS)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(
                    module, node, timers_ok=timers_ok, rng_home=rng_home))
                if pricing:
                    findings.extend(self._check_set_sum(module, node))
            elif isinstance(node, (ast.Import, ast.ImportFrom)) \
                    and not rng_home:
                findings.extend(self._check_import(module, node))
            elif pricing and isinstance(node, ast.For):
                findings.extend(self._check_set_loop(module, node))
        return findings

    # -- wall clock + RNG ------------------------------------------------
    def _check_call(self, module: ModuleInfo, node: ast.Call, *,
                    timers_ok: bool, rng_home: bool) -> list[Finding]:
        chain = dotted_name(node.func)
        if chain is None:
            return []
        if not timers_ok and chain in WALL_CLOCK:
            return [self.finding(
                module, node,
                f"wall-clock call `{chain}()` breaks simulation "
                "determinism; model time comes from the event clock "
                "(bench/ harness code is exempt)")]
        if rng_home:
            return []
        if chain.endswith("random.default_rng"):
            return [self.finding(
                module, node,
                "construct RNGs via repro.utils.rng.new_rng so one "
                "seed governs the whole run"
                + ("" if node.args or node.keywords
                   else " (this call is also unseeded)"))]
        root, _, rest = chain.partition(".")
        if root in ("np", "numpy") and rest.startswith("random.") \
                and rest.count(".") >= 1 \
                and rest.split(".")[1] not in ("default_rng", "Generator",
                                               "SeedSequence"):
            return [self.finding(
                module, node,
                f"`{chain}()` uses numpy's *global* RNG state; draw "
                "from a generator made by repro.utils.rng.new_rng")]
        if root == "random" and rest and "." not in rest:
            return [self.finding(
                module, node,
                f"`{chain}()` uses the stdlib global RNG; draw from a "
                "generator made by repro.utils.rng.new_rng")]
        return []

    def _check_import(self, module: ModuleInfo,
                      node: "ast.Import | ast.ImportFrom") -> list[Finding]:
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        else:
            names = [node.module or ""]
        if "random" in names:
            return [self.finding(
                module, node,
                "stdlib `random` is process-global state; use "
                "repro.utils.rng.new_rng (allowed only in utils/rng.py)")]
        return []

    # -- set-order accumulation ------------------------------------------
    def _check_set_sum(self, module: ModuleInfo,
                       node: ast.Call) -> list[Finding]:
        if dotted_name(node.func) not in ("sum", "math.fsum"):
            return []
        if not node.args:
            return []
        arg = node.args[0]
        over_set = _is_set_expr(arg)
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)) \
                and arg.generators \
                and _is_set_expr(arg.generators[0].iter):
            over_set = True
        if over_set:
            return [self.finding(
                module, node,
                "float accumulation over a set iterates in salted hash "
                "order; sum over a sorted sequence instead")]
        return []

    def _check_set_loop(self, module: ModuleInfo,
                        node: ast.For) -> list[Finding]:
        if not _is_set_expr(node.iter):
            return []
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.AugAssign) \
                    and isinstance(stmt.op, (ast.Add, ast.Sub)):
                return [self.finding(
                    module, node,
                    "accumulating over set iteration is salted-hash "
                    "ordered; iterate a sorted sequence instead")]
        return []
