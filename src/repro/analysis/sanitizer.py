"""Sim-sanitizer: opt-in runtime invariant checks for the serving core.

The static rules (REP001–REP006) catch invariant violations that are
visible in the *source*; this module catches the ones only visible in
a *running* simulation — the way ASan/TSan complement a compiler's
warnings.  Wrappers around the three stateful cores of the simulator
check, on every operation:

* **event calendar** (:class:`SanitizedEventQueue` /
  :class:`SanitizedEventManager`) — heap pops never go backwards in
  ``(when, kind, rid)`` order and the clock never decreases;
* **memory ledgers** (:class:`SanitizedLedger` /
  :class:`SanitizedDeviceLedgers`) — block/byte conservation
  (allocated == live + freed, never negative), no double admission,
  no growth or release of a non-resident request, and all-or-nothing
  admission/growth across a device grid;
* **step pricer** (:class:`SanitizedStepPricer`) — memo purity: a
  sampled step is re-priced through a *fresh* memo-less pricer and
  must match the memoised answer within :data:`MEMO_TOL`.

Violations raise :class:`~repro.errors.SanitizerError` carrying the
invariant name and the event/request/step involved, so the failure
points at the source rather than at a drifted downstream percentile.

Enabling: ``REPRO_SANITIZE=1`` in the environment, or
``sanitize=True`` on :func:`repro.serve.engine.simulate` /
:class:`repro.api.DeploymentSpec`.  The wrappers replay the same
arithmetic as the unwrapped classes, so a sanitized run's report is
byte-identical to an unsanitized one (the golden tests pin this).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.errors import CapacityError, SanitizerError
from repro.moe.memory_model import (
    BlockAllocator,
    DeviceLedgers,
    MemoryLedger,
)
from repro.serve.costs import StepPricer
from repro.serve.events import Event, EventManager, EventQueue

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.serve.batcher import StepPlan

#: Absolute tolerance for the memo-purity re-price comparison.
MEMO_TOL = 1e-12

#: Absolute tolerance for byte-conservation comparisons (charges are
#: floats; admission sums are exact, but parallel plans divide).
BYTES_TOL = 1e-6

#: Re-price every Nth priced step by default (1 = every step).
DEFAULT_CHECK_EVERY = 16

_TRUTHY = {"1", "true", "yes", "on"}


def sanitize_enabled(explicit: "bool | None" = None) -> bool:
    """Resolve the sanitize setting: explicit flag wins, else the
    ``REPRO_SANITIZE`` environment variable."""
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


# ----------------------------------------------------------------------
# Event calendar
# ----------------------------------------------------------------------
class SanitizedEventQueue(EventQueue):
    """Event queue that checks heap-pop ordering.

    Every popped event's ``(when, kind, rid)`` key must be >= the
    previously popped key — the determinism contract the golden tests
    rely on.  A violation means the heap invariant was corrupted
    (e.g. an event mutated after push).
    """

    def __init__(self) -> None:
        super().__init__()
        self._last_key: "tuple[float, int, int] | None" = None

    def pop(self) -> Event:
        event = super().pop()
        key = event.sort_key()
        if self._last_key is not None and key < self._last_key:
            raise SanitizerError(
                "heap-pop ordering",
                f"event {type(event).__name__} popped out of order",
                event=type(event).__name__, key=key,
                previous_key=self._last_key, rid=event.rid)
        self._last_key = key
        return event


class SanitizedEventManager(EventManager):
    """Event manager with a sanitized queue and a monotone-clock check."""

    def __init__(self) -> None:
        super().__init__()
        self.queue = SanitizedEventQueue()

    def advance(self) -> bool:
        before = self.clock
        fired = super().advance()
        self._check_clock(before)
        return fired

    def dispatch_due(self) -> bool:
        before = self.clock
        fired = super().dispatch_due()
        self._check_clock(before)
        return fired

    def _check_clock(self, before: float) -> None:
        if self.clock < before:
            raise SanitizerError(
                "clock monotonicity",
                "simulation clock moved backwards",
                clock_before=before, clock_after=self.clock)


# ----------------------------------------------------------------------
# Memory ledgers
# ----------------------------------------------------------------------
class SanitizedLedger:
    """Conservation-checking wrapper around one :class:`MemoryLedger`.

    Reads delegate untouched (``__getattr__``); the three mutators are
    intercepted to track residency and block/byte flows.  Invariants
    checked after every mutation:

    * residency: the inner ledger's ``active_requests`` equals the
      requests admitted and not yet released here — no phantom or
      leaked entries;
    * block conservation (paged): blocks allocated == blocks held +
      blocks freed, and never negative; a failed ``grow`` must charge
      nothing;
    * byte sanity: the charged pool (``reserved_bytes`` −
      ``static_bytes``) is never negative.
    """

    def __init__(self, inner: MemoryLedger) -> None:
        self._inner = inner
        self._resident: set[int] = set()
        self._allocated_blocks = 0
        self._freed_blocks = 0

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    # -- mutators --------------------------------------------------------
    def admit(self, request_id: int, prompt_tokens: int,
              final_seq_len: int) -> None:
        if request_id in self._resident:
            raise SanitizerError(
                "double admission",
                f"request {request_id} admitted while already resident",
                request=request_id)
        self._inner.admit(request_id, prompt_tokens, final_seq_len)
        self._resident.add(request_id)
        self._allocated_blocks += self._held_blocks(request_id)
        self._check("admit", request_id)

    def grow(self, request_id: int, new_tokens: int = 1) -> None:
        if request_id not in self._resident:
            raise SanitizerError(
                "grow before admit",
                f"request {request_id} grew without being resident",
                request=request_id)
        before = self._held_blocks(request_id)
        used_before = self._used_blocks()
        try:
            self._inner.grow(request_id, new_tokens)
        except CapacityError:
            if self._held_blocks(request_id) != before \
                    or self._used_blocks() != used_before:
                raise SanitizerError(
                    "failed growth charged blocks",
                    f"CapacityError on grow of request {request_id} "
                    "left a partial charge",
                    request=request_id, held_before=before,
                    held_after=self._held_blocks(request_id))
            raise
        delta = self._held_blocks(request_id) - before
        if delta < 0:
            raise SanitizerError(
                "block conservation",
                f"grow of request {request_id} shrank its block count",
                request=request_id, delta=delta)
        self._allocated_blocks += delta
        self._check("grow", request_id)

    def release(self, request_id: int) -> None:
        if request_id not in self._resident:
            raise SanitizerError(
                "release of non-resident request",
                f"request {request_id} released twice (or never "
                "admitted)", request=request_id)
        self._freed_blocks += self._held_blocks(request_id)
        self._inner.release(request_id)
        self._resident.discard(request_id)
        self._check("release", request_id)

    # -- invariant checks ------------------------------------------------
    def _held_blocks(self, request_id: int) -> int:
        if isinstance(self._inner, BlockAllocator):
            return self._inner._blocks.get(request_id, 0)
        return 0

    def _used_blocks(self) -> int:
        if isinstance(self._inner, BlockAllocator):
            return self._inner.used_blocks
        return 0

    def _check(self, op: str, request_id: int) -> None:
        inner = self._inner
        if inner.active_requests != len(self._resident):
            raise SanitizerError(
                "residency conservation",
                f"after {op} of request {request_id} the ledger holds "
                f"{inner.active_requests} requests but "
                f"{len(self._resident)} were admitted and not released",
                op=op, request=request_id,
                ledger=inner.active_requests,
                expected=len(self._resident))
        charged_bytes = inner.reserved_bytes - inner.static_bytes
        if charged_bytes < -BYTES_TOL:
            raise SanitizerError(
                "negative charge",
                f"after {op} of request {request_id} the charged pool "
                f"is negative ({charged_bytes:.1f} bytes)",
                op=op, request=request_id, charged_bytes=charged_bytes)
        if isinstance(inner, BlockAllocator):
            live = self._allocated_blocks - self._freed_blocks
            if live < 0 or live != inner.used_blocks:
                raise SanitizerError(
                    "block conservation",
                    f"after {op} of request {request_id}: allocated "
                    f"({self._allocated_blocks}) - freed "
                    f"({self._freed_blocks}) != live "
                    f"({inner.used_blocks})",
                    op=op, request=request_id,
                    allocated=self._allocated_blocks,
                    freed=self._freed_blocks, live=inner.used_blocks)

    def assert_drained(self) -> None:
        """End-of-trace check: every admitted request was released and
        the pool is back to its static charge."""
        inner = self._inner
        if self._resident or inner.active_requests:
            raise SanitizerError(
                "ledger leak",
                f"trace completed with {len(self._resident)} requests "
                "still resident",
                resident=sorted(self._resident),
                ledger=inner.active_requests)
        if self._used_blocks() != 0:
            raise SanitizerError(
                "ledger leak",
                f"trace completed with {self._used_blocks()} blocks "
                "still held", blocks=self._used_blocks())
        charged_bytes = inner.reserved_bytes - inner.static_bytes
        if abs(charged_bytes) > BYTES_TOL:
            raise SanitizerError(
                "ledger leak",
                f"trace completed with {charged_bytes:.1f} bytes still "
                "charged", charged_bytes=charged_bytes)


class SanitizedDeviceLedgers:
    """All-or-nothing checking wrapper around :class:`DeviceLedgers`.

    Each per-device ledger is additionally wrapped in a
    :class:`SanitizedLedger` (so per-device conservation is checked),
    and the composite operations verify the grid contract: an
    admission or growth either lands on *every* device or — when the
    bottleneck raises :class:`CapacityError` — on *none*.
    """

    def __init__(self, inner: DeviceLedgers) -> None:
        self._inner = inner
        inner.ledgers = [SanitizedLedger(led) if
                         not isinstance(led, SanitizedLedger) else led
                         for led in inner.ledgers]

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def _residency(self, request_id: int) -> list[bool]:
        return [request_id in led._resident
                for led in self._inner.ledgers]

    def _contexts(self, request_id: int) -> "list[int | None]":
        return [led._context.get(request_id)
                for led in self._inner.ledgers]

    def admit(self, request_id: int, prompt_tokens: int,
              final_seq_len: int) -> None:
        try:
            self._inner.admit(request_id, prompt_tokens, final_seq_len)
        except CapacityError:
            if any(self._residency(request_id)):
                raise SanitizerError(
                    "all-or-nothing admission",
                    f"failed admission of request {request_id} landed "
                    "on a subset of devices",
                    request=request_id,
                    devices=self._residency(request_id))
            raise
        if not all(self._residency(request_id)):
            raise SanitizerError(
                "all-or-nothing admission",
                f"admission of request {request_id} skipped some "
                "devices", request=request_id,
                devices=self._residency(request_id))

    def grow(self, request_id: int, new_tokens: int = 1) -> None:
        before = self._contexts(request_id)
        try:
            self._inner.grow(request_id, new_tokens)
        except CapacityError:
            if self._contexts(request_id) != before:
                raise SanitizerError(
                    "all-or-nothing growth",
                    f"failed growth of request {request_id} charged a "
                    "subset of devices", request=request_id,
                    before=before, after=self._contexts(request_id))
            raise
        after = self._contexts(request_id)
        expected = [None if b is None else b + new_tokens
                    for b in before]
        if after != expected:
            raise SanitizerError(
                "all-or-nothing growth",
                f"growth of request {request_id} advanced devices "
                "unevenly", request=request_id, before=before,
                after=after)

    def release(self, request_id: int) -> None:
        self._inner.release(request_id)
        if any(self._residency(request_id)):
            raise SanitizerError(
                "all-or-nothing release",
                f"release of request {request_id} left it resident on "
                "a subset of devices", request=request_id,
                devices=self._residency(request_id))

    def assert_drained(self) -> None:
        for device, led in enumerate(self._inner.ledgers):
            try:
                led.assert_drained()
            except SanitizerError as exc:
                raise SanitizerError(
                    "ledger leak",
                    f"device {device}: {exc}", device=device) from exc


def wrap_ledger(ledger: "MemoryLedger | DeviceLedgers"
                ) -> "SanitizedLedger | SanitizedDeviceLedgers":
    """Wrap whatever :meth:`ServingEngine._make_ledger` built."""
    if isinstance(ledger, DeviceLedgers):
        return SanitizedDeviceLedgers(ledger)
    return SanitizedLedger(ledger)


# ----------------------------------------------------------------------
# KV transfers (disaggregated serving)
# ----------------------------------------------------------------------
def ledger_resident(ledger, request_id: int) -> bool:
    """Is ``request_id`` resident on ``ledger`` (any wrapper layer)?"""
    if isinstance(ledger, SanitizedLedger):
        return request_id in ledger._resident
    if isinstance(ledger, SanitizedDeviceLedgers):
        return any(ledger_resident(led, request_id)
                   for led in ledger._inner.ledgers)
    if isinstance(ledger, DeviceLedgers):
        return any(request_id in led._context for led in ledger.ledgers)
    return request_id in ledger._context


class KVTransferAuditor:
    """Conservation checks for inter-pool KV migrations.

    A migration charges the decode pool's ledger at transfer start and
    releases the prefill pool's ledger when the
    :class:`~repro.serve.events.KVTransfer` completes; in between the
    request is deliberately resident on both.  The engine reports both
    sides in *full-model KV bytes* (the per-device live-bytes delta
    times the pool's device count over its tensor-parallel degree —
    i.e. normalised by ``ep``, since ``tp`` shards cancel in the
    cluster sum), which is the quantity physically conserved across
    pools with different engines and parallel plans.  Reserved-byte
    deltas are *not* compared: they include engine-local workspace
    that legitimately differs between a prefill and a decode engine.

    Invariants:

    * no request starts a second transfer while one is on the wire;
    * a completion matches a started transfer;
    * bytes released at the source equal the bytes charged at the
      destination (within :data:`BYTES_TOL` plus a relative term for
      GiB-scale sums);
    * after completion the request is resident on the destination
      ledger and *not* on the source — single-pool residency;
    * at end of trace no transfer is still on the wire.
    """

    def __init__(self) -> None:
        self._in_flight: dict[int, tuple[str, str, float]] = {}

    def transfer_started(self, request_id: int, src_pool: str,
                         dst_pool: str, charged_bytes: float) -> None:
        if request_id in self._in_flight:
            src, dst, _ = self._in_flight[request_id]
            raise SanitizerError(
                "duplicate KV transfer",
                f"request {request_id} started a transfer "
                f"{src_pool!r}->{dst_pool!r} while one "
                f"{src!r}->{dst!r} is still on the wire",
                request=request_id)
        if charged_bytes <= 0:
            raise SanitizerError(
                "KV transfer charged nothing",
                f"transfer of request {request_id} "
                f"{src_pool!r}->{dst_pool!r} charged "
                f"{charged_bytes:.1f} bytes on the destination",
                request=request_id, charged_bytes=charged_bytes)
        self._in_flight[request_id] = (src_pool, dst_pool, charged_bytes)

    def transfer_completed(self, request_id: int, released_bytes: float,
                           src_ledger, dst_ledger) -> None:
        if request_id not in self._in_flight:
            raise SanitizerError(
                "unmatched KV transfer completion",
                f"request {request_id} completed a transfer that never "
                "started", request=request_id)
        src_pool, dst_pool, charged = self._in_flight.pop(request_id)
        tol = BYTES_TOL + 1e-9 * max(abs(charged), abs(released_bytes))
        if abs(released_bytes - charged) > tol:
            raise SanitizerError(
                "KV transfer conservation",
                f"request {request_id} {src_pool!r}->{dst_pool!r}: "
                f"released {released_bytes:.1f} bytes at the source "
                f"but charged {charged:.1f} at the destination",
                request=request_id, released=released_bytes,
                charged=charged)
        if ledger_resident(src_ledger, request_id):
            raise SanitizerError(
                "dual residency after KV transfer",
                f"request {request_id} still resident on source pool "
                f"{src_pool!r} after its transfer to {dst_pool!r} "
                "completed", request=request_id)
        if not ledger_resident(dst_ledger, request_id):
            raise SanitizerError(
                "lost residency after KV transfer",
                f"request {request_id} not resident on destination "
                f"pool {dst_pool!r} after its transfer completed",
                request=request_id)

    def assert_drained(self) -> None:
        """End-of-trace check: nothing left on the wire."""
        if self._in_flight:
            rid = min(self._in_flight)
            src, dst, _ = self._in_flight[rid]
            raise SanitizerError(
                "KV transfer leak",
                f"trace completed with {len(self._in_flight)} "
                f"transfer(s) still on the wire (request {rid} "
                f"{src!r}->{dst!r})",
                in_flight=sorted(self._in_flight))


# ----------------------------------------------------------------------
# Step pricer
# ----------------------------------------------------------------------
class SanitizedStepPricer(StepPricer):
    """Step pricer with sampled memo-purity re-pricing.

    Every ``check_every``-th priced step (and always the first) is
    re-priced through a **fresh** :class:`StepPricer` sharing the same
    context but none of the memos; the memoised answer must match
    within :data:`MEMO_TOL` and name the same auto winner.  A mismatch
    means a memo was poisoned (or a component stopped being a pure
    function of its key).

    Stochastic configurations (Samoyeds LPT with streams > 1 or a
    device grid) are never whole-step memoised *and* draw from the
    shared RNG inside ``_price``, so re-pricing them would desync the
    run; the check is skipped exactly there.
    """

    def __init__(self, *args, check_every: int = DEFAULT_CHECK_EVERY,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._check_every = max(1, int(check_every))
        self._priced_steps = 0

    def price(self, plan: "StepPlan") -> "tuple[float, float, str | None]":
        priced = super().price(plan)
        if self.stochastic:
            return priced
        self._priced_steps += 1
        if self._priced_steps != 1 \
                and self._priced_steps % self._check_every:
            return priced
        context = (sum(ar.context_tokens for ar in plan.decode)
                   if plan.decode else 0)
        fresh = StepPricer(self.ctx, self._layers, self._popularity,
                           self._rng, placement=self._placement,
                           cluster=self._cluster)
        step_s, comm_s, winner = fresh._price(plan, context)
        if (abs(step_s - priced[0]) > MEMO_TOL
                or abs(comm_s - priced[1]) > MEMO_TOL
                or winner != priced[2]):
            raise SanitizerError(
                "memo purity",
                "memoised step price diverges from a fresh re-price",
                step=self._priced_steps, memoised=priced,
                fresh=(step_s, comm_s, winner),
                step_tokens=plan.total_tokens)
        return priced
