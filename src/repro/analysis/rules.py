"""Lint rule protocol and the rule registry.

Rules are plain objects registered into :data:`RULES` — the same
generic :class:`~repro.registry.core.Registry` the engine/kernel/GPU
tables use, so ``--select REP999`` fails with the registry's uniform
did-you-mean message and third-party checks can register without
editing this package::

    @register_rule
    class MyRule(LintRule):
        code = "REP901"
        summary = "..."
        def check(self, module, project): ...

This module also hosts the two single-file rules small enough not to
deserve their own module: REP005 (no bare ``assert``) and REP006 (no
inline clock epsilon in ``serve/``).
"""

from __future__ import annotations

import abc
import ast

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.registry.core import Registry


class LintRule(abc.ABC):
    """One checkable invariant, identified by its ``REPnnn`` code."""

    code: str = "REP000"
    summary: str = ""

    @abc.abstractmethod
    def check(self, module: ModuleInfo,
              project: Project) -> list[Finding]:
        """Findings for ``module`` (cross-file context via ``project``)."""

    def finding(self, module: ModuleInfo, node: ast.AST,
                message: str) -> Finding:
        return Finding(path=module.path,
                       line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0),
                       rule=self.code, message=message)


#: All known rules, keyed by code, in registration (= documentation) order.
RULES: Registry[LintRule] = Registry("lint rule")


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator: instantiate and register under ``cls.code``."""
    RULES.register(cls.code, cls())
    return cls


@register_rule
class NoBareAssert(LintRule):
    """``assert`` vanishes under ``python -O``; library invariants must
    be typed exceptions (:class:`~repro.errors.InternalError` for bugs,
    :class:`~repro.errors.ConfigError` for bad input)."""

    code = "REP005"
    summary = "no bare assert in library code (stripped under -O)"

    def check(self, module: ModuleInfo,
              project: Project) -> list[Finding]:
        return [
            self.finding(
                module, node,
                "bare assert is stripped under `python -O`; raise "
                "InternalError (bug) or ConfigError (bad input) instead")
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Assert)
        ]


@register_rule
class NoInlineClockEpsilon(LintRule):
    """Clock comparisons in ``serve/`` must use the named
    ``CLOCK_EPS``; an inline ``1e-12`` silently drifts if the named
    tolerance ever changes."""

    code = "REP006"
    summary = "use serve.events.CLOCK_EPS, not an inline 1e-12"

    EPSILON = 1e-12

    def check(self, module: ModuleInfo,
              project: Project) -> list[Finding]:
        if not module.in_dir("serve") or module.matches("serve/events.py"):
            return []
        return [
            self.finding(
                module, node,
                "inline clock epsilon 1e-12; use "
                "repro.serve.events.CLOCK_EPS so every comparison "
                "shares one tolerance")
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value == self.EPSILON
        ]
