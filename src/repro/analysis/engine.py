"""Lint driver: collect files, run rules, apply the baseline.

The driver is what ``repro lint`` (and the tests) call:

* :func:`collect_files` expands paths/directories into ``.py`` files
  in sorted order (deterministic output);
* :class:`LintEngine` parses everything up front into a
  :class:`~repro.analysis.project.Project` (cross-file rules need the
  whole set), then runs each selected rule over each module;
* the **baseline** is a committed JSON file of grandfathered findings.
  Matching is a multiset over ``(rule, path, message)`` — line numbers
  are ignored so unrelated edits don't invalidate entries, but a *new*
  duplicate of a baselined finding in the same file still fails.

A file that does not parse yields a single ``PARSE`` finding instead
of aborting the run; ``PARSE`` findings cannot be baselined.
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.rules import RULES
from repro.errors import ConfigError

#: Default committed baseline location (repo root).
DEFAULT_BASELINE = "lint-baseline.json"

BASELINE_VERSION = 1


def collect_files(paths: "list[str | Path]") -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            batch = sorted(path.rglob("*.py"))
        elif path.is_file():
            batch = [path]
        else:
            raise ConfigError(f"lint path does not exist: {path}")
        for item in batch:
            if item not in seen:
                seen.add(item)
                files.append(item)
    return files


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding]          # everything the rules reported
    new: list[Finding]               # findings not covered by baseline
    baselined: int                   # suppressed by the baseline
    stale_baseline: list[tuple[str, str, str]]  # entries that matched nothing
    files: int
    rules: list[str]

    @property
    def clean(self) -> bool:
        return not self.new


@dataclass
class LintEngine:
    """Run a selected set of rules over a file set."""

    select: "list[str] | None" = None
    rules: list = field(init=False)

    def __post_init__(self) -> None:
        if self.select is None:
            self.rules = list(RULES.values())
        else:
            self.rules = [RULES.get(code) for code in self.select]

    def run(self, paths: "list[str | Path]",
            baseline: "Counter | None" = None) -> LintResult:
        files = collect_files(paths)
        modules: list[ModuleInfo] = []
        parse_failures: list[Finding] = []
        for file in files:
            source = file.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(file))
            except SyntaxError as exc:
                parse_failures.append(Finding(
                    path=str(file), line=exc.lineno or 0,
                    col=(exc.offset or 1) - 1, rule="PARSE",
                    message=f"file does not parse: {exc.msg}"))
                continue
            modules.append(ModuleInfo(path=str(file), tree=tree))

        project = Project(modules)
        findings = list(parse_failures)
        for module in modules:
            for rule in self.rules:
                findings.extend(rule.check(module, project))
        findings.sort()

        remaining = Counter(baseline or ())
        new: list[Finding] = []
        suppressed = 0
        for finding in findings:
            key = finding.baseline_key()
            if finding.rule != "PARSE" and remaining.get(key, 0) > 0:
                remaining[key] -= 1
                suppressed += 1
            else:
                new.append(finding)
        stale = sorted(key for key, count in remaining.items() if count > 0)
        return LintResult(findings=findings, new=new, baselined=suppressed,
                          stale_baseline=stale, files=len(files),
                          rules=sorted(rule.code for rule in self.rules))


# ----------------------------------------------------------------------
# Baseline file I/O
# ----------------------------------------------------------------------
def load_baseline(path: "str | Path") -> "Counter":
    """Baseline file -> multiset of ``(rule, path, message)`` keys."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline {path} is not valid JSON: {exc}") \
            from None
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION:
        raise ConfigError(
            f"baseline {path} must be an object with version="
            f"{BASELINE_VERSION}")
    keys: Counter = Counter()
    for entry in payload.get("findings", []):
        try:
            keys[(entry["rule"], entry["path"], entry["message"])] += 1
        except (TypeError, KeyError):
            raise ConfigError(
                f"baseline {path}: each finding needs rule/path/message"
            ) from None
    return keys


def write_baseline(findings: list[Finding], path: "str | Path") -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries = [{"rule": f.rule, "path": f.path, "message": f.message}
               for f in sorted(findings) if f.rule != "PARSE"]
    payload = {
        "version": BASELINE_VERSION,
        "comment": ("Grandfathered `repro lint` findings. Matching "
                    "ignores line numbers; regenerate with "
                    "`repro lint <paths> --write-baseline`."),
        "findings": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)
