"""Parsed-module model handed to lint rules.

Rules receive two views:

* :class:`ModuleInfo` — one parsed file: its ``ast`` tree plus path
  predicates (``in_dir("serve")``, ``matches("utils/rng.py")``) so
  path-scoped rules never re-implement path splitting;
* :class:`Project` — the whole linted file set with lazy cross-file
  indices (class table, transitive base-class closure, module-level
  dict-literal keys).  Cross-file rules such as REP003 ("every engine
  has a memory-model entry") resolve inheritance and look up the
  ``WEIGHT_FACTOR`` tables through the project, so fixture tests can
  exercise them on two small temp files instead of the real tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ModuleInfo:
    """One parsed python file."""

    path: str                      # as given on the command line
    tree: ast.Module
    rel: PurePosixPath = field(init=False)

    def __post_init__(self) -> None:
        self.rel = PurePosixPath(Path(self.path).as_posix())

    @property
    def name(self) -> str:
        return self.rel.stem

    def in_dir(self, *dirnames: str) -> bool:
        """True if any path component is one of ``dirnames``."""
        parts = set(self.rel.parts[:-1])
        return any(d in parts for d in dirnames)

    def matches(self, *suffixes: str) -> bool:
        """True if the posix path ends with any of ``suffixes``."""
        text = str(self.rel)
        return any(text == s or text.endswith("/" + s) for s in suffixes)


class Project:
    """The linted file set plus lazily-built cross-file indices."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules = list(modules)
        self._class_index: dict[str, tuple[ModuleInfo, ast.ClassDef]] | None = None
        self._dict_keys: dict[str, set[str] | None] = {}

    # ------------------------------------------------------------------
    # Class table and inheritance closure
    # ------------------------------------------------------------------
    @property
    def class_index(self) -> dict[str, tuple[ModuleInfo, ast.ClassDef]]:
        """Class name -> (module, ClassDef); first definition wins."""
        if self._class_index is None:
            index: dict[str, tuple[ModuleInfo, ast.ClassDef]] = {}
            for module in self.modules:
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.ClassDef):
                        index.setdefault(node.name, (module, node))
            self._class_index = index
        return self._class_index

    @staticmethod
    def base_names(cls: ast.ClassDef) -> list[str]:
        """Last-segment names of a class's bases (``abc.ABC`` -> ABC)."""
        names = []
        for base in cls.bases:
            dotted = dotted_name(base)
            if dotted:
                names.append(dotted.rsplit(".", 1)[-1])
        return names

    def ancestry(self, cls: ast.ClassDef) -> set[str]:
        """Every base-class name reachable from ``cls``, transitively.

        Names whose defining class is outside the linted set are still
        included (as leaves) — a fixture subclassing an undefined
        ``MoEEngine`` counts as engine lineage.
        """
        seen: set[str] = set()
        frontier = list(self.base_names(cls))
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            entry = self.class_index.get(name)
            if entry is not None:
                frontier.extend(self.base_names(entry[1]))
        return seen

    def resolves_method(self, cls: ast.ClassDef, method: str) -> bool | None:
        """Does ``cls`` (or an in-set ancestor) define ``method``?

        Returns ``None`` when the chain leaves the linted set before an
        answer is found — the rule should stay silent rather than guess.
        """
        frontier: list[ast.ClassDef | None] = [cls]
        seen: set[str] = set()
        escaped = False
        while frontier:
            node = frontier.pop()
            if node is None or node.name in seen:
                continue
            seen.add(node.name)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and stmt.name == method:
                    return True
            for base in self.base_names(node):
                if base in ("object", "ABC"):
                    continue
                entry = self.class_index.get(base)
                if entry is None:
                    escaped = True
                else:
                    frontier.append(entry[1])
        return None if escaped else False

    # ------------------------------------------------------------------
    # Module-level dict literals (the memory-model tables)
    # ------------------------------------------------------------------
    def dict_literal_keys(self, varname: str) -> set[str] | None:
        """String keys of every top-level ``varname = {...}`` assignment
        in the set, or ``None`` if no such assignment exists anywhere."""
        if varname not in self._dict_keys:
            keys: set[str] = set()
            found = False
            for module in self.modules:
                for stmt in module.tree.body:
                    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        continue
                    targets = (stmt.targets if isinstance(stmt, ast.Assign)
                               else [stmt.target])
                    if not any(isinstance(t, ast.Name) and t.id == varname
                               for t in targets):
                        continue
                    value = stmt.value
                    if isinstance(value, ast.Dict):
                        found = True
                        for key in value.keys:
                            if isinstance(key, ast.Constant) \
                                    and isinstance(key.value, str):
                                keys.add(key.value)
            self._dict_keys[varname] = keys if found else None
        return self._dict_keys[varname]
