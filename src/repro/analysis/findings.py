"""Lint finding record shared by every rule and the CLI.

A :class:`Finding` is deliberately flat — one file/line/col, one rule
code, one message — so text output, JSON output and the baseline file
are all trivial projections of the same object.  Baseline matching
ignores line/col (see :func:`Finding.baseline_key`): grandfathered
findings survive unrelated edits above them in the file.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline suppression.

        Line/col are excluded on purpose: a baseline entry keeps
        matching while the offending *code* is unchanged, even when
        edits elsewhere in the file shift it around.
        """
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
