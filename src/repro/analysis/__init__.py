"""Static analysis and runtime sanitizing for the simulator core.

Two complementary checkers keep the simulator's invariants honest:

* ``repro lint`` (:mod:`repro.analysis.cli`) — an stdlib-``ast`` lint
  engine with repo-specific rules (REP001–REP006) covering
  determinism, unit-suffix discipline, registry hygiene, frozen-event
  discipline, bare asserts and inline clock epsilons;
* the **sim-sanitizer** (:mod:`repro.analysis.sanitizer`) — opt-in
  runtime wrappers (``REPRO_SANITIZE=1`` or ``sanitize=True``) around
  the event calendar, memory ledgers and step pricer that raise a
  structured :class:`~repro.errors.SanitizerError` at the violation
  site.

Importing this package registers the built-in rules into
:data:`~repro.analysis.rules.RULES`.
"""

from repro.analysis import determinism as _determinism  # noqa: F401
from repro.analysis import structure as _structure  # noqa: F401
from repro.analysis import units as _units  # noqa: F401
from repro.analysis.engine import LintEngine, LintResult, collect_files
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.rules import RULES, LintRule, register_rule
from repro.analysis.sanitizer import sanitize_enabled, wrap_ledger

__all__ = [
    "Finding", "LintEngine", "LintResult", "LintRule", "ModuleInfo",
    "Project", "RULES", "collect_files", "register_rule",
    "sanitize_enabled", "wrap_ledger",
]
