"""REP002 — unit-suffix discipline.

The cost stack carries three unit families — seconds, bytes, tokens —
through plain floats.  The repo convention is that any identifier
holding one of them says so with a suffix (``step_s``, ``kv_bytes``,
``prompt_tokens``); a drifted unit (milliseconds where seconds are
expected) is then visible in the *name* at every use site.  This rule
enforces three things:

1. **canonical suffixes** — deprecated synonyms (``_ms``, ``_secs``,
   ``_nbytes``, ``_toks`` …) are flagged on function names, parameters
   and assignment targets;
2. **no cross-family arithmetic** — ``a_s + b_bytes`` is flagged
   (ratios are fine: ``bytes / s`` is a bandwidth, and ``*_per_*``
   names are exempt from family inference entirely);
3. **no unit laundering** — assigning an expression whose family is
   inferable (a ``*_s`` name, a ``*_seconds(...)`` call, a same-family
   sum) to a bare unsuffixed local drops the unit on the floor and is
   flagged.

Family inference is deliberately shallow — names, attributes, calls by
name, ``min``/``max``/``sum``/``abs``/``float`` transparency, and
``+``/``-`` (which preserve family).  ``*`` and ``/`` change units, so
they stop inference.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, Project, dotted_name
from repro.analysis.rules import LintRule, register_rule

#: family label -> canonical suffixes (and bare names) denoting it.
FAMILIES = {
    "seconds": ("_s", "_seconds", "seconds"),
    "bytes": ("_bytes", "bytes", "nbytes"),
    "tokens": ("_tokens", "tokens"),
}

#: deprecated suffix -> the canonical replacement to suggest.
DEPRECATED = {
    "_sec": "_s", "_secs": "_s", "_ms": "_s", "_us": "_s",
    "_millis": "_s", "_micros": "_s",
    "_byte": "_bytes", "_nbytes": "_bytes",
    "_kib": "_bytes", "_mib": "_bytes", "_gib": "_bytes",
    "_kb": "_bytes", "_mb": "_bytes", "_gb": "_bytes",
    "_tok": "_tokens", "_toks": "_tokens",
}

#: builtins transparent to family inference.
TRANSPARENT_CALLS = ("min", "max", "sum", "abs", "float", "int", "round")


def _last_segment(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def family_of_name(name: str) -> str | None:
    """Unit family a bare identifier claims, or ``None``."""
    name = _last_segment(name)
    if name.isupper() or "_per_" in name:
        return None
    for label, suffixes in FAMILIES.items():
        for suffix in suffixes:
            if (suffix.startswith("_") and name.endswith(suffix)) \
                    or name == suffix:
                return label
    return None


def deprecated_suffix(name: str) -> "tuple[str, str] | None":
    """(bad suffix, canonical replacement) if ``name`` uses one."""
    name = _last_segment(name)
    if name.isupper() or "_per_" in name:
        return None
    for suffix in sorted(DEPRECATED, key=len, reverse=True):
        if name.endswith(suffix):
            return suffix, DEPRECATED[suffix]
    return None


def infer_family(node: ast.AST) -> str | None:
    """Unit family of an expression, by shallow syntactic inference."""
    if isinstance(node, ast.Name):
        return family_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return family_of_name(node.attr)
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is None:
            return None
        short = _last_segment(name)
        if short in TRANSPARENT_CALLS:
            args = node.args
            if short == "sum" and args:
                args = args[:1]
            families = {infer_family(a) for a in args
                        if not isinstance(a, ast.Starred)}
            families.discard(None)
            return families.pop() if len(families) == 1 else None
        return family_of_name(short)
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        return infer_family(node.elt)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left, right = infer_family(node.left), infer_family(node.right)
        if left == right:
            return left
        return None
    if isinstance(node, ast.IfExp):
        body, orelse = infer_family(node.body), infer_family(node.orelse)
        return body if body == orelse else None
    return None


@register_rule
class UnitDiscipline(LintRule):
    code = "REP002"
    summary = ("seconds/bytes/tokens identifiers use _s/_bytes/_tokens "
               "suffixes; no cross-family arithmetic")

    def check(self, module: ModuleInfo,
              project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_def(module, node))
            elif isinstance(node, ast.BinOp) \
                    and isinstance(node.op, (ast.Add, ast.Sub)):
                findings.extend(self._check_binop(module, node))
            elif isinstance(node, ast.Assign):
                findings.extend(self._check_assign(module, node))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                target = node.target
                if isinstance(target, ast.Name):
                    findings.extend(
                        self._check_target_name(module, node, target.id))
        return findings

    def _deprecated_finding(self, module: ModuleInfo, node: ast.AST,
                            what: str, name: str) -> list[Finding]:
        hit = deprecated_suffix(name)
        if hit is None:
            return []
        bad, good = hit
        return [self.finding(
            module, node,
            f"{what} `{name}` uses non-canonical unit suffix `{bad}`; "
            f"use `{good}` (convert the value, don't just rename)")]

    def _check_def(self, module: ModuleInfo,
                   node: "ast.FunctionDef | ast.AsyncFunctionDef"
                   ) -> list[Finding]:
        findings = self._deprecated_finding(module, node, "function",
                                            node.name)
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            findings.extend(
                self._deprecated_finding(module, arg, "parameter", arg.arg))
        return findings

    def _check_target_name(self, module: ModuleInfo, node: ast.AST,
                           name: str) -> list[Finding]:
        return self._deprecated_finding(module, node, "assignment target",
                                        name)

    def _check_binop(self, module: ModuleInfo,
                     node: ast.BinOp) -> list[Finding]:
        left, right = infer_family(node.left), infer_family(node.right)
        if left is not None and right is not None and left != right:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            return [self.finding(
                module, node,
                f"`{op}` mixes unit families: left is {left}, right "
                f"is {right}")]
        return []

    def _check_assign(self, module: ModuleInfo,
                      node: ast.Assign) -> list[Finding]:
        findings: list[Finding] = []
        name_targets = [t for t in node.targets if isinstance(t, ast.Name)]
        for target in name_targets:
            findings.extend(
                self._check_target_name(module, node, target.id))
        # unit laundering: family-carrying value, unsuffixed bare target
        value_family = infer_family(node.value)
        if value_family is None:
            return findings
        suffix = FAMILIES[value_family][0]
        for target in name_targets:
            name = target.id
            if name.isupper() or name.startswith("_") or "_per_" in name:
                continue
            if family_of_name(name) is None \
                    and deprecated_suffix(name) is None:
                findings.append(self.finding(
                    module, node,
                    f"`{name}` is assigned a {value_family}-carrying "
                    f"expression; name it with the `{suffix}` suffix"))
        return findings
