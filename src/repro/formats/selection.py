"""The SEL column-selection input format (§4.1, right of Figure 7).

The activation side of the Samoyeds dual format: instead of materialising a
permuted per-expert input tensor (Figure 5's redundancy), the kernel reads
the *original* activation matrix through a selection array ``SEL`` that
lists which columns (tokens, after the §4.5 transposition) belong to the
expert.  This is vector-wise column sparsity and is mathematically
equivalent to the gather the reference implementation performs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError, ShapeError


@dataclass(frozen=True)
class ColumnSelection:
    """A dense matrix read through a column-selection array.

    Attributes:
        full: The backing ``(k, n_full)`` matrix (tokens as columns).
        sel: 1-D int array of selected column ids, in routing order.
    """

    full: np.ndarray
    sel: np.ndarray

    def __post_init__(self) -> None:
        if self.full.ndim != 2:
            raise ShapeError("ColumnSelection expects a 2-D backing matrix")
        if self.sel.ndim != 1:
            raise FormatError("SEL must be a 1-D index array")
        if self.sel.size and (self.sel.min() < 0
                              or self.sel.max() >= self.full.shape[1]):
            raise FormatError("SEL index out of range")

    @classmethod
    def from_routing(cls, activations: np.ndarray,
                     token_ids: np.ndarray) -> "ColumnSelection":
        """Build the expert's view from router output token ids."""
        return cls(full=activations, sel=np.asarray(token_ids, dtype=np.int64))

    @property
    def len_d(self) -> int:
        """Number of selected columns (the paper's ``len_d``)."""
        return int(self.sel.size)

    @property
    def shape(self) -> tuple[int, int]:
        """Logical shape of the selected view ``(k, len_d)``."""
        return (self.full.shape[0], self.len_d)

    @property
    def input_sparsity(self) -> float:
        """Fraction of columns *not* selected (Figure 11's x-axis)."""
        total = self.full.shape[1]
        return 1.0 - self.len_d / total if total else 0.0

    def gather(self) -> np.ndarray:
        """Materialise the selected columns (the redundancy Samoyeds skips).

        Provided for reference implementations and equivalence tests; the
        Samoyeds kernel itself never calls this.
        """
        return self.full[:, self.sel]

    def sel_bytes(self, index_bytes: int = 4) -> int:
        return self.len_d * index_bytes

    def padded_len(self, tile_n: int) -> int:
        """``len_d`` rounded up to the kernel's n-tile (padding, §6.2)."""
        if tile_n <= 0:
            raise ShapeError("tile_n must be positive")
        return ((self.len_d + tile_n - 1) // tile_n) * tile_n
