"""Metadata re-packing for 32-bit-aligned loads (§4.4, Figure 10).

The 2-bit metadata matrix cannot go through ``ldmatrix`` (which moves
16-bit lanes), so Samoyeds re-arranges each 16x16 2-bit metadata tile in
device memory such that the 16 values each thread needs for one
``mma.sp.m16n8k32`` land in one contiguous 32-bit word.

The paper gives the mapping:
``[row, col] -> [row % 8 * 2 + col // 8, col % 8 + row // 8 * 8]``.
This module implements the forward/backward permutations, verifies they
are inverse bijections (tested property-based), and exposes the
transaction-count model that motivates the layout.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

TILE = 16   #: metadata tiles are 16x16 2-bit values


def _check_tile(tile: np.ndarray) -> None:
    if tile.shape != (TILE, TILE):
        raise ShapeError(
            f"metadata packing operates on {TILE}x{TILE} tiles, "
            f"got {tile.shape}")


def packed_coordinates(row: np.ndarray | int,
                       col: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
    """Figure 10's [row, col] -> [row', col'] mapping."""
    row = np.asarray(row)
    col = np.asarray(col)
    new_row = (row % 8) * 2 + col // 8
    new_col = col % 8 + (row // 8) * 8
    return new_row, new_col


def pack_metadata_tile(tile: np.ndarray) -> np.ndarray:
    """Re-arrange one 16x16 metadata tile into the packed layout."""
    _check_tile(tile)
    rows, cols = np.meshgrid(np.arange(TILE), np.arange(TILE), indexing="ij")
    new_rows, new_cols = packed_coordinates(rows, cols)
    packed = np.empty_like(tile)
    packed[new_rows, new_cols] = tile
    return packed


def unpack_metadata_tile(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_metadata_tile`."""
    _check_tile(packed)
    rows, cols = np.meshgrid(np.arange(TILE), np.arange(TILE), indexing="ij")
    new_rows, new_cols = packed_coordinates(rows, cols)
    tile = np.empty_like(packed)
    tile[rows, cols] = packed[new_rows, new_cols]
    return tile


def thread_word_elements(packed: bool) -> int:
    """2-bit elements per 32-bit register word a thread consumes (16)."""
    del packed
    return 32 // 2


def metadata_load_transactions(tiles: int, packed: bool,
                               transaction_bits: int = 32) -> int:
    """Memory transactions to feed ``tiles`` metadata tiles to the SpTC.

    Packed layout: every thread reads one aligned 32-bit word per tile
    half -> 2 transactions of useful data per tile row-pair, i.e. the
    minimum of ``TILE*TILE*2 / 32`` words.

    Unpacked layout: each thread's 16 values are strewn across 8 separate
    words (4 consecutive 2-bit values per word before crossing a row), so
    it touches 4x the words.
    """
    if tiles < 0:
        raise ShapeError("tiles must be non-negative")
    words_needed = TILE * TILE * 2 // transaction_bits
    if packed:
        return tiles * words_needed
    scatter_factor = 4   # 4 row-fragments per 32-bit word assembled
    return tiles * words_needed * scatter_factor
