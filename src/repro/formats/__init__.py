"""Sparse data formats.

Implements every format the paper discusses (Figure 3) or evaluates:

* classic unstructured formats — :mod:`~repro.formats.coo`,
  :mod:`~repro.formats.csr`;
* NVIDIA's hardware 2:4 semi-structured format with 2-bit metadata —
  :mod:`~repro.formats.twofour`;
* VENOM's V:N:M vector format — :mod:`~repro.formats.venom`;
* the Samoyeds dual-side format: the `(N, M, V)` weight encoding
  (*data / indices / metadata*) plus the SEL column-selection input
  encoding — :mod:`~repro.formats.samoyeds`,
  :mod:`~repro.formats.selection`;
* the Figure-10 metadata re-packing — :mod:`~repro.formats.metadata_packing`.

All encoders are exact: ``decode(encode(x))`` reproduces the pruned matrix
bit-for-bit, which the test suite verifies property-based.
"""

from repro.formats.coo import CooMatrix
from repro.formats.csr import CsrMatrix
from repro.formats.twofour import TwoFourMatrix, prune_two_four
from repro.formats.venom import VenomMatrix, VenomPattern
from repro.formats.samoyeds import (
    SamoyedsPattern,
    SamoyedsWeight,
    prune_samoyeds,
)
from repro.formats.selection import ColumnSelection
from repro.formats.metadata_packing import (
    pack_metadata_tile,
    unpack_metadata_tile,
    metadata_load_transactions,
)

__all__ = [
    "CooMatrix",
    "CsrMatrix",
    "TwoFourMatrix",
    "prune_two_four",
    "VenomMatrix",
    "VenomPattern",
    "SamoyedsPattern",
    "SamoyedsWeight",
    "prune_samoyeds",
    "ColumnSelection",
    "pack_metadata_tile",
    "unpack_metadata_tile",
    "metadata_load_transactions",
]
