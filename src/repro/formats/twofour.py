"""NVIDIA 2:4 semi-structured sparsity (Figure 4).

Every contiguous group of 4 elements along a row keeps its 2 largest-
magnitude entries.  The encoding splits the matrix into a half-width dense
*data* matrix and a 2-bit-per-element *metadata* matrix recording which of
the 4 positions each kept value came from — exactly the operand layout
``mma.sp`` consumes and ``cuSPARSELt`` produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PatternViolation, ShapeError

GROUP = 4      #: elements per 2:4 group
KEEP = 2       #: survivors per group


def _group_view(matrix: np.ndarray) -> np.ndarray:
    """Reshape ``(m, k)`` into ``(m, k/4, 4)`` groups."""
    if matrix.ndim != 2:
        raise ShapeError("2:4 encoding expects a 2-D array")
    m, k = matrix.shape
    if k % GROUP:
        raise ShapeError(f"k={k} must be a multiple of {GROUP} for 2:4")
    return matrix.reshape(m, k // GROUP, GROUP)


def two_four_mask(matrix: np.ndarray) -> np.ndarray:
    """Boolean keep-mask selecting the top-2 magnitudes of each group of 4.

    Ties resolve toward the earlier position (stable), matching
    cuSPARSELt's deterministic pruner.
    """
    groups = _group_view(matrix)
    order = np.argsort(-np.abs(groups), axis=2, kind="stable")
    keep = np.sort(order[:, :, :KEEP], axis=2)
    mask = np.zeros(groups.shape, dtype=bool)
    np.put_along_axis(mask, keep, True, axis=2)
    return mask.reshape(matrix.shape)


def prune_two_four(matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` with the 2:4 pattern applied (zeros written)."""
    return np.where(two_four_mask(matrix), matrix, 0.0)


@dataclass(frozen=True)
class TwoFourMatrix:
    """2:4-encoded matrix: half-width data plus 2-bit position metadata.

    Attributes:
        data: ``(m, k/2)`` kept values, group order preserved.
        metadata: ``(m, k/2)`` uint8 holding each value's position (0..3)
            within its group of four; only 2 bits are meaningful.
        shape: Logical (uncompressed) shape ``(m, k)``.
    """

    data: np.ndarray
    metadata: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        m, k = self.shape
        if self.data.shape != (m, k // 2):
            raise ShapeError(f"data must be (m, k/2) = ({m}, {k // 2})")
        if self.metadata.shape != self.data.shape:
            raise ShapeError("metadata must match data shape")
        if self.metadata.size and self.metadata.max() >= GROUP:
            raise PatternViolation("metadata positions must be < 4")

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "TwoFourMatrix":
        """Prune-and-encode: keeps top-2 magnitudes per group of 4."""
        groups = _group_view(dense)
        order = np.argsort(-np.abs(groups), axis=2, kind="stable")
        keep = np.sort(order[:, :, :KEEP], axis=2)
        data = np.take_along_axis(groups, keep, axis=2)
        m, k = dense.shape
        return cls(data=data.reshape(m, k // 2),
                   metadata=keep.reshape(m, k // 2).astype(np.uint8),
                   shape=dense.shape)

    @classmethod
    def from_pruned(cls, pruned: np.ndarray) -> "TwoFourMatrix":
        """Encode a matrix that already satisfies 2:4 (validates)."""
        groups = _group_view(pruned)
        nnz_per_group = np.count_nonzero(groups, axis=2)
        if np.any(nnz_per_group > KEEP):
            raise PatternViolation(
                "matrix has a group of 4 with more than 2 non-zeros")
        return cls.from_dense(pruned)

    def to_dense(self) -> np.ndarray:
        m, k = self.shape
        out = np.zeros((m, k // GROUP, GROUP), dtype=self.data.dtype)
        data = self.data.reshape(m, k // GROUP, KEEP)
        meta = self.metadata.reshape(m, k // GROUP, KEEP).astype(np.int64)
        np.put_along_axis(out, meta, data, axis=2)
        return out.reshape(m, k)

    @property
    def density(self) -> float:
        return 0.5

    def nbytes(self, value_bytes: int = 2) -> int:
        """Compressed footprint: values + 2-bit metadata."""
        return self.data.size * value_bytes + self.metadata.size * 2 // 8

    def matmul(self, dense_rhs: np.ndarray) -> np.ndarray:
        """``decode(self) @ dense_rhs`` — the mma.sp semantic."""
        return self.to_dense() @ dense_rhs
