"""Coordinate-list (COO) unstructured sparse format.

Included as the canonical unstructured baseline of Figure 3.  COO stores one
``(row, col, value)`` triple per non-zero with no pattern constraint, which
is exactly why GPUs struggle with it: no locality, no coalescing guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError, ShapeError


@dataclass(frozen=True)
class CooMatrix:
    """An ``m x k`` matrix stored as coordinate triples."""

    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        if not (self.rows.shape == self.cols.shape == self.data.shape):
            raise FormatError("rows/cols/data must have identical length")
        if self.rows.ndim != 1:
            raise FormatError("COO arrays must be 1-D")
        m, k = self.shape
        if self.rows.size and (self.rows.max() >= m or self.cols.max() >= k):
            raise FormatError("COO coordinate out of bounds")

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CooMatrix":
        """Encode every non-zero of ``dense``."""
        if dense.ndim != 2:
            raise ShapeError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        return cls(rows=rows.astype(np.int64), cols=cols.astype(np.int64),
                   data=dense[rows, cols].copy(), shape=dense.shape)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.data.dtype)
        out[self.rows, self.cols] = self.data
        return out

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def density(self) -> float:
        m, k = self.shape
        return self.nnz / (m * k) if m * k else 0.0

    def nbytes(self, value_bytes: int = 2, index_bytes: int = 4) -> int:
        """Storage footprint with configurable precisions."""
        return self.nnz * (value_bytes + 2 * index_bytes)

    def matmul(self, dense_rhs: np.ndarray) -> np.ndarray:
        """``self @ dense_rhs`` via scatter-accumulate (reference path)."""
        m, k = self.shape
        if dense_rhs.shape[0] != k:
            raise ShapeError(
                f"rhs rows {dense_rhs.shape[0]} != matrix cols {k}")
        out = np.zeros((m, dense_rhs.shape[1]), dtype=np.float64)
        np.add.at(out, self.rows,
                  self.data[:, None].astype(np.float64)
                  * dense_rhs[self.cols].astype(np.float64))
        return out.astype(np.result_type(self.data, dense_rhs))
