"""Compressed Sparse Row (CSR) format — the Sputnik baseline's format.

CSR compresses the row coordinate of COO into an index-pointer array.  It is
the standard format of GPU sparse libraries (cuSPARSE, Sputnik); the paper
uses Sputnik as the unstructured-sparsity kernel baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError, ShapeError


@dataclass(frozen=True)
class CsrMatrix:
    """An ``m x k`` matrix in compressed-sparse-row layout."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        m, k = self.shape
        if self.indptr.ndim != 1 or self.indptr.size != m + 1:
            raise FormatError(f"indptr must have length m+1 = {m + 1}")
        if self.indices.shape != self.data.shape or self.indices.ndim != 1:
            raise FormatError("indices/data must be 1-D and equal length")
        if int(self.indptr[-1]) != self.data.size:
            raise FormatError("indptr[-1] must equal nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if self.indices.size and self.indices.max() >= k:
            raise FormatError("column index out of bounds")

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CsrMatrix":
        if dense.ndim != 2:
            raise ShapeError("from_dense expects a 2-D array")
        m, _ = dense.shape
        rows, cols = np.nonzero(dense)
        counts = np.bincount(rows, minlength=m)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return cls(indptr=indptr, indices=cols.astype(np.int64),
                   data=dense[rows, cols].copy(), shape=dense.shape)

    def to_dense(self) -> np.ndarray:
        m, k = self.shape
        out = np.zeros((m, k), dtype=self.data.dtype)
        rows = np.repeat(np.arange(m), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    @property
    def density(self) -> float:
        m, k = self.shape
        return self.nnz / (m * k) if m * k else 0.0

    def row_nnz(self) -> np.ndarray:
        """Non-zeros per row — the load-balance profile Sputnik tunes for."""
        return np.diff(self.indptr)

    def nbytes(self, value_bytes: int = 2, index_bytes: int = 4) -> int:
        return (self.nnz * (value_bytes + index_bytes)
                + self.indptr.size * index_bytes)

    def matmul(self, dense_rhs: np.ndarray) -> np.ndarray:
        """``self @ dense_rhs`` with per-row gather (Sputnik's access shape)."""
        m, k = self.shape
        if dense_rhs.shape[0] != k:
            raise ShapeError(
                f"rhs rows {dense_rhs.shape[0]} != matrix cols {k}")
        rows = np.repeat(np.arange(m), np.diff(self.indptr))
        out = np.zeros((m, dense_rhs.shape[1]), dtype=np.float64)
        np.add.at(out, rows,
                  self.data[:, None].astype(np.float64)
                  * dense_rhs[self.indices].astype(np.float64))
        return out.astype(np.result_type(self.data, dense_rhs))
