"""The Samoyeds dual-side sparse weight format (§4.1, Figure 7).

The weight side combines two patterns:

* **vector-wise sub-row sparsity** — the matrix is cut into blocks of
  ``M`` *Sub-Rows* by ``V`` columns; only ``N`` sub-rows survive per
  block (chosen by L2 norm).  Because selection is per column-block, the
  surviving row identities *change along k* every ``V`` columns — the
  property that forces the data-stationary ``C_IR`` shuffle of §4.3.
* **2:4 element sparsity** — each surviving sub-row is pruned 2:4 so the
  SpTC ``mma.sp`` instruction can consume it.

Total density is ``(N / M) * 0.5`` — e.g. the paper's Table 4 configs
(1,2,16), (1,2,32), (4,8,32), (8,16,32) all give 75% sparsity.

The encoding has three components, exactly as Figure 7 describes:

* ``data``    — ``(m/M * N, k/2)`` compressed non-zero values;
* ``indices`` — ``(m/M, k/V, N)`` relative positions of the surviving
  sub-rows inside their blocks;
* ``metadata``— ``(m/M * N, k/2)`` 2-bit position codes for the SpTC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PatternViolation, ShapeError
from repro.formats.twofour import GROUP, TwoFourMatrix, two_four_mask


@dataclass(frozen=True)
class SamoyedsPattern:
    """The `(N, M, V)` structured-sparsity configuration.

    Attributes:
        n: Sub-rows kept per block.
        m: Sub-rows per block.
        v: Columns per sub-row (vector length). Must be a multiple of 4 so
           each sub-row decomposes into whole 2:4 groups, and is bounded by
           the tiling constraint ``k_b <= V`` of §4.2.
    """

    n: int
    m: int
    v: int

    def __post_init__(self) -> None:
        if self.n <= 0 or self.m <= 0 or self.v <= 0:
            raise PatternViolation("N, M, V must all be positive")
        if self.n > self.m:
            raise PatternViolation(f"N={self.n} cannot exceed M={self.m}")
        if self.v % GROUP:
            raise PatternViolation(
                f"V={self.v} must be a multiple of 4 (2:4 groups)")

    @property
    def density(self) -> float:
        """Kept fraction including the inner 2:4 (N/M * 1/2)."""
        return (self.n / self.m) * 0.5

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    def __str__(self) -> str:
        return f"({self.n},{self.m},{self.v})"


#: Table 4's configurations, all at 75% sparsity.
PAPER_PATTERNS: tuple[SamoyedsPattern, ...] = (
    SamoyedsPattern(1, 2, 16),
    SamoyedsPattern(1, 2, 32),
    SamoyedsPattern(4, 8, 32),
    SamoyedsPattern(8, 16, 32),
)

DEFAULT_PATTERN = SamoyedsPattern(1, 2, 32)


def _check_shape(matrix: np.ndarray, pattern: SamoyedsPattern) -> None:
    if matrix.ndim != 2:
        raise ShapeError("Samoyeds encoding expects a 2-D weight matrix")
    rows, cols = matrix.shape
    if rows % pattern.m:
        raise ShapeError(f"rows={rows} must be a multiple of M={pattern.m}")
    if cols % pattern.v:
        raise ShapeError(f"cols={cols} must be a multiple of V={pattern.v}")


def _subrow_selection(matrix: np.ndarray,
                      pattern: SamoyedsPattern) -> np.ndarray:
    """Per-block surviving sub-row ids, shape ``(m/M, k/V, N)``, sorted.

    Selection maximises retained energy: sub-rows are ranked by the L2
    norm of their ``V``-length vector, matching the offline pruning step.
    """
    rows, cols = matrix.shape
    blocks = matrix.reshape(rows // pattern.m, pattern.m,
                            cols // pattern.v, pattern.v)
    scores = np.sqrt(np.sum(blocks.astype(np.float64) ** 2, axis=3))
    order = np.argsort(-scores, axis=1, kind="stable")
    keep = order[:, :pattern.n, :]                      # (mb, N, kv)
    return np.sort(np.swapaxes(keep, 1, 2), axis=2)     # (mb, kv, N)


def samoyeds_mask(matrix: np.ndarray, pattern: SamoyedsPattern) -> np.ndarray:
    """Boolean keep-mask of the full dual pattern (sub-row + 2:4)."""
    _check_shape(matrix, pattern)
    rows, cols = matrix.shape
    indices = _subrow_selection(matrix, pattern)        # (mb, kv, N)

    row_mask = np.zeros((rows // pattern.m, cols // pattern.v, pattern.m),
                        dtype=bool)
    mb_idx = np.arange(rows // pattern.m)[:, None, None]
    kv_idx = np.arange(cols // pattern.v)[None, :, None]
    row_mask[mb_idx, kv_idx, indices] = True            # (mb, kv, M)

    # Expand to element granularity: (mb, M, kv, V) -> (rows, cols)
    expanded = np.broadcast_to(
        np.swapaxes(row_mask, 1, 2)[:, :, :, None],
        (rows // pattern.m, pattern.m, cols // pattern.v, pattern.v))
    vector_mask = expanded.reshape(rows, cols)
    return vector_mask & two_four_mask(np.where(vector_mask, matrix, 0.0))


def prune_samoyeds(matrix: np.ndarray,
                   pattern: SamoyedsPattern = DEFAULT_PATTERN) -> np.ndarray:
    """Apply the Samoyeds pattern to ``matrix`` (zeros written in place of
    pruned weights); the result is what the encoded form represents."""
    return np.where(samoyeds_mask(matrix, pattern), matrix, 0.0)


@dataclass(frozen=True)
class SamoyedsWeight:
    """A weight matrix encoded in the Samoyeds format.

    Attributes:
        data: ``(m/M * N, k/2)`` compressed values.  Row ``b * N + r`` holds
            the ``r``-th surviving sub-row of block-row ``b`` — but note the
            *identity* of that sub-row changes at every ``V`` boundary, per
            ``indices``.
        indices: ``(m/M, k/V, N)`` uint8 relative sub-row positions.
        metadata: ``(m/M * N, k/2)`` uint8 2-bit codes (positions within
            each group of 4), the ``mma.sp`` metadata operand.
        shape: Logical dense shape ``(m, k)``.
        pattern: The `(N, M, V)` configuration.
    """

    data: np.ndarray
    indices: np.ndarray
    metadata: np.ndarray
    shape: tuple[int, int]
    pattern: SamoyedsPattern

    def __post_init__(self) -> None:
        rows, cols = self.shape
        p = self.pattern
        expected_data = (rows // p.m * p.n, cols // 2)
        if self.data.shape != expected_data:
            raise ShapeError(
                f"data shape {self.data.shape} != expected {expected_data}")
        expected_idx = (rows // p.m, cols // p.v, p.n)
        if self.indices.shape != expected_idx:
            raise ShapeError(
                f"indices shape {self.indices.shape} != {expected_idx}")
        if self.metadata.shape != self.data.shape:
            raise ShapeError("metadata must match data shape")
        if self.indices.size and self.indices.max() >= p.m:
            raise PatternViolation("sub-row index out of block range")

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray,
                   pattern: SamoyedsPattern = DEFAULT_PATTERN
                   ) -> "SamoyedsWeight":
        """Prune-and-encode a dense weight matrix."""
        _check_shape(dense, pattern)
        rows, cols = dense.shape
        p = pattern
        indices = _subrow_selection(dense, p)           # (mb, kv, N)

        blocks = dense.reshape(rows // p.m, p.m, cols // p.v, p.v)
        blocks = np.swapaxes(blocks, 1, 2)              # (mb, kv, M, V)
        gathered = np.take_along_axis(
            blocks, indices[:, :, :, None].astype(np.int64), axis=2
        )                                               # (mb, kv, N, V)

        # Flatten surviving sub-rows into the compressed row layout, then
        # 2:4-encode along k.
        mb, kv = rows // p.m, cols // p.v
        seq = np.swapaxes(gathered, 1, 2)               # (mb, N, kv, V)
        flat = seq.reshape(mb * p.n, cols)
        tf = TwoFourMatrix.from_dense(flat)
        return cls(data=tf.data, indices=indices.astype(np.uint8),
                   metadata=tf.metadata, shape=dense.shape, pattern=p)

    def to_dense(self) -> np.ndarray:
        """Exact reconstruction of the pruned dense matrix."""
        rows, cols = self.shape
        p = self.pattern
        mb, kv = rows // p.m, cols // p.v
        tf = TwoFourMatrix(data=self.data, metadata=self.metadata,
                           shape=(mb * p.n, cols))
        flat = tf.to_dense()                            # (mb*N, cols)
        seq = flat.reshape(mb, p.n, kv, p.v)
        gathered = np.swapaxes(seq, 1, 2)               # (mb, kv, N, V)

        blocks = np.zeros((mb, kv, p.m, p.v), dtype=self.data.dtype)
        np.put_along_axis(blocks,
                          self.indices[:, :, :, None].astype(np.int64),
                          gathered, axis=2)
        return np.swapaxes(blocks, 1, 2).reshape(rows, cols)

    # ------------------------------------------------------------------
    # Storage accounting (drives the Table 3 memory model)
    # ------------------------------------------------------------------
    def data_bytes(self, value_bytes: int = 2) -> int:
        return self.data.size * value_bytes

    def metadata_bytes(self) -> int:
        """2 bits per stored value."""
        return self.metadata.size * 2 // 8

    def indices_bytes(self) -> int:
        """One byte per surviving-sub-row pointer."""
        return self.indices.size

    def nbytes(self, value_bytes: int = 2) -> int:
        return (self.data_bytes(value_bytes) + self.metadata_bytes()
                + self.indices_bytes())

    @property
    def compression_ratio(self) -> float:
        """Dense fp16 bytes / compressed bytes."""
        dense = self.shape[0] * self.shape[1] * 2
        return dense / self.nbytes()

    def matmul(self, dense_rhs: np.ndarray) -> np.ndarray:
        """``decode(self) @ rhs`` — reference semantic for the SSMM kernel."""
        return self.to_dense() @ dense_rhs
