"""VENOM's V:N:M vectorized sparse format (the structured-sparse baseline).

VENOM (Castro et al., SC'23) generalises 2:4 to arbitrary ratios: the
matrix is cut into panels of ``V`` consecutive rows; within each panel,
every group of ``M`` columns keeps ``N`` whole column-vectors (vector
granularity ``V``), and the surviving dense panel is further pruned 2:4 so
it can run on Sparse Tensor Cores.  Total density is ``(N / M) * 0.5``.

The column-vector granularity is the property the paper contrasts against:
it is coarser than Samoyeds' sub-row granularity (hurting accuracy,
Table 5) and it skips *input rows*, which breaks coalescing when the input
itself is sparse (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PatternViolation, ShapeError
from repro.formats.twofour import prune_two_four, two_four_mask


@dataclass(frozen=True)
class VenomPattern:
    """V:N:M pattern parameters."""

    v: int
    n: int
    m: int

    def __post_init__(self) -> None:
        if self.n <= 0 or self.m <= 0 or self.v <= 0:
            raise PatternViolation("V, N, M must all be positive")
        if self.n > self.m:
            raise PatternViolation(f"N={self.n} cannot exceed M={self.m}")

    @property
    def density(self) -> float:
        """Fraction of weights kept, including the inner 2:4."""
        return (self.n / self.m) * 0.5

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    def __str__(self) -> str:
        return f"{self.v}:{self.n}:{self.m}"


#: 64:2:4 — the configuration matching the paper's uniform 75% sparsity
#: (N/M = 1/2 column selection x the inner 2:4).
DEFAULT_VENOM = VenomPattern(v=64, n=2, m=4)


def venom_mask(matrix: np.ndarray, pattern: VenomPattern) -> np.ndarray:
    """Boolean keep-mask for the V:N:M pattern (column-vector granularity).

    Vector scores are L2 norms over each ``V``-row column segment; the top
    ``N`` of every ``M`` columns survive.  The inner 2:4 applies to the
    *compacted* matrix (surviving columns gathered dense), exactly as the
    format stores it for ``mma.sp``, then scatters back.
    """
    if matrix.ndim != 2:
        raise ShapeError("venom_mask expects a 2-D array")
    rows, cols = matrix.shape
    if rows % pattern.v:
        raise ShapeError(f"rows={rows} must be a multiple of V={pattern.v}")
    if cols % pattern.m:
        raise ShapeError(f"cols={cols} must be a multiple of M={pattern.m}")
    groups = cols // pattern.m
    if (groups * pattern.n) % 4:
        raise ShapeError(
            f"compacted width {groups * pattern.n} must be a multiple of "
            "4 for the inner 2:4")

    panels = matrix.reshape(rows // pattern.v, pattern.v,
                            groups, pattern.m)
    scores = np.sqrt(np.sum(panels.astype(np.float64) ** 2, axis=1))
    order = np.argsort(-scores, axis=2, kind="stable")
    keep_cols = np.sort(order[:, :, :pattern.n], axis=2)   # (R, G, N)

    gathered = np.take_along_axis(
        panels, keep_cols[:, None, :, :].astype(np.int64), axis=3)
    compact = gathered.reshape(rows, groups * pattern.n)
    inner = two_four_mask(compact).reshape(
        rows // pattern.v, pattern.v, groups, pattern.n)

    full = np.zeros(panels.shape, dtype=bool)
    np.put_along_axis(full,
                      np.broadcast_to(
                          keep_cols[:, None, :, :].astype(np.int64),
                          inner.shape),
                      inner, axis=3)
    return full.reshape(rows, cols)


def prune_venom(matrix: np.ndarray, pattern: VenomPattern) -> np.ndarray:
    """Apply the V:N:M (+2:4) pattern to ``matrix``."""
    return np.where(venom_mask(matrix, pattern), matrix, 0.0)


@dataclass(frozen=True)
class VenomMatrix:
    """Encoded V:N:M matrix: compressed values + column indices + metadata.

    Attributes:
        data: ``(m, k * density)`` kept values (group-compressed).
        col_indices: ``(m / V, k / M, N)`` surviving column ids per panel
            group.
        shape: Logical shape.
        pattern: The V:N:M parameters.
    """

    data: np.ndarray
    col_indices: np.ndarray
    shape: tuple[int, int]
    pattern: VenomPattern

    @classmethod
    def from_dense(cls, dense: np.ndarray,
                   pattern: VenomPattern = DEFAULT_VENOM) -> "VenomMatrix":
        pruned = prune_venom(dense, pattern)
        rows, cols = dense.shape
        panels = pruned.reshape(rows // pattern.v, pattern.v,
                                cols // pattern.m, pattern.m)
        scores = np.sqrt(np.sum(
            dense.reshape(panels.shape).astype(np.float64) ** 2, axis=1))
        order = np.argsort(-scores, axis=2, kind="stable")
        keep_cols = np.sort(order[:, :, :pattern.n], axis=2)
        gathered = np.take_along_axis(
            panels, keep_cols[:, None, :, :], axis=3)
        data = gathered.reshape(rows, -1)
        return cls(data=data, col_indices=keep_cols.astype(np.int32),
                   shape=dense.shape, pattern=pattern)

    def to_dense(self) -> np.ndarray:
        rows, cols = self.shape
        p = self.pattern
        out = np.zeros((rows // p.v, p.v, cols // p.m, p.m),
                       dtype=self.data.dtype)
        gathered = self.data.reshape(rows // p.v, p.v, cols // p.m, p.n)
        np.put_along_axis(out, self.col_indices[:, None, :, :].astype(np.int64),
                          gathered, axis=3)
        return out.reshape(rows, cols)

    def nbytes(self, value_bytes: int = 2) -> int:
        """Values (still 2:4-sparse inside) + 2-bit metadata + indices."""
        kept_values = self.data.size // 2          # after inner 2:4
        metadata = kept_values * 2 // 8
        indices = self.col_indices.size            # 1 byte each suffices
        return kept_values * value_bytes + metadata + indices

    def matmul(self, dense_rhs: np.ndarray) -> np.ndarray:
        return self.to_dense() @ dense_rhs
