"""Top-level dispatcher: ``python -m repro`` / the ``repro`` script.

``repro bench <subcommand>`` forwards to :mod:`repro.bench.cli`, so the
installed console script mirrors the module entry point::

    repro bench serve --engines samoyeds,vllm --trace poisson
    python -m repro bench maxbatch --gpu a100

``repro list [kind]`` prints the plugin registries (engines, kernels,
gpus, links, models, workloads, routers) with their capability
metadata — the discovery side of the registry API::

    repro list engines
    repro list            # every registry

``repro lint [paths]`` runs the static invariant checker
(:mod:`repro.analysis`) over the given files/directories::

    repro lint src/
    repro lint src/repro/serve --select REP001 --format json
"""

from __future__ import annotations

import sys


def _registry_rows(kind: str) -> list[tuple[str, str]]:
    """(name, summary) rows of one registry, in registration order."""
    if kind == "engines":
        from repro.moe.layers import ENGINES
        return [(name, engine.capabilities().describe())
                for name, engine in ENGINES.items()]
    if kind == "kernels":
        from repro.kernels import KERNELS
        return [(name, kernel.capabilities().describe())
                for name, kernel in KERNELS.items()]
    if kind == "gpus":
        from repro.hw.spec import GPU_REGISTRY
        return [(name,
                 f"{spec.architecture} sm={spec.sm_count} "
                 f"bw={spec.dram_bandwidth / 1e9:.0f}GB/s "
                 f"mem={spec.dram_capacity / 2**30:.0f}GiB "
                 f"{'sptc' if spec.has_sparse_alu else '-'}")
                for name, spec in GPU_REGISTRY.items()]
    if kind == "links":
        from repro.hw.interconnect import LINK_REGISTRY
        return [(name,
                 f"alpha={link.latency_s * 1e6:.1f}us "
                 f"beta={link.bandwidth / 1e9:.0f}GB/s")
                for name, link in LINK_REGISTRY.items()]
    if kind == "models":
        from repro.moe.config import MODEL_REGISTRY
        return [(name,
                 f"{cfg.config_group} e={cfg.num_experts} "
                 f"k={cfg.top_k} h={cfg.hidden_size} "
                 f"i={cfg.intermediate_size} act={cfg.activation}")
                for name, cfg in MODEL_REGISTRY.items()]
    if kind == "workloads":
        from repro.workloads import WORKLOADS
        return [(name, factory.describe())
                for name, factory in WORKLOADS.items()]
    if kind == "routers":
        from repro.serve.disagg import ROUTERS
        return [(name, (cls.__doc__ or "").strip().splitlines()[0]
                 if cls.__doc__ else "")
                for name, cls in ROUTERS.items()]
    raise ValueError(kind)


LIST_KINDS = ("engines", "kernels", "gpus", "links", "models",
              "workloads", "routers")


def cmd_list(argv: list[str]) -> int:
    """``repro list [kind]`` — print one registry, or all of them."""
    if argv and argv[0] in ("-h", "--help"):
        print("usage: repro list [" + "|".join(LIST_KINDS) + "]")
        return 0
    if len(argv) > 1:
        print("repro list: expected at most one registry kind",
              file=sys.stderr)
        return 2
    if argv and argv[0] not in LIST_KINDS:
        print(f"repro list: unknown registry {argv[0]!r}; known: "
              f"{', '.join(LIST_KINDS)}", file=sys.stderr)
        return 2
    kinds = [argv[0]] if argv else list(LIST_KINDS)
    for index, kind in enumerate(kinds):
        rows = _registry_rows(kind)
        if index:
            print()
        print(f"{kind} ({len(rows)}):")
        width = max(len(name) for name, _ in rows)
        for name, summary in rows:
            print(f"  {name:<{width}}  {summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: repro bench <subcommand> [options]\n"
              "       repro lint [paths] [--select CODES] "
              "[--format text|json]\n"
              "       repro list "
              "[engines|kernels|gpus|links|models|workloads|routers]\n"
              "       (see `repro bench --help` for bench subcommands)")
        return 0 if argv else 2
    if argv[0] == "bench":
        from repro.bench.cli import main as bench_main
        return bench_main(argv[1:])
    if argv[0] == "lint":
        from repro.analysis.cli import main as lint_main
        return lint_main(argv[1:])
    if argv[0] == "list":
        return cmd_list(argv[1:])
    print(f"repro: unknown command {argv[0]!r}; try `repro bench --help`, "
          f"`repro lint --help` or `repro list`", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
