"""Top-level dispatcher: ``python -m repro`` / the ``repro`` script.

``repro bench <subcommand>`` forwards to :mod:`repro.bench.cli`, so the
installed console script mirrors the module entry point::

    repro bench serve --engines samoyeds,vllm --trace poisson
    python -m repro bench maxbatch --gpu a100
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: repro bench <subcommand> [options]\n"
              "       (see `repro bench --help` for subcommands)")
        return 0 if argv else 2
    if argv[0] == "bench":
        from repro.bench.cli import main as bench_main
        return bench_main(argv[1:])
    print(f"repro: unknown command {argv[0]!r}; try `repro bench --help`",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
