"""Exception hierarchy for the Samoyeds reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Specific subclasses mirror the failure domains of the
system: format encoding, kernel configuration, hardware-model limits, MoE
configuration and memory capacity.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class FormatError(ReproError):
    """A sparse-format encode/decode precondition was violated."""


class PatternViolation(FormatError):
    """Data does not conform to the declared structured-sparsity pattern."""


class ShapeError(ReproError):
    """Matrix / tensor operands have incompatible or illegal shapes."""


class TilingError(ReproError):
    """A tiling configuration violates hardware or format constraints."""


class HardwareModelError(ReproError):
    """The hardware model was queried outside its supported envelope."""


class UnsupportedOnDevice(HardwareModelError):
    """The requested feature is missing on the target GPU (Table 1)."""


class ConfigError(ReproError):
    """An MoE / model configuration is inconsistent."""


class InternalError(ReproError):
    """An internal invariant of the library was violated.

    Raised where the code used to say ``assert``: unlike a bare
    ``assert`` these checks survive ``python -O``, and unlike
    :class:`ConfigError` they indicate a bug in :mod:`repro` itself
    rather than bad caller input (please report them).
    """


class SanitizerError(InternalError):
    """A runtime invariant check of the sim-sanitizer failed.

    Raised only when sanitizing is enabled (``REPRO_SANITIZE=1`` or
    ``sanitize=True``); carries the violated invariant's name and a
    structured ``subject`` dict naming the event/request/step involved
    so the failure points at the source, not a downstream percentile.
    """

    def __init__(self, invariant: str, message: str,
                 **subject: object) -> None:
        detail = ", ".join(f"{key}={value!r}"
                           for key, value in sorted(subject.items()))
        full = f"[{invariant}] {message}"
        if detail:
            full += f" ({detail})"
        super().__init__(full)
        self.invariant = invariant
        self.subject = dict(subject)


class CapacityError(ReproError):
    """A workload does not fit in device memory (OOM in the paper)."""

    def __init__(self, message: str, required_bytes: int = 0,
                 available_bytes: int = 0) -> None:
        super().__init__(message)
        self.required_bytes = int(required_bytes)
        self.available_bytes = int(available_bytes)


class RoutingError(ReproError):
    """Token routing produced an invalid assignment."""
