"""GPU hardware substrate.

This package is the reproduction's stand-in for real GPUs: it models the
architectural features the Samoyeds paper's performance claims rest on —
Sparse Tensor Core issue rates, the GPU memory hierarchy (DRAM transactions,
L2 cache, shared-memory banks), occupancy, and the multi-stage ``cp.async``
software pipeline.  Kernels in :mod:`repro.kernels` describe *what* they
load and compute per tile; this package turns that description into time.
"""

from repro.hw.spec import (
    GPUSpec,
    get_gpu,
    list_gpus,
    register_gpu,
)
from repro.hw.interconnect import (
    ClusterSpec,
    LinkSpec,
    ParallelPlan,
    get_link,
    list_links,
    make_cluster,
    parse_parallel,
    register_link,
)
from repro.hw.tensorcore import MmaShape, MMA_SP_SHAPES, MMA_DENSE_SHAPES
from repro.hw.simulator import CostBreakdown, KernelLaunch, simulate_kernel
from repro.hw.occupancy import OccupancyResult, compute_occupancy
from repro.hw.pipeline import PipelineModel
from repro.hw.roofline import RooflinePoint, place, ridge_intensity

__all__ = [
    "GPUSpec",
    "get_gpu",
    "list_gpus",
    "register_gpu",
    "ClusterSpec",
    "LinkSpec",
    "ParallelPlan",
    "get_link",
    "list_links",
    "make_cluster",
    "parse_parallel",
    "register_link",
    "MmaShape",
    "MMA_SP_SHAPES",
    "MMA_DENSE_SHAPES",
    "CostBreakdown",
    "KernelLaunch",
    "simulate_kernel",
    "OccupancyResult",
    "compute_occupancy",
    "PipelineModel",
    "RooflinePoint",
    "place",
    "ridge_intensity",
]
