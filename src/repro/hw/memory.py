"""DRAM transaction and shared-memory bank models.

The Samoyeds paper's Figure 6 argument is entirely about memory behaviour:
dual-side sparsity breaks tiles into fragments, and a naive kernel either
loads data it will not use (I/O amplification, cases ➋/➌) or issues
uncoalesced accesses (case ➍).  This module quantifies both effects.

All byte counts are *as seen by DRAM*: they include transaction rounding,
so a 2-byte element touched alone still costs a full 32-byte sector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.spec import GPUSpec
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class AccessPattern:
    """A strided 2-D access: ``rows`` segments of ``row_bytes`` each.

    ``contiguous`` marks whether consecutive segments are adjacent in
    memory (a fully packed tile) or separated by a larger stride (a tile
    cut out of a bigger matrix).
    """

    rows: int
    row_bytes: int
    contiguous: bool = False

    @property
    def useful_bytes(self) -> int:
        return self.rows * self.row_bytes


def dram_transactions(pattern: AccessPattern, spec: GPUSpec) -> int:
    """Number of DRAM sectors touched by one pass over ``pattern``."""
    check_positive(pattern.rows, "rows")
    check_positive(pattern.row_bytes, "row_bytes")
    txn_bytes = spec.dram_transaction_bytes
    if pattern.contiguous:
        return math.ceil(pattern.useful_bytes / txn_bytes)
    return pattern.rows * math.ceil(pattern.row_bytes / txn_bytes)


def dram_bytes(pattern: AccessPattern, spec: GPUSpec) -> int:
    """Bytes actually moved from DRAM for one pass over ``pattern``."""
    return dram_transactions(pattern, spec) * spec.dram_transaction_bytes


def coalescing_efficiency(pattern: AccessPattern, spec: GPUSpec) -> float:
    """Useful bytes / moved bytes, in (0, 1]."""
    moved_bytes = dram_bytes(pattern, spec)
    return (pattern.useful_bytes / moved_bytes
            if moved_bytes else 1.0)


def io_amplification(useful_bytes: int, loaded_bytes: int) -> float:
    """Figure 6 style amplification factor (>= 1)."""
    if useful_bytes <= 0:
        return 1.0
    return max(1.0, loaded_bytes / useful_bytes)


def gather_bytes(num_elements: int, element_bytes: int,
                 spec: GPUSpec) -> int:
    """DRAM bytes for a fully scattered gather (one sector per element).

    This is the cost model for unstructured formats (CSR/COO column
    gathers): every element potentially lands in its own 32-byte sector.
    """
    check_positive(element_bytes, "element_bytes")
    if num_elements <= 0:
        return 0
    per_sector = max(1, spec.dram_transaction_bytes // element_bytes)
    # Random columns still hit the same sector occasionally; assume the
    # adversarial (fully scattered) case, as Sputnik's own paper does.
    del per_sector
    return num_elements * spec.dram_transaction_bytes


def smem_bank_conflict_ways(stride_words: int, spec: GPUSpec) -> int:
    """Worst-case n-way bank conflict for a warp accessing with a stride.

    Threads ``t = 0..31`` access word addresses ``t * stride_words``;
    the number of threads that collide on one bank is
    ``gcd(stride_words, banks)`` (1 = conflict-free).
    A swizzled/permuted layout (§4.4) corresponds to ``stride_words = 1``.
    """
    banks = spec.smem_bank_count
    if stride_words <= 0:
        return banks  # broadcast-degenerate: all threads on one bank
    return math.gcd(stride_words, banks)


def smem_load_cycles(bytes_per_warp: int, conflict_ways: int,
                     spec: GPUSpec) -> float:
    """Cycles for one warp to read ``bytes_per_warp`` from shared memory.

    Shared memory serves 32 x 4-byte words per cycle per SM partition; an
    n-way conflict serialises into n passes.
    """
    words = math.ceil(bytes_per_warp / 4)
    accesses = math.ceil(words / spec.smem_bank_count)
    return accesses * max(1, conflict_ways)
