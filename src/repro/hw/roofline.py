"""Roofline analysis over the GPU model.

The paper's performance arguments are roofline arguments: dense GEMMs sit
on the compute roof, dual-side sparse kernels cut required FLOPs 8x and
bytes ~3.5x, and whether that translates to speedup depends on where the
resulting arithmetic intensity lands relative to the device balance.
This module makes those arguments explicit and queryable — used by the
portability analysis and available to users sizing workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.simulator import CostBreakdown
from repro.hw.spec import GPUSpec
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on a device's roofline."""

    name: str
    flops: float
    bytes_moved: float
    achieved_flops_per_s: float
    spec_name: str
    compute_roof: float
    memory_roof: float

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte."""
        return self.flops / self.bytes_moved if self.bytes_moved else 0.0

    @property
    def attainable(self) -> float:
        """Roofline bound at this intensity."""
        return min(self.compute_roof,
                   self.memory_roof * self.arithmetic_intensity)

    @property
    def efficiency(self) -> float:
        """Achieved / attainable, in (0, 1] for a sound model."""
        return (self.achieved_flops_per_s / self.attainable
                if self.attainable else 0.0)

    @property
    def bound(self) -> str:
        """"compute" or "memory" — which roof caps this kernel."""
        if self.compute_roof <= self.memory_roof * self.arithmetic_intensity:
            return "compute"
        return "memory"


def ridge_intensity(spec: GPUSpec, sparse: bool = False) -> float:
    """Arithmetic intensity where the roofs meet (FLOPs/byte)."""
    roof = spec.sparse_tc_flops if sparse else spec.dense_tc_flops
    return roof / spec.dram_bandwidth


def place(cost: CostBreakdown, spec: GPUSpec,
          sparse: bool = False,
          zero_skip_factor: float = 1.0) -> RooflinePoint:
    """Place a simulated kernel cost on the device roofline.

    Args:
        cost: Simulated kernel cost, with *effective* FLOPs (zeros
            counted, as the paper plots throughput).
        spec: Target device.
        sparse: Use the ``mma.sp`` compute roof (2x dense).
        zero_skip_factor: Extra effective-FLOP multiplier from pattern
            levels the hardware skips *in addition to* the 2:4 (e.g.
            Samoyeds' sub-row selection skips M/N of the work, so its
            effective roof is ``sparse_roof * M/N``).
    """
    check_positive(cost.time_s, "cost.time_s")
    check_positive(zero_skip_factor, "zero_skip_factor")
    roof = spec.sparse_tc_flops if sparse else spec.dense_tc_flops
    return RooflinePoint(
        name=cost.name,
        flops=cost.flops,
        bytes_moved=max(cost.dram_bytes, 1.0),
        achieved_flops_per_s=cost.flops / cost.time_s,
        spec_name=spec.name,
        compute_roof=roof * zero_skip_factor,
        memory_roof=spec.dram_bandwidth,
    )


def render(points: list[RooflinePoint], width: int = 56) -> str:
    """Text roofline: one bar per kernel, scaled to the compute roof.

    A coarse visual for terminals; the structured data carries the real
    information.
    """
    if not points:
        return "(no roofline points)"
    roof = max(p.compute_roof for p in points)
    lines = [f"roofline on {points[0].spec_name} "
             f"(bar = achieved / compute roof)"]
    for p in points:
        frac = min(1.0, p.achieved_flops_per_s / roof)
        bar = "#" * max(1, int(frac * width))
        lines.append(
            f"{p.name:>12s} |{bar:<{width}s}| "
            f"{p.achieved_flops_per_s / 1e12:7.1f} TF/s "
            f"AI={p.arithmetic_intensity:7.1f} [{p.bound}]")
    return "\n".join(lines)
