"""Kernel-launch performance simulator.

A :class:`KernelLaunch` is the contract between kernels and hardware: the
kernel describes its grid, per-block resource footprint and per-iteration
compute/memory demands; :func:`simulate_kernel` folds in occupancy, L2
reuse, DRAM bandwidth sharing, warp-level latency hiding, pipeline overlap
and wave quantization to produce a :class:`CostBreakdown`.

The model is analytical (no cycle-accurate event loop) but derives every
term from the same quantities a real profile would show — FLOPs issued,
sectors moved, warps resident — so relative comparisons between kernels
track the paper's measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hw.cache import (
    l1_thrash_factor,
    l2_hit_fraction,
    l2_reuse_count,
    wave_working_set,
)
from repro.hw.occupancy import BlockResources, compute_occupancy
from repro.hw.pipeline import DEFAULT_PIPELINE_STAGES, PipelineModel
from repro.hw.spec import GPUSpec
from repro.utils.validation import check_positive

#: Resident warps per SM needed to fully hide tensor-core/memory latency.
#: Tensor-core pipelines expose high ILP per warp, so a handful of warps
#: per SM suffices; only very small launches pay an issue-efficiency tax.
WARPS_FOR_PEAK = 4


@dataclass(frozen=True)
class KernelLaunch:
    """Everything the simulator needs to know about one kernel launch.

    Attributes:
        name: Label for reports.
        grid_blocks: Thread blocks in the grid.
        grid_n: Blocks along the output-column dimension (L2 geometry).
        block: Per-block resource footprint.
        iters_per_block: k-loop trip count per block.
        compute_cycles_per_iter: SM cycles of MMA/SIMT issue per iteration
            of one block (tensor-core issue bandwidth already applied).
        smem_cycles_per_iter: Shared->register cycles per iteration of one
            block, including bank-conflict serialisation.  These dual-issue
            with MMA work: the slower of the two pipes bounds the stage.
        dram_bytes_per_iter: Global->shared bytes per iteration of one
            block (transaction-rounded; before L2 filtering).
        a_stripe_bytes: Operand-A bytes an output-row stripe keeps live in
            L2 per k-slice (blocks progress in near-lockstep, so only a
            few slices are resident at once).
        b_stripe_bytes: Same for the B operand per output-column stripe.
        epilogue_bytes: Output bytes written back per block.
        prologue_bytes: One-time loads before the loop (e.g. the SEL array).
        pipeline_stages: Software-pipeline depth (Algorithm 1).
        efficiency: Implementation quality in (0, 1]: fraction of the
            modelled compute rate the real kernel sustains.  A documented
            per-kernel calibration constant, not a per-experiment knob.
    """

    name: str
    grid_blocks: int
    grid_n: int
    block: BlockResources
    iters_per_block: int
    compute_cycles_per_iter: float
    smem_cycles_per_iter: float
    dram_bytes_per_iter: float
    a_stripe_bytes: float = 0.0
    b_stripe_bytes: float = 0.0
    epilogue_bytes: float = 0.0
    prologue_bytes: float = 0.0
    pipeline_stages: int = DEFAULT_PIPELINE_STAGES
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.grid_blocks, "grid_blocks")
        check_positive(self.iters_per_block, "iters_per_block")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(
                f"efficiency must be in (0, 1], got {self.efficiency}")


@dataclass(frozen=True)
class CostBreakdown:
    """Simulated cost of one kernel launch (or an aggregate of launches)."""

    name: str
    time_s: float
    flops: float
    useful_bytes: float
    dram_bytes: float
    compute_time_s: float
    memory_time_s: float
    epilogue_time_s: float
    launch_overhead_s: float
    waves: int
    occupancy: float
    l2_hit_fraction: float
    limiter: str
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def tflops(self) -> float:
        """Effective throughput in TFLOP/s (zeros counted, like the paper)."""
        return self.flops / self.time_s / 1e12 if self.time_s > 0 else 0.0

    @property
    def achieved_bandwidth(self) -> float:
        return self.dram_bytes / self.time_s if self.time_s > 0 else 0.0

    def speedup_over(self, other: "CostBreakdown") -> float:
        """``other.time / self.time`` — how much faster ``self`` is."""
        if self.time_s <= 0:
            return math.inf
        return other.time_s / self.time_s


def simulate_kernel(launch: KernelLaunch, spec: GPUSpec,
                    flops: float = 0.0,
                    useful_bytes: float = 0.0) -> CostBreakdown:
    """Turn a :class:`KernelLaunch` description into time.

    Args:
        launch: The launch descriptor produced by a kernel's cost model.
        spec: Target device.
        flops: Effective FLOPs of the whole launch (for throughput reports).
        useful_bytes: Algorithmically required bytes (for I/O-amplification
            reports); defaults to the modelled DRAM traffic.
    """
    occ = compute_occupancy(launch.block, spec)
    clock_hz = spec.clock_ghz * 1e9

    # --- how many blocks actually run concurrently -----------------------
    blocks_per_sm = min(occ.blocks_per_sm,
                        max(1, math.ceil(launch.grid_blocks / spec.sm_count)))
    concurrent_blocks = min(launch.grid_blocks, spec.sm_count * blocks_per_sm)
    waves = math.ceil(launch.grid_blocks / (spec.sm_count * blocks_per_sm))
    resident_warps = blocks_per_sm * launch.block.warps

    # --- latency hiding ---------------------------------------------------
    issue_eff = min(1.0, resident_warps / WARPS_FOR_PEAK)
    issue_eff = max(issue_eff, 1.0 / WARPS_FOR_PEAK)

    # --- L2 reuse between concurrent blocks ------------------------------
    working_set = wave_working_set(launch.a_stripe_bytes,
                                   launch.b_stripe_bytes,
                                   concurrent_blocks, max(launch.grid_n, 1))
    reuse = l2_reuse_count(concurrent_blocks, max(launch.grid_n, 1))
    cache = l2_hit_fraction(int(working_set), spec.l2_bytes, reuse)

    # --- per-iteration stage times (for one block) ------------------------
    # ldmatrix/lds traffic issues on the LSU pipe while mma occupies the
    # tensor-core pipe; the compute stage is bounded by the slower pipe.
    thrash = l1_thrash_factor(resident_warps)
    compute_cycles = max(launch.compute_cycles_per_iter,
                         launch.smem_cycles_per_iter * thrash)
    compute_per_iter = (compute_cycles * blocks_per_sm
                        / clock_hz / issue_eff / launch.efficiency)

    eff_bytes_per_iter = launch.dram_bytes_per_iter * (1.0 - cache.hit_fraction)
    fetch_per_iter = (eff_bytes_per_iter * concurrent_blocks
                      / spec.dram_bandwidth)

    pipe = PipelineModel(launch.pipeline_stages)
    block_loop = pipe.loop_time(launch.iters_per_block, fetch_per_iter,
                                compute_per_iter, spec)

    # --- epilogue / prologue ----------------------------------------------
    epilogue = (launch.epilogue_bytes * concurrent_blocks
                / spec.dram_bandwidth)
    prologue = launch.prologue_bytes / spec.dram_bandwidth

    time_s = (waves * (block_loop + epilogue)
              + prologue + spec.kernel_launch_overhead_s)

    total_dram = (launch.dram_bytes_per_iter * launch.iters_per_block
                  * launch.grid_blocks * (1.0 - cache.hit_fraction)
                  + launch.epilogue_bytes * launch.grid_blocks
                  + launch.prologue_bytes)
    compute_time = (launch.compute_cycles_per_iter * launch.iters_per_block
                    * launch.grid_blocks
                    / (spec.sm_count * clock_hz * launch.efficiency))
    memory_time = total_dram / spec.dram_bandwidth

    return CostBreakdown(
        name=launch.name,
        time_s=time_s,
        flops=flops,
        useful_bytes=useful_bytes if useful_bytes else total_dram,
        dram_bytes=total_dram,
        compute_time_s=compute_time,
        memory_time_s=memory_time,
        epilogue_time_s=waves * epilogue,
        launch_overhead_s=spec.kernel_launch_overhead_s,
        waves=waves,
        occupancy=occ.occupancy,
        l2_hit_fraction=cache.hit_fraction,
        limiter=occ.limiter,
        detail={
            "blocks_per_sm": float(blocks_per_sm),
            "concurrent_blocks": float(concurrent_blocks),
            "resident_warps": float(resident_warps),
            "issue_efficiency": issue_eff,
            "l1_thrash": thrash,
            "fetch_per_iter_s": fetch_per_iter,
            "compute_per_iter_s": compute_per_iter,
            "block_loop_s": block_loop,
        },
    )


def combine(name: str, parts: list[CostBreakdown]) -> CostBreakdown:
    """Aggregate sequentially executed launches into one breakdown."""
    if not parts:
        raise ValueError("combine() needs at least one CostBreakdown")
    return CostBreakdown(
        name=name,
        time_s=sum(p.time_s for p in parts),
        flops=sum(p.flops for p in parts),
        useful_bytes=sum(p.useful_bytes for p in parts),
        dram_bytes=sum(p.dram_bytes for p in parts),
        compute_time_s=sum(p.compute_time_s for p in parts),
        memory_time_s=sum(p.memory_time_s for p in parts),
        epilogue_time_s=sum(p.epilogue_time_s for p in parts),
        launch_overhead_s=sum(p.launch_overhead_s for p in parts),
        waves=sum(p.waves for p in parts),
        occupancy=min(p.occupancy for p in parts),
        l2_hit_fraction=sum(p.l2_hit_fraction * p.dram_bytes for p in parts)
        / max(sum(p.dram_bytes for p in parts), 1.0),
        limiter="combined",
        detail={"launches": float(len(parts))},
    )
