"""Device topology: interconnect links, clusters and parallel plans.

The paper evaluates Samoyeds on a single GPU; production MoE serving
shards experts across devices, and whether the single-device wins
survive depends on the interconnect.  This module supplies the three
pieces the rest of the stack threads through:

* :class:`LinkSpec` — an alpha-beta model of one interconnect
  generation (fixed per-message latency ``alpha`` plus inverse
  bandwidth ``beta``), with a registry covering NVLink, PCIe and
  InfiniBand;
* :class:`ClusterSpec` — N :class:`~repro.hw.spec.GPUSpec` devices
  joined by an intra-node link (and optionally a slower inter-node
  link once a collective spans nodes), pricing p2p transfers,
  ring all-reduce and all-to-all exchanges;
* :class:`ParallelPlan` — the (expert-parallel, tensor-parallel,
  data-parallel) degrees carried on
  :class:`~repro.context.ExecutionContext`, plus the
  ``ep=4,tp=2`` command-line syntax via :func:`parse_parallel`.

Collective costs follow the standard alpha-beta forms (Thakur et al.):
a ring all-reduce moves ``2 (p-1)/p`` of the buffer through every
device; an all-to-all sends each device's ``(p-1)/p`` share pairwise.
Both are exactly zero for a single-device group, which is what keeps
the default ``ParallelPlan(ep=1, tp=1)`` path bit-identical to the
single-GPU stack.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError, HardwareModelError
from repro.hw.spec import GPUSpec
from repro.registry.core import Registry

#: Bytes per activation element moved by the boundary collectives
#: (fp16 hidden states) — the single source for every comm-byte count.
ACT_BYTES = 2


# ----------------------------------------------------------------------
# Links
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LinkSpec:
    """Alpha-beta model of one interconnect link.

    Attributes:
        name: Registry key.
        latency_s: Per-message fixed cost (the ``alpha`` term).
        bandwidth: Sustained point-to-point bandwidth in bytes/second
            (the inverse of the ``beta`` term).
    """

    name: str
    latency_s: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigError(f"link {self.name}: negative latency")
        if self.bandwidth <= 0:
            raise ConfigError(f"link {self.name}: bandwidth must be "
                              f"positive")

    def transfer_seconds(self, nbytes: float) -> float:
        """One point-to-point message of ``nbytes``: alpha + n * beta."""
        if nbytes < 0:
            raise ConfigError("cannot transfer a negative byte count")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth

    def with_overrides(self, **kwargs: object) -> "LinkSpec":
        """Copy with fields replaced (bandwidth what-if studies)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: The interconnect registry (NVLink/PCIe/IB plus caller additions).
LINK_REGISTRY: Registry[LinkSpec] = Registry("link",
                                             error_cls=HardwareModelError)

# Legacy private alias kept for external callers of the old module API.
_LINKS = LINK_REGISTRY


def register_link(link: LinkSpec, replace: bool = False) -> LinkSpec:
    """Add ``link`` to the registry; collisions raise unless replacing
    (mirrors :func:`repro.hw.spec.register_gpu`)."""
    return LINK_REGISTRY.register(link.name, link, replace=replace)


def get_link(name: str) -> LinkSpec:
    """Look up a registered link by name (did-you-mean on a miss)."""
    return LINK_REGISTRY.get(name)


def list_links() -> list[str]:
    """Names of all registered links, sorted."""
    return LINK_REGISTRY.names()


#: Public datasheet-order numbers; as with the GPU registry, ratios
#: matter more than absolutes.
NVLINK4 = register_link(LinkSpec(name="nvlink", latency_s=1.5e-6,
                                 bandwidth=450e9))
PCIE_GEN4 = register_link(LinkSpec(name="pcie4", latency_s=4.0e-6,
                                   bandwidth=32e9))
IB_NDR = register_link(LinkSpec(name="ib", latency_s=8.0e-6,
                                bandwidth=50e9))
#: The free-handoff limit: every transfer over it costs exactly zero
#: seconds.  Used by degenerate disaggregated configs (a single pool
#: serving both phases) to assert that a zero-cost KV hop reproduces
#: the colocated report byte for byte.
ZERO_COPY = register_link(LinkSpec(name="zero-copy", latency_s=0.0,
                                   bandwidth=float("inf")))

DEFAULT_LINK = NVLINK4


# ----------------------------------------------------------------------
# Parallel plans
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ParallelPlan:
    """How one model forward is spread over devices.

    Attributes:
        ep: Expert-parallel degree — routed experts are partitioned
            over ``ep`` devices; tokens reach their experts through a
            dispatch/combine all-to-all.
        tp: Tensor-parallel degree — every GEMM (attention QKVO and
            each expert's projections) is column/row sharded over
            ``tp`` devices with an all-reduce at the attention and MLP
            output boundaries.
        dp: Data-parallel replication — whole-model replicas serving
            disjoint request streams.

    The device grid is ``ep * tp * dp`` wide; ``ParallelPlan()`` is the
    single-GPU identity plan under which every cost reduces exactly to
    the pre-cluster stack.
    """

    ep: int = 1
    tp: int = 1
    dp: int = 1

    def __post_init__(self) -> None:
        for name in ("ep", "tp", "dp"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigError(
                    f"parallel degree {name} must be a positive integer, "
                    f"got {value!r}")

    @property
    def num_devices(self) -> int:
        return self.ep * self.tp * self.dp

    @property
    def is_trivial(self) -> bool:
        """True for the single-GPU identity plan."""
        return self.num_devices == 1

    def describe(self) -> str:
        return f"ep={self.ep},tp={self.tp},dp={self.dp}"

    def to_dict(self) -> dict[str, int]:
        return {"ep": self.ep, "tp": self.tp, "dp": self.dp,
                "num_devices": self.num_devices}

    @classmethod
    def from_any(cls, value: "ParallelPlan | str | dict | None"
                 ) -> "ParallelPlan":
        """Coerce any accepted plan syntax to a :class:`ParallelPlan`.

        Accepts an existing plan, ``None`` (the identity plan), the
        ``ep=4,tp=2`` string syntax, or a mapping with ``ep``/``tp``/
        ``dp`` keys (the derived ``num_devices`` key of :meth:`to_dict`
        payloads is tolerated and ignored).
        """
        if value is None:
            return TRIVIAL_PLAN
        if isinstance(value, ParallelPlan):
            return value
        if isinstance(value, str):
            return parse_parallel(value)
        if isinstance(value, dict):
            degrees = {k: v for k, v in value.items()
                       if k != "num_devices"}
            unknown = set(degrees) - {"ep", "tp", "dp"}
            if unknown:
                raise ConfigError(
                    f"unknown parallel keys {sorted(unknown)}; known "
                    f"keys: ep, tp, dp")
            return cls(**degrees)
        raise ConfigError(
            f"cannot build a ParallelPlan from {type(value).__name__}; "
            f"expected a plan, 'ep=4,tp=2' string or mapping")


#: The single-GPU identity plan (shared default instance).
TRIVIAL_PLAN = ParallelPlan()


def parse_parallel(text: str | None) -> ParallelPlan:
    """Parse the ``ep=4,tp=2`` command-line syntax.

    Accepts any comma-separated subset of ``ep``/``tp``/``dp``
    assignments (omitted degrees default to 1); rejects unknown keys,
    non-integer or non-positive values and malformed fragments with
    :class:`~repro.errors.ConfigError`.
    """
    if text is None or not text.strip():
        return TRIVIAL_PLAN
    degrees: dict[str, int] = {}
    for fragment in text.split(","):
        fragment = fragment.strip()
        if not fragment:
            continue
        key, sep, value = fragment.partition("=")
        key = key.strip()
        if not sep:
            raise ConfigError(
                f"malformed parallel spec {fragment!r}; expected "
                f"key=value (e.g. ep=4,tp=2)")
        if key not in ("ep", "tp", "dp"):
            raise ConfigError(
                f"unknown parallel key {key!r}; known keys: ep, tp, dp")
        if key in degrees:
            raise ConfigError(f"duplicate parallel key {key!r}")
        try:
            degrees[key] = int(value.strip())
        except ValueError:
            raise ConfigError(
                f"parallel degree {key} must be an integer, got "
                f"{value.strip()!r}") from None
    return ParallelPlan(**degrees)


# ----------------------------------------------------------------------
# Clusters
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ClusterSpec:
    """N devices joined by an interconnect.

    Attributes:
        gpus: The member devices (homogeneous in the common case; the
            per-device memory ledgers support heterogeneous capacity).
        link: Intra-node link joining devices within one node.
        devices_per_node: Node width; ``None`` means one flat node.
        inter_node_link: Link used once a collective group spans more
            than one node (defaults to the intra-node link).
    """

    gpus: tuple[GPUSpec, ...]
    link: LinkSpec = DEFAULT_LINK
    devices_per_node: int | None = None
    inter_node_link: LinkSpec | None = None

    def __post_init__(self) -> None:
        if not self.gpus:
            raise ConfigError("a cluster needs at least one device")
        if self.devices_per_node is not None and self.devices_per_node <= 0:
            raise ConfigError("devices_per_node must be positive")

    @classmethod
    def homogeneous(cls, gpu: GPUSpec, num_devices: int,
                    link: LinkSpec | str = DEFAULT_LINK,
                    devices_per_node: int | None = None,
                    inter_node_link: LinkSpec | str | None = None
                    ) -> "ClusterSpec":
        """The common case: ``num_devices`` copies of one GPU model."""
        if num_devices <= 0:
            raise ConfigError("num_devices must be positive")
        if isinstance(link, str):
            link = get_link(link)
        if isinstance(inter_node_link, str):
            inter_node_link = get_link(inter_node_link)
        return cls(gpus=(gpu,) * num_devices, link=link,
                   devices_per_node=devices_per_node,
                   inter_node_link=inter_node_link)

    @property
    def num_devices(self) -> int:
        return len(self.gpus)

    def device(self, index: int) -> GPUSpec:
        if not 0 <= index < self.num_devices:
            raise ConfigError(
                f"device index {index} out of range for "
                f"{self.num_devices}-device cluster")
        return self.gpus[index]

    def group_link(self, group_size: int) -> LinkSpec:
        """Effective link for a collective over ``group_size`` devices.

        The slowest hop bounds the collective: once the group spans
        more than one node, the inter-node link prices it.
        """
        if (self.devices_per_node is not None
                and group_size > self.devices_per_node
                and self.inter_node_link is not None):
            return self.inter_node_link
        return self.link

    # -- alpha-beta collective costs -----------------------------------
    def p2p_seconds(self, nbytes: float) -> float:
        """One point-to-point transfer between two cluster devices."""
        return self.link.transfer_seconds(nbytes)

    def allreduce_seconds(self, nbytes: float, group_size: int) -> float:
        """Ring all-reduce of an ``nbytes`` buffer over ``group_size``
        devices: ``2 (p-1)`` latency hops, ``2 (p-1)/p`` of the buffer
        through the link.  Zero for a single-device group."""
        if group_size <= 0:
            raise ConfigError("group_size must be positive")
        if group_size == 1 or nbytes <= 0:
            return 0.0
        link = self.group_link(group_size)
        hops = 2 * (group_size - 1)
        moved = 2.0 * (group_size - 1) / group_size * nbytes
        return hops * link.latency_s + moved / link.bandwidth

    def alltoall_seconds(self, nbytes_per_device: float,
                         group_size: int) -> float:
        """All-to-all where every device holds ``nbytes_per_device`` and
        exchanges its ``(p-1)/p`` remote share pairwise.  Zero for a
        single-device group."""
        if group_size <= 0:
            raise ConfigError("group_size must be positive")
        if group_size == 1 or nbytes_per_device <= 0:
            return 0.0
        link = self.group_link(group_size)
        moved = (group_size - 1) / group_size * nbytes_per_device
        return (group_size - 1) * link.latency_s + moved / link.bandwidth

    def describe(self) -> str:
        gpu = self.gpus[0].name
        if all(g.name == gpu for g in self.gpus):
            return f"{self.num_devices}x{gpu} over {self.link.name}"
        names = "+".join(g.name for g in self.gpus)
        return f"{names} over {self.link.name}"


def make_cluster(gpu: GPUSpec, parallel: ParallelPlan,
                 link: LinkSpec | str = DEFAULT_LINK) -> ClusterSpec:
    """Cluster sized to carry ``parallel`` on copies of ``gpu``."""
    return ClusterSpec.homogeneous(gpu, parallel.num_devices, link)
