"""Software-pipeline (``cp.async``) timing model.

Algorithm 1 of the paper overlaps a *fetch* stage (global -> shared copies
committed in groups) with a *compute* stage (shared -> register loads and
``mma.sp`` issues).  With ``s`` pipeline stages, steady-state throughput is
limited by the slower of the two stages; the pipeline pays a fill cost of
``min(s, iters)`` fetch stages up front and one compute stage at drain.

Devices without hardware async copy (Table 1's AMD rows) cannot overlap:
fetch and compute serialise, which is exactly why the paper marks them as
requiring emulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TilingError
from repro.hw.spec import GPUSpec


@dataclass(frozen=True)
class PipelineModel:
    """Timing of a ``num_iters``-deep fetch/compute loop."""

    stages: int

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise TilingError(f"pipeline needs >= 1 stage, got {self.stages}")

    def loop_time(self, num_iters: int, fetch_time: float,
                  compute_time: float, spec: GPUSpec) -> float:
        """Total seconds for the pipelined k-loop of one thread block.

        Args:
            num_iters: Number of k-loop iterations (``k / k_b``).
            fetch_time: Seconds of global->shared traffic per iteration.
            compute_time: Seconds of compute (+ shared->reg) per iteration.
            spec: Target device; controls whether overlap is possible.
        """
        if num_iters <= 0:
            return 0.0
        if not spec.has_async_copy or self.stages == 1:
            # No overlap: every iteration pays fetch + compute serially.
            return num_iters * (fetch_time + compute_time)
        fill = min(self.stages, num_iters) * fetch_time
        # Imperfect overlap: when one stage dominates, the shorter stage
        # still pokes through occasionally (commit-group granularity);
        # deeper pipelines smooth more of it away.
        imbalance = abs(fetch_time - compute_time) / self.stages
        steady = num_iters * (max(fetch_time, compute_time)
                              + imbalance / self.stages)
        drain = compute_time
        return fill + steady + drain

    def smem_footprint(self, tile_bytes_per_stage: int) -> int:
        """Shared memory consumed by the multi-stage buffers."""
        return self.stages * tile_bytes_per_stage

    def stall_fraction(self, fetch_time: float, compute_time: float,
                       spec: GPUSpec) -> float:
        """Fraction of steady-state time the compute units sit idle.

        Used by the portability analysis (§6.6): a device with faster
        memory relative to compute (A100 vs 4070S) shifts the balance and
        changes which kernels stall.
        """
        if fetch_time <= 0 and compute_time <= 0:
            return 0.0
        if not spec.has_async_copy or self.stages == 1:
            total = fetch_time + compute_time
            return fetch_time / total if total > 0 else 0.0
        bound = max(fetch_time, compute_time)
        if bound <= 0:
            return 0.0
        return max(0.0, (fetch_time - compute_time) / bound)


DEFAULT_PIPELINE_STAGES = 3
