"""L2 / L1 cache behaviour model.

Two cache effects shape the paper's curves:

* **L2 reuse across thread blocks** — blocks in the same wave that share an
  operand tile (all blocks in one output-row stripe read the same A tile;
  all blocks in one column stripe read the same B tile) hit in L2 after the
  first reader, provided the wave's working set fits.  This is what makes
  throughput scale with ``n`` in Figure 13 and is the quantity the A100
  adaptation of Table 6 manipulates by shrinking tiles.

* **L1 eviction under heavy multi-warp scheduling** — the paper observes a
  dip at dimension 4096 caused by warp switches evicting L1 lines (§6.1.2).
  :func:`l1_thrash_factor` reproduces the dip: beyond a warp-pressure
  threshold the model charges a fraction of shared-operand reloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheOutcome:
    """Result of an L2 working-set analysis for one kernel wave."""

    working_set_bytes: int
    capacity_bytes: int
    hit_fraction: float

    @property
    def fits(self) -> bool:
        return self.working_set_bytes <= self.capacity_bytes


def l2_hit_fraction(working_set_bytes: int, l2_bytes: int,
                    reuse_count: float) -> CacheOutcome:
    """Fraction of repeated-operand traffic served by L2.

    Args:
        working_set_bytes: Bytes of shared operands live during one wave.
        l2_bytes: Device L2 capacity.
        reuse_count: How many blocks read each shared byte during the wave.

    A byte read ``r`` times costs 1 DRAM read plus ``r - 1`` L2 hits when
    the set fits; when the set exceeds capacity the surviving fraction
    decays with the overflow ratio (a standard LRU-overfetch approximation).
    """
    if reuse_count <= 1.0 or working_set_bytes <= 0:
        return CacheOutcome(working_set_bytes, l2_bytes, 0.0)
    ideal = (reuse_count - 1.0) / reuse_count
    if working_set_bytes <= l2_bytes:
        return CacheOutcome(working_set_bytes, l2_bytes, ideal)
    survive = l2_bytes / working_set_bytes
    return CacheOutcome(working_set_bytes, l2_bytes, ideal * survive)


def l1_thrash_factor(resident_warps_per_sm: int, warp_threshold: int = 24,
                     penalty: float = 0.15) -> float:
    """Multiplier (>= 1) on shared-memory traffic from L1 line eviction.

    Below ``warp_threshold`` resident warps the L1/texture path keeps warp
    working sets live and the factor is 1.0.  Beyond it, every additional
    warp adds ``penalty`` worth of reload traffic, saturating at 2x — the
    magnitude of the 4096-dip the paper measured (76.38% hit-rate drop is
    on the hit *rate*, which translates to a bounded traffic increase).
    """
    if resident_warps_per_sm <= warp_threshold:
        return 1.0
    over = resident_warps_per_sm - warp_threshold
    return min(2.0, 1.0 + penalty * over / 8.0)


def effective_dram_bytes(raw_bytes: float, hit_fraction: float) -> float:
    """DRAM bytes after L2 filtering."""
    hit_fraction = min(max(hit_fraction, 0.0), 1.0)
    return raw_bytes * (1.0 - hit_fraction)


def wave_working_set(a_stripe_bytes: float, b_stripe_bytes: float,
                     blocks_in_wave: int, grid_n: int) -> float:
    """Approximate bytes of shared operand data live during one wave.

    A wave of ``blocks_in_wave`` blocks covers roughly
    ``blocks_in_wave / grid_n`` output-row stripes (each sharing an A
    stripe) and up to ``grid_n`` column stripes (each sharing a B stripe).
    """
    if blocks_in_wave <= 0:
        return 0.0
    row_stripes = max(1.0, blocks_in_wave / max(grid_n, 1))
    col_stripes = min(float(grid_n), float(blocks_in_wave))
    return row_stripes * a_stripe_bytes + col_stripes * b_stripe_bytes


def l2_reuse_count(blocks_in_wave: int, grid_n: int) -> float:
    """Mean number of same-wave readers of each shared operand byte."""
    if blocks_in_wave <= 1:
        return 1.0
    row_share = min(float(grid_n), float(blocks_in_wave))
    col_share = max(1.0, blocks_in_wave / max(grid_n, 1))
    return math.sqrt(row_share * col_share)
