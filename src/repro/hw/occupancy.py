"""Occupancy calculator.

Mirrors the CUDA occupancy calculator: how many thread blocks of a given
resource footprint fit on one SM simultaneously, limited by shared memory,
registers, warp slots and the hardware block limit.  Occupancy drives two
phenomena the paper leans on:

* small problems under-fill the device (Figure 13's rising edge);
* tile-size choices trade L2 locality against SM parallelism (Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TilingError
from repro.hw.spec import GPUSpec
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BlockResources:
    """Per-thread-block resource footprint."""

    warps: int
    smem_bytes: int
    registers_per_thread: int = 64

    def __post_init__(self) -> None:
        check_positive(self.warps, "warps")
        if self.smem_bytes < 0:
            raise TilingError("smem_bytes must be non-negative")
        check_positive(self.registers_per_thread, "registers_per_thread")


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy computation."""

    blocks_per_sm: int
    warps_per_sm: int
    limiter: str

    @property
    def occupancy(self) -> float:
        """Resident warps as a fraction of the queried SM's warp slots."""
        return self._occupancy

    _occupancy: float = 0.0


def compute_occupancy(res: BlockResources, spec: GPUSpec) -> OccupancyResult:
    """Blocks resident per SM and the limiting resource.

    Raises :class:`TilingError` if even a single block exceeds SM
    resources, matching a real launch failure.
    """
    limits: dict[str, int] = {}
    limits["blocks"] = spec.max_blocks_per_sm
    limits["warps"] = spec.max_warps_per_sm // res.warps
    if res.smem_bytes > 0:
        limits["smem"] = spec.smem_per_sm // res.smem_bytes
    regs_per_block = res.registers_per_thread * res.warps * spec.warp_size
    limits["registers"] = spec.registers_per_sm // max(regs_per_block, 1)

    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    if blocks <= 0:
        raise TilingError(
            f"block needs more {limiter} than one SM offers on {spec.name}: "
            f"warps={res.warps}, smem={res.smem_bytes}B, "
            f"regs/thread={res.registers_per_thread}"
        )
    warps = blocks * res.warps
    frac = min(1.0, warps / spec.max_warps_per_sm)
    return OccupancyResult(blocks_per_sm=blocks, warps_per_sm=warps,
                           limiter=limiter, _occupancy=frac)


def parallel_efficiency(total_warps: int, spec: GPUSpec,
                        warps_for_peak_per_sm: int = 12) -> float:
    """Fraction of peak issue rate achievable with this much parallelism.

    A device needs roughly ``warps_for_peak_per_sm`` resident warps per SM
    to hide tensor-core and memory latency; below that, throughput scales
    linearly with available warps.  This reproduces the paper's observation
    that m=256 / n=256 kernels underperform (§6.1.2).
    """
    check_positive(warps_for_peak_per_sm, "warps_for_peak_per_sm")
    needed = spec.sm_count * warps_for_peak_per_sm
    if total_warps >= needed:
        return 1.0
    return max(total_warps / needed, 1.0 / needed)


def wave_quantization(grid_blocks: int, blocks_per_sm: int,
                      spec: GPUSpec) -> float:
    """Slow-down factor (>= 1) from partially filled final waves.

    A grid executes in ``ceil(grid / (SMs * blocks_per_sm))`` waves; the
    last wave runs at full latency even when nearly empty.  Large grids
    amortise the tail (the paper's 8192 recovery), small grids pay it.
    """
    check_positive(grid_blocks, "grid_blocks")
    check_positive(blocks_per_sm, "blocks_per_sm")
    slots = spec.sm_count * blocks_per_sm
    full, rem = divmod(grid_blocks, slots)
    if rem == 0:
        return 1.0
    exact_waves = grid_blocks / slots
    return (full + 1) / exact_waves
