"""GPU specification registry.

Each :class:`GPUSpec` captures the handful of architectural parameters the
Samoyeds performance model depends on.  The registry covers every device the
paper evaluates or discusses (Table 1, §6.6): the RTX 4070 Super development
platform, the RTX 3090 / 4090 / A100 porting targets, H100, and the AMD
entries of Table 1 (MI300 has a sparse ALU but no ``cp.async`` /
``ldmatrix`` equivalents; W7900 lacks the sparse ALU entirely).

Numbers are public datasheet values.  The absolute values matter less than
their ratios — the reproduction reports relative speedups, exactly as the
paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import HardwareModelError
from repro.registry.core import Registry
from repro.utils.units import GIB, KIB, MIB


@dataclass(frozen=True)
class GPUSpec:
    """Architectural description of one GPU model.

    Attributes:
        name: Human-readable device name (registry key).
        architecture: Micro-architecture family (e.g. ``"Ada Lovelace"``).
        sm_count: Number of streaming multiprocessors (compute units).
        clock_ghz: Sustained SM clock in GHz.
        dram_bandwidth: Device-memory bandwidth in bytes/second.
        dram_capacity: Device-memory capacity in bytes.
        l2_bytes: L2 cache capacity in bytes.
        l1_bytes_per_sm: Combined L1/shared storage per SM in bytes.
        smem_per_sm: Shared-memory capacity usable per SM in bytes.
        smem_bank_count: Number of shared-memory banks (32 on all targets).
        registers_per_sm: 32-bit registers per SM.
        max_warps_per_sm: Warp-slot limit per SM.
        max_blocks_per_sm: Resident thread-block limit per SM.
        warp_size: Threads per warp (32 for CUDA, 64 for CDNA "waves").
        tc_flops_per_sm_cycle: Dense tensor-core FP16 FLOPs (mul+add counted
            separately) issued per SM per cycle.
        cuda_core_flops_per_sm_cycle: FP32 SIMT FLOPs per SM per cycle, used
            by kernels that cannot use tensor cores (e.g. Sputnik).
        sparse_tc_speedup: Throughput multiplier of ``mma.sp`` over dense
            ``mma`` (2.0 on every SpTC implementation to date).
        dram_transaction_bytes: Minimum DRAM/L2 sector size in bytes.
        has_sparse_alu: Table 1 "Sparse ALU" column.
        has_async_copy: Table 1 "Asynchronous Memory Copy" column.
        has_collective_ldst: Table 1 "Collective Load/Store" column.
        kernel_launch_overhead_s: Fixed host-side launch latency per kernel.
    """

    name: str
    architecture: str
    sm_count: int
    clock_ghz: float
    dram_bandwidth: float
    dram_capacity: int
    l2_bytes: int
    l1_bytes_per_sm: int = 128 * KIB
    smem_per_sm: int = 100 * KIB
    smem_bank_count: int = 32
    registers_per_sm: int = 65536
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 24
    warp_size: int = 32
    tc_flops_per_sm_cycle: float = 1024.0
    cuda_core_flops_per_sm_cycle: float = 256.0
    sparse_tc_speedup: float = 2.0
    dram_transaction_bytes: int = 32
    has_sparse_alu: bool = True
    has_async_copy: bool = True
    has_collective_ldst: bool = True
    kernel_launch_overhead_s: float = 4.0e-6

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def dense_tc_flops(self) -> float:
        """Peak dense tensor-core FP16 FLOP/s for the whole device."""
        return self.tc_flops_per_sm_cycle * self.sm_count * self.clock_ghz * 1e9

    @property
    def sparse_tc_flops(self) -> float:
        """Peak ``mma.sp`` *effective* FLOP/s (counting skipped zeros)."""
        if not self.has_sparse_alu:
            raise HardwareModelError(
                f"{self.name} has no sparse ALU; mma.sp is unavailable"
            )
        return self.dense_tc_flops * self.sparse_tc_speedup

    @property
    def cuda_core_flops(self) -> float:
        """Peak SIMT FP32 FLOP/s for the whole device."""
        return (self.cuda_core_flops_per_sm_cycle * self.sm_count
                * self.clock_ghz * 1e9)

    @property
    def flops_per_byte(self) -> float:
        """Device compute:memory balance (dense TC FLOPs per DRAM byte)."""
        return self.dense_tc_flops / self.dram_bandwidth

    def with_overrides(self, **kwargs: object) -> "GPUSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: The GPU registry (Table 1 devices plus whatever callers register).
GPU_REGISTRY: Registry[GPUSpec] = Registry("GPU",
                                           error_cls=HardwareModelError)

# Legacy private alias kept for external callers of the old module API.
_REGISTRY = GPU_REGISTRY


def register_gpu(spec: GPUSpec, replace: bool = False) -> GPUSpec:
    """Add ``spec`` to the registry.

    A name collision raises :class:`HardwareModelError` so a typo'd
    re-registration cannot silently shadow a paper device; pass
    ``replace=True`` to overwrite deliberately.
    """
    return GPU_REGISTRY.register(spec.name, spec, replace=replace)


def get_gpu(name: str) -> GPUSpec:
    """Look up a registered GPU by name.

    Raises :class:`HardwareModelError` listing the known devices (and a
    did-you-mean suggestion) when the name is unknown.
    """
    return GPU_REGISTRY.get(name)


def list_gpus() -> list[str]:
    """Names of all registered devices, sorted."""
    return GPU_REGISTRY.names()


# ----------------------------------------------------------------------
# Registry entries.  tc_flops_per_sm_cycle is chosen so that
# sm_count * clock * tc_flops_per_sm_cycle reproduces the public dense
# FP16 tensor-core TFLOPS figure of each card.
# ----------------------------------------------------------------------

RTX_4070_SUPER = register_gpu(GPUSpec(
    name="rtx4070s",
    architecture="Ada Lovelace",
    sm_count=56,
    clock_ghz=2.48,
    dram_bandwidth=504e9,
    dram_capacity=12 * GIB,
    l2_bytes=48 * MIB,
    smem_per_sm=100 * KIB,
    tc_flops_per_sm_cycle=1024.0,     # ~142 TFLOPS dense FP16
))

RTX_3090 = register_gpu(GPUSpec(
    name="rtx3090",
    architecture="Ampere",
    sm_count=82,
    clock_ghz=1.70,
    dram_bandwidth=936e9,
    dram_capacity=24 * GIB,
    l2_bytes=6 * MIB,
    smem_per_sm=100 * KIB,
    tc_flops_per_sm_cycle=512.0,      # ~71 TFLOPS: higher BW, slower TC
))

RTX_4090 = register_gpu(GPUSpec(
    name="rtx4090",
    architecture="Ada Lovelace",
    sm_count=128,
    clock_ghz=2.52,
    dram_bandwidth=1008e9,
    dram_capacity=24 * GIB,
    l2_bytes=72 * MIB,
    smem_per_sm=100 * KIB,
    tc_flops_per_sm_cycle=1024.0,     # ~330 TFLOPS dense FP16
))

A100_40G = register_gpu(GPUSpec(
    name="a100",
    architecture="Ampere",
    sm_count=108,
    clock_ghz=1.41,
    dram_bandwidth=1555e9,
    dram_capacity=40 * GIB,
    l2_bytes=40 * MIB,
    smem_per_sm=164 * KIB,
    l1_bytes_per_sm=192 * KIB,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    tc_flops_per_sm_cycle=2048.0,     # ~312 TFLOPS dense FP16
))

H100_PCIE = register_gpu(GPUSpec(
    name="h100",
    architecture="Hopper",
    sm_count=114,
    clock_ghz=1.755,
    dram_bandwidth=2000e9,
    dram_capacity=80 * GIB,
    l2_bytes=50 * MIB,
    smem_per_sm=228 * KIB,
    l1_bytes_per_sm=256 * KIB,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    tc_flops_per_sm_cycle=3780.0,     # ~756 TFLOPS dense FP16
))

AMD_MI300 = register_gpu(GPUSpec(
    name="mi300",
    architecture="CDNA3",
    sm_count=228,                      # XCD compute units
    clock_ghz=2.10,
    dram_bandwidth=5300e9,
    dram_capacity=192 * GIB,
    l2_bytes=256 * MIB,
    smem_per_sm=64 * KIB,
    warp_size=64,
    tc_flops_per_sm_cycle=2048.0,
    has_sparse_alu=True,               # Table 1: sparse ALU present
    has_async_copy=False,              # Table 1: ✗* (emulated)
    has_collective_ldst=False,         # Table 1: ✗* (emulated)
))

AMD_W7900 = register_gpu(GPUSpec(
    name="w7900",
    architecture="RDNA3",
    sm_count=96,
    clock_ghz=1.855,
    dram_bandwidth=864e9,
    dram_capacity=48 * GIB,
    l2_bytes=6 * MIB,
    smem_per_sm=64 * KIB,
    warp_size=64,
    tc_flops_per_sm_cycle=512.0,
    has_sparse_alu=False,              # Table 1: no sparse ALU
    has_async_copy=False,
    has_collective_ldst=False,
))

DEFAULT_GPU = RTX_4070_SUPER
