"""Tensor-core instruction shapes and legality checks.

The Samoyeds kernel issues ``mma.sp`` (sparse MMA) PTX instructions; the
baselines issue dense ``mma``.  Tiling configurations must decompose warp
tiles into an integer number of these instruction shapes — this module owns
those shape tables and the per-instruction cost accounting.

An ``m16n8k32`` sparse MMA multiplies a 16x32 *logical* A fragment (stored
2:4-compressed as 16x16 plus 2-bit metadata) with a 32x8 B fragment into a
16x8 accumulator.  Its *effective* FLOP count is ``2*m*n*k`` because the
zeros are skipped by hardware, which is exactly the 2x speedup of SpTCs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError, TilingError
from repro.hw.spec import GPUSpec


@dataclass(frozen=True)
class MmaShape:
    """One tensor-core instruction shape (per warp).

    Attributes:
        m, n, k: Logical GEMM dimensions covered by one instruction.
        sparse: True for ``mma.sp`` (A operand 2:4 compressed).
        dtype_bytes: Operand element size (2 for fp16/bf16).
    """

    m: int
    n: int
    k: int
    sparse: bool
    dtype_bytes: int = 2

    @property
    def name(self) -> str:
        kind = "mma.sp" if self.sparse else "mma"
        return f"{kind}.m{self.m}n{self.n}k{self.k}"

    @property
    def flops(self) -> int:
        """Effective FLOPs of one instruction (2 per multiply-accumulate)."""
        return 2 * self.m * self.n * self.k

    @property
    def a_fragment_bytes(self) -> int:
        """Bytes of the A fragment actually stored (compressed if sparse)."""
        k_stored = self.k // 2 if self.sparse else self.k
        return self.m * k_stored * self.dtype_bytes

    @property
    def b_fragment_bytes(self) -> int:
        return self.k * self.n * self.dtype_bytes

    @property
    def metadata_bytes(self) -> int:
        """2-bit metadata per stored A element (sparse only)."""
        if not self.sparse:
            return 0
        return self.m * (self.k // 2) * 2 // 8


#: Sparse MMA shapes available since PTX ISA 7.0 (sm_80+), fp16/bf16.
MMA_SP_SHAPES: tuple[MmaShape, ...] = (
    MmaShape(16, 8, 32, sparse=True),
    MmaShape(16, 8, 16, sparse=True),
)

#: Dense MMA shapes used by the baseline kernels.
MMA_DENSE_SHAPES: tuple[MmaShape, ...] = (
    MmaShape(16, 8, 16, sparse=False),
    MmaShape(16, 8, 8, sparse=False),
)

#: The shape the Samoyeds paper centres its packing design on (§4.4).
SAMOYEDS_MMA = MMA_SP_SHAPES[0]          # mma.sp.m16n8k32
BASELINE_MMA = MMA_DENSE_SHAPES[0]       # mma.m16n8k16


def require_sparse_alu(spec: GPUSpec) -> None:
    """Fail fast when the device lacks SpTC support (Table 1)."""
    if not spec.has_sparse_alu:
        raise HardwareModelError(
            f"{spec.name} ({spec.architecture}) has no sparse ALU; "
            "Samoyeds' mandatory requirement is unmet"
        )


def instructions_per_warp_tile(mw: int, nw: int, kb: int,
                               shape: MmaShape) -> int:
    """Number of MMA instructions to cover an ``mw x nw x kb`` warp tile.

    Raises :class:`TilingError` when the warp tile does not decompose into
    whole instructions — the same constraint NVCC enforces on real kernels.
    """
    if mw % shape.m or nw % shape.n or kb % shape.k:
        raise TilingError(
            f"warp tile {mw}x{nw}x{kb} is not a multiple of {shape.name} "
            f"({shape.m}x{shape.n}x{shape.k})"
        )
    return (mw // shape.m) * (nw // shape.n) * (kb // shape.k)


def mma_cycles(num_instructions: int, shape: MmaShape, spec: GPUSpec) -> float:
    """SM-cycles to issue ``num_instructions`` MMAs on one warp scheduler.

    Derived from the device's per-SM tensor-core FLOP rate: an SM retires
    ``tc_flops_per_sm_cycle`` dense FLOPs per cycle (doubled for sparse),
    so one instruction costs ``flops / rate`` cycles of SM-wide tensor-core
    issue bandwidth.
    """
    rate = spec.tc_flops_per_sm_cycle
    if shape.sparse:
        require_sparse_alu(spec)
        rate *= spec.sparse_tc_speedup
    return num_instructions * shape.flops / rate
