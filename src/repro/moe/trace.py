"""Trace-driven routing workloads: skew, capacity and padding studies.

The paper's benchmarks assume near-uniform routing.  Real routers are
skewed — a few experts attract a disproportionate share of tokens — and
skew interacts with exactly the mechanisms Samoyeds optimises:

* per-expert **padding** to the kernel's n-tile wastes more compute when
  many experts receive few tokens;
* **capacity factors** (dropping tokens beyond a per-expert budget)
  trade accuracy for balance;
* load **imbalance** stretches the critical path of per-expert kernel
  segments.

This module generates Zipf-skewed routing plans, measures those effects,
and feeds the `routing-skew` ablation bench — reproducing the §6.2
padding discussion quantitatively and extending it beyond the paper's
uniform setting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError
from repro.moe.router import RoutingPlan
from repro.utils.rng import new_rng


def validate_skew(skew: float) -> float:
    """Check a Zipf routing-skew value; returns it for chaining.

    Shared by the trace generators here and the workload specs in
    :mod:`repro.api`, so every layer rejects the same invalid inputs.
    """
    if not isinstance(skew, (int, float)) or isinstance(skew, bool):
        raise RoutingError(f"skew must be a number, got {skew!r}")
    if skew < 0:
        raise RoutingError("skew must be non-negative")
    return float(skew)


def zipf_expert_popularity(num_experts: int, skew: float) -> np.ndarray:
    """Normalised expert-popularity vector ~ rank^-skew.

    ``skew = 0`` is uniform; ``skew ~ 1`` mirrors measured MoE routing
    distributions.
    """
    validate_skew(skew)
    ranks = np.arange(1, num_experts + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def skewed_plan(num_tokens: int, num_experts: int, top_k: int,
                skew: float = 0.0,
                seed: int | np.random.Generator | None = None
                ) -> RoutingPlan:
    """A routing plan whose expert loads follow a Zipf profile."""
    if top_k > num_experts:
        raise RoutingError("top_k cannot exceed num_experts")
    rng = new_rng(seed)
    popularity = zipf_expert_popularity(num_experts, skew)
    ids_per_expert: list[list[int]] = [[] for _ in range(num_experts)]
    weights_per_expert: list[list[float]] = [[] for _ in range(num_experts)]
    for token in range(num_tokens):
        chosen = rng.choice(num_experts, size=top_k, replace=False,
                            p=popularity)
        gates = rng.random(top_k)
        gates /= gates.sum()
        for expert, gate in zip(chosen, gates):
            ids_per_expert[expert].append(token)
            weights_per_expert[expert].append(float(gate))
    plan = RoutingPlan(
        num_tokens=num_tokens,
        top_k=top_k,
        expert_token_ids=tuple(np.array(ids, dtype=np.int64)
                               for ids in ids_per_expert),
        expert_gate_weights=tuple(np.array(w) for w in weights_per_expert),
    )
    plan.validate()
    return plan


@dataclass(frozen=True)
class PaddingReport:
    """Padding waste of one plan under one kernel tile size."""

    tile_n: int
    useful_tokens: int
    padded_tokens: int

    @property
    def waste_fraction(self) -> float:
        """Fraction of kernel columns computing padding zeros."""
        if self.padded_tokens == 0:
            return 0.0
        return 1.0 - self.useful_tokens / self.padded_tokens


def padding_report(plan: RoutingPlan, tile_n: int) -> PaddingReport:
    """Quantify §6.2's padding overhead for a concrete plan."""
    loads = plan.load()
    padded = int(sum(math.ceil(load / tile_n) * tile_n
                     for load in loads if load > 0))
    return PaddingReport(tile_n=tile_n,
                         useful_tokens=int(loads.sum()),
                         padded_tokens=padded)


@dataclass(frozen=True)
class CapacityReport:
    """Effect of a capacity factor on one plan."""

    capacity: int
    kept_tokens: int
    dropped_tokens: int

    @property
    def drop_fraction(self) -> float:
        total_tokens = self.kept_tokens + self.dropped_tokens
        return (self.dropped_tokens / total_tokens
                if total_tokens else 0.0)


def apply_capacity(plan: RoutingPlan, capacity_factor: float = 1.25
                   ) -> tuple[RoutingPlan, CapacityReport]:
    """Clamp each expert to ``capacity_factor x`` its fair share.

    Overflow token assignments are dropped (GShard-style), preserving
    routing order.  The returned plan no longer satisfies the exact
    top-k invariant, matching the semantics of capacity-limited systems.
    """
    if capacity_factor <= 0:
        raise RoutingError("capacity_factor must be positive")
    fair = plan.num_tokens * plan.top_k / plan.num_experts
    capacity = max(1, int(math.ceil(fair * capacity_factor)))
    kept_ids, kept_w = [], []
    dropped = 0
    for ids, weights in zip(plan.expert_token_ids,
                            plan.expert_gate_weights):
        kept_ids.append(ids[:capacity])
        kept_w.append(weights[:capacity])
        dropped += max(0, ids.size - capacity)
    clamped = RoutingPlan(num_tokens=plan.num_tokens, top_k=plan.top_k,
                          expert_token_ids=tuple(kept_ids),
                          expert_gate_weights=tuple(kept_w))
    kept = int(sum(ids.size for ids in kept_ids))
    return clamped, CapacityReport(capacity=capacity, kept_tokens=kept,
                                   dropped_tokens=dropped)


def critical_path_tokens(plan: RoutingPlan, tile_n: int) -> int:
    """Padded token count of the most loaded expert.

    With per-expert kernel segments the slowest expert bounds layer
    latency once parallelism is exhausted; skew stretches this directly.
    """
    loads = plan.load()
    if loads.size == 0:
        return 0
    worst = int(loads.max())
    return math.ceil(worst / tile_n) * tile_n
