"""Device-memory footprint model -> maximum batch size (Table 3).

Models a single decoder layer, matching the paper's measurement setup
(§6.3).  The footprint has four parts:

* **weights** — attention QKVO plus all expert projections.  Dense fp16
  for the baselines; the Samoyeds encoding stores 28.125% of that
  (25% values at fp16 + 2-bit metadata per stored value + indices).
  MegaBlocks and vLLM-DS additionally hold a *repacked copy* of the
  expert weights in their kernel-native layouts — the transient that
  makes both frameworks OOM on Mixtral-8x22B at batch 1.
* **fixed overhead** — CUDA context + framework allocator state.
* **per-batch workspace** — KV cache, resident activations and the MoE
  data-flow buffers of each engine.  OpenMoE's T5X-style *einsum
  dispatch* (one-hot dispatch/combine tensors plus fp32 per-expert
  capacity buffers) is what makes its baseline footprint explode and
  yields the paper's out-sized 18.67x max-batch boost for Samoyeds.
* **fragmentation margin** — 5% of capacity held back, as allocators do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CapacityError, ConfigError
from repro.hw.interconnect import ParallelPlan
from repro.hw.spec import GPUSpec
from repro.moe.config import MoEModelConfig
from repro.utils.units import GIB, MIB

#: Samoyeds bytes per dense fp16 weight byte:
#: 25% kept values (x2B) + 2-bit metadata per kept value + indices.
SAMOYEDS_WEIGHT_FACTOR = 0.28125

#: Engine-specific constants (bytes unless noted).
FIXED_OVERHEAD = {
    "transformers": 800 * MIB,
    "megablocks": 1200 * MIB,
    "vllm-ds": 1500 * MIB,
    "pit": 1000 * MIB,
    "samoyeds": 600 * MIB,
}

#: Expert-weight resident factor (repacked copies included).
WEIGHT_FACTOR = {
    "transformers": 1.0,
    "megablocks": 2.3,      # native copy + block-sparse repack + indices
    "vllm-ds": 2.3,         # native copy + fused-kernel layout + padding
    "pit": 1.35,            # micro-tile index tables
    "samoyeds": SAMOYEDS_WEIGHT_FACTOR,
}

FRAGMENTATION = 0.05
DTYPE = 2                   # fp16

#: The cost-driven dispatcher (``engine="auto"``) has no fixed layout:
#: its footprint is charged as the *elementwise maximum* over the fixed
#: engines that support the model, so admission control can never
#: over-admit regardless of which engine the selector picks per step.
AUTO_ENGINE_NAME = "auto"


def _auto_candidates(config: MoEModelConfig) -> list[str]:
    """Fixed engines whose footprint bounds an ``auto`` deployment.

    Asks the live engine registry which contestants *support* the
    model (the same ``supports()`` gate the selector uses, so this can
    never drift from the dispatch logic).  A selectable engine with no
    memory-model entries (a third-party registration that skipped
    ``WEIGHT_FACTOR`` / ``FIXED_OVERHEAD``) fails loudly here: the
    selector could dispatch to it, so silently bounding over the known
    engines only would break the never-over-admit guarantee.
    """
    from repro.moe.layers import ENGINES    # lazy: no import cycle
    out = []
    for name, engine in ENGINES.items():
        if getattr(engine, "is_meta", False):
            continue
        if not engine.supports(config):
            continue                        # NS pair: never selectable
        if name not in WEIGHT_FACTOR or name not in FIXED_OVERHEAD:
            raise ConfigError(
                f"engine {name!r} is selectable by engine='auto' but "
                f"has no memory-model entries; add it to "
                f"repro.moe.memory_model WEIGHT_FACTOR/FIXED_OVERHEAD "
                f"(see DESIGN.md 'Plugin registry & auto dispatch')")
        out.append(name)
    return out or list(WEIGHT_FACTOR)


def fixed_overhead_bytes(config: MoEModelConfig, engine: str) -> float:
    """Framework fixed overhead; the candidate maximum for ``auto``."""
    if engine == AUTO_ENGINE_NAME:
        return max(float(FIXED_OVERHEAD[name])
                   for name in _auto_candidates(config))
    try:
        return float(FIXED_OVERHEAD[engine])
    except KeyError:
        raise ConfigError(f"unknown engine {engine!r}") from None


@dataclass(frozen=True)
class MemoryFootprint:
    """Byte-level decomposition of one engine's footprint."""

    engine: str
    weights_bytes: float
    fixed_bytes: float
    per_batch_bytes: float
    capacity_bytes: float

    @property
    def available_for_batches(self) -> float:
        return (self.capacity_bytes * (1.0 - FRAGMENTATION)
                - self.weights_bytes - self.fixed_bytes)

    def max_batch(self) -> int:
        """Largest batch count that fits (0 = OOM even at batch 1)."""
        if self.per_batch_bytes <= 0:
            raise ConfigError("per-batch bytes must be positive")
        return max(0, int(self.available_for_batches
                          // self.per_batch_bytes))

    def require_batch(self, batch: int) -> None:
        """Raise :class:`CapacityError` if ``batch`` does not fit."""
        need_bytes = (self.weights_bytes + self.fixed_bytes
                      + batch * self.per_batch_bytes)
        have_bytes = self.capacity_bytes * (1.0 - FRAGMENTATION)
        if need_bytes > have_bytes:
            raise CapacityError(
                f"{self.engine}: batch {batch} needs "
                f"{need_bytes / GIB:.2f} GiB > "
                f"{have_bytes / GIB:.2f} GiB available",
                required_bytes=int(need_bytes),
                available_bytes=int(have_bytes))


def weight_bytes(config: MoEModelConfig, engine: str,
                 parallel: ParallelPlan | None = None,
                 device_experts: int | None = None) -> float:
    """Resident weight bytes of one decoder layer for ``engine``.

    With a non-trivial ``parallel`` plan the result is *per device*:
    attention weights are tensor-sharded over ``tp``; routed expert
    weights are partitioned over ``ep`` (``device_experts`` prices a
    concrete placement — e.g. the most loaded device of a skew-aware
    placement — defaulting to the uniform ``1/ep`` share) and
    tensor-sharded over ``tp``; shared experts replicate across the
    expert-parallel group (every token visits them) but still shard
    over ``tp``.
    """
    if engine == AUTO_ENGINE_NAME:
        return max(weight_bytes(config, name, parallel, device_experts)
                   for name in _auto_candidates(config))
    attn = config.attention_param_count * DTYPE
    moe_dense = config.moe_param_count * DTYPE
    try:
        factor = WEIGHT_FACTOR[engine]
    except KeyError:
        raise ConfigError(f"unknown engine {engine!r}") from None
    trivial = parallel is None or parallel.is_trivial
    if trivial and device_experts is None:
        # Attention stays dense for every engine: the paper (and the
        # sparse baselines) prune or repack expert weights only.
        return attn + moe_dense * factor
    plan = parallel if parallel is not None else ParallelPlan()
    if device_experts is not None:
        if not 0 <= device_experts <= config.num_experts:
            raise ConfigError(
                f"device_experts={device_experts} outside "
                f"[0, {config.num_experts}]")
        routed_frac = device_experts / config.num_experts
    else:
        routed_frac = 1.0 / plan.ep
    routed = (config.num_experts * config.expert_param_count * DTYPE
              * factor * routed_frac)
    shared = (config.num_shared_experts * config.expert_param_count
              * DTYPE * factor)
    return (attn + routed + shared) / plan.tp


def kv_cache_bytes(config: MoEModelConfig, seq_len: int) -> float:
    """K+V cache for one layer, one sequence."""
    return 2.0 * seq_len * config.hidden_size * DTYPE


def _base_activation_bytes(config: MoEModelConfig, seq_len: int) -> float:
    """Hidden-state buffers every engine keeps (residual, norms, attn)."""
    return 6.0 * seq_len * config.hidden_size * DTYPE


def _einsum_dispatch_bytes(config: MoEModelConfig, seq_len: int) -> float:
    """OpenMoE-style one-hot dispatch workspace (fp32 einsum path)."""
    capacity = math.ceil(seq_len * config.top_k / config.num_experts * 1.25)
    dispatch_combine = 2.0 * seq_len * config.num_experts * capacity * 4
    expert_buffers = (config.num_experts * capacity
                      * (config.hidden_size
                         + 2 * config.intermediate_size) * 4)
    return dispatch_combine + expert_buffers


def moe_workspace_bytes(config: MoEModelConfig, seq_len: int,
                        engine: str) -> float:
    """Per-sequence MoE data-flow workspace for ``engine``."""
    if engine == AUTO_ENGINE_NAME:
        return max(moe_workspace_bytes(config, seq_len, name)
                   for name in _auto_candidates(config))
    tokens = seq_len
    routed = tokens * config.top_k
    h, inter = config.hidden_size, config.intermediate_size

    if engine == "samoyeds":
        # No permutation copies; the act(gate)*up fusion leaves a single
        # compressed intermediate (routed rows only) plus the SEL arrays.
        return (routed * inter + routed * h / 4.0) * DTYPE

    if config.activation not in ("silu", "gelu") and engine in (
            "megablocks", "vllm-ds"):
        raise ConfigError(
            f"{engine} does not support {config.name}")

    uses_einsum = config.activation == "gelu_tanh"  # OpenMoE's T5X path
    if uses_einsum and engine in ("transformers", "pit"):
        return _einsum_dispatch_bytes(config, seq_len)

    if engine == "transformers":
        # Permuted input copies, expert-output copies and the weighted
        # un-permutation staging (Figure 5's three extra tensors).
        permuted = 3.0 * routed * h * DTYPE
        per_expert = 3.0 * (routed / config.num_experts) * inter * DTYPE
        return permuted + per_expert
    if engine == "megablocks":
        padded = math.ceil(routed / config.num_experts / 128) * 128 \
            * config.num_experts
        return (padded * h + 2.0 * padded * inter) * DTYPE
    if engine == "vllm-ds":
        padded = math.ceil(routed / config.num_experts / 64) * 64 \
            * config.num_experts
        return (padded * h + 2.0 * padded * inter) * DTYPE
    if engine == "pit":
        padded = math.ceil(routed / 16) * 16
        return (2.0 * padded * h + 2.0 * padded * inter) * DTYPE
    raise ConfigError(f"unknown engine {engine!r}")


def footprint(config: MoEModelConfig, engine: str, seq_len: int,
              spec: GPUSpec, parallel: ParallelPlan | None = None,
              device_experts: int | None = None) -> MemoryFootprint:
    """Full memory decomposition of one engine on one device.

    With a non-trivial ``parallel`` plan this is the footprint of one
    *shard* device (capacity stays one device's DRAM), so
    :meth:`MemoryFootprint.max_batch` becomes the per-device batch
    ceiling the serving engine gates admission on.
    """
    return MemoryFootprint(
        engine=engine,
        weights_bytes=weight_bytes(config, engine, parallel,
                                   device_experts),
        fixed_bytes=fixed_overhead_bytes(config, engine),
        per_batch_bytes=per_sequence_bytes(config, engine, seq_len,
                                           parallel),
        capacity_bytes=float(spec.dram_capacity),
    )


def max_batch_size(config: MoEModelConfig, engine: str, seq_len: int,
                   spec: GPUSpec) -> int:
    """Table 3's quantity: the largest batch size that fits in memory."""
    return footprint(config, engine, seq_len, spec).max_batch()


def per_sequence_bytes(config: MoEModelConfig, engine: str,
                       seq_len: int,
                       parallel: ParallelPlan | None = None) -> float:
    """Peak per-sequence bytes at context length ``seq_len``.

    Exactly the ``per_batch_bytes`` term of :func:`footprint`, exposed so
    request-level admission control charges each sequence the same price
    the Table-3 model charges a batch element — which is what makes the
    serving simulator's emergent concurrency limit agree with Table 3.

    With a non-trivial ``parallel`` plan the result is the *per-device*
    share: the KV cache shards across the ``tp`` group (heads split,
    Megatron-style); the MoE data-flow workspace splits across both
    ``ep`` (each device stages only its own experts' routed tokens) and
    ``tp`` (the expert inner dimension shards); the residual/norm
    activation buffers hold the full hidden state on every device (the
    all-reduce rematerialises it) and do not shrink.
    """
    kv_bytes = kv_cache_bytes(config, seq_len)
    act_bytes = _base_activation_bytes(config, seq_len)
    work_bytes = moe_workspace_bytes(config, seq_len, engine)
    if parallel is None or parallel.is_trivial:
        return kv_bytes + act_bytes + work_bytes
    return (kv_bytes / parallel.tp + act_bytes
            + work_bytes / (parallel.ep * parallel.tp))


@dataclass
class MemoryLedger:
    """Time-varying device-memory ledger for a serving engine.

    Static state (weights + framework overhead) is charged up front;
    subclasses implement the admission policy:

    * :class:`KVCacheTracker` — conservative vLLM-v0-style admission:
      each request reserves its *peak* footprint up front, so growth can
      never fail;
    * :class:`BlockAllocator` — paged admission: each request is charged
      only the fixed-size token blocks that are currently live, so the
      same budget sustains more concurrent requests, at the price that
      :meth:`grow` can raise :class:`CapacityError` mid-decode (the
      serving engine resolves that by preempting the youngest request).

    ``live_bytes`` reports the instantaneous static + KV footprint as
    caches grow token by token; ``reserved_bytes`` reports what the
    admission policy has actually charged.  The serving metrics sample
    both per step.
    """

    config: MoEModelConfig
    engine: str
    spec: GPUSpec
    parallel: ParallelPlan | None = None
    device_experts: int | None = None

    def __post_init__(self) -> None:
        self.static_bytes = (weight_bytes(self.config, self.engine,
                                          self.parallel,
                                          self.device_experts)
                             + fixed_overhead_bytes(self.config, self.engine))
        self.budget_bytes = (float(self.spec.dram_capacity)
                             * (1.0 - FRAGMENTATION))
        self._context: dict[int, int] = {}

    # -- shared arithmetic ---------------------------------------------
    def sequence_bytes(self, seq_len: int) -> float:
        return per_sequence_bytes(self.config, self.engine, seq_len,
                                  self.parallel)

    @property
    def reserved_bytes(self) -> float:
        """Bytes the admission policy has charged (static included)."""
        raise NotImplementedError

    @property
    def free_bytes(self) -> float:
        return self.budget_bytes - self.reserved_bytes

    def _require(self, request_id: int) -> None:
        if request_id not in self._context:
            raise ConfigError(
                f"unknown request {request_id}: admit() before grow()")

    # -- admission policy (per subclass) -------------------------------
    def can_admit_request(self, prompt_tokens: int,
                          final_seq_len: int) -> bool:
        """Would a request fit, with ``prompt_tokens`` of KV resident
        immediately and a lifetime peak of ``final_seq_len`` tokens?"""
        raise NotImplementedError

    def admit(self, request_id: int, prompt_tokens: int,
              final_seq_len: int) -> None:
        """Charge a new request (``prompt_tokens`` = immediately-live
        KV context; 0 under chunked prefill)."""
        raise NotImplementedError

    def admission_chunk(self, desired_tokens: int,
                        final_seq_len: int) -> int:
        """Largest first prefill chunk (<= ``desired_tokens``) admissible
        now; 0 means the request cannot be admitted this step."""
        raise NotImplementedError

    def clamp_growth(self, request_id: int, desired_tokens: int) -> int:
        """Largest growth (<= ``desired_tokens``) the ledger can charge
        for an admitted request without raising."""
        raise NotImplementedError

    def peak_bytes(self, final_seq_len: int) -> float:
        """Bytes this policy charges a request at its lifetime peak."""
        raise NotImplementedError

    def grow(self, request_id: int, new_tokens: int = 1) -> None:
        """Advance a request's live KV context by ``new_tokens``."""
        self._require(request_id)
        self._context[request_id] += new_tokens

    def release(self, request_id: int) -> None:
        """Free a finished (or preempted) request's charge."""
        self._context.pop(request_id, None)

    def max_concurrent(self, seq_len: int) -> int:
        """Emergent concurrency limit for uniform fully-grown
        ``seq_len`` requests.

        Equals :meth:`MemoryFootprint.max_batch` by construction (for
        the paged policy: at block-aligned ``seq_len``) — the serving
        engine reproduces Table 3 without consulting it.
        """
        per_seq_bytes = self.peak_bytes(seq_len)
        if per_seq_bytes <= 0:
            raise ConfigError("per-sequence bytes must be positive")
        return max(0, int((self.budget_bytes - self.static_bytes)
                          // per_seq_bytes))

    # -- observation ---------------------------------------------------
    @property
    def active_requests(self) -> int:
        return len(self._context)

    def kv_tokens(self) -> list[int]:
        """Live KV context lengths per resident request, in ledger
        (admission) order — the order :attr:`live_bytes` sums in."""
        return list(self._context.values())

    @property
    def live_bytes(self) -> float:
        """Instantaneous footprint: static + grown-so-far KV caches."""
        kv_bytes = sum(kv_cache_bytes(self.config, tokens)
                       for tokens in self._context.values())
        if self.parallel is not None and not self.parallel.is_trivial:
            kv_bytes /= self.parallel.tp
        return self.static_bytes + kv_bytes

    @property
    def pool_utilisation(self) -> float:
        """Charged fraction of the post-static memory pool, in [0, 1+)."""
        pool_bytes = self.budget_bytes - self.static_bytes
        if pool_bytes <= 0:
            return 0.0
        return max(0.0, (self.reserved_bytes - self.static_bytes)
                   / pool_bytes)


@dataclass
class KVCacheTracker(MemoryLedger):
    """Conservative admission: reserve each request's peak footprint.

    Each admitted request reserves KV cache at its full final context
    plus the engine's per-sequence workspace, so decode steps can never
    OOM mid-request (the vLLM-style conservative admission policy).
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        self._reserved: dict[int, float] = {}

    @property
    def reserved_bytes(self) -> float:
        return self.static_bytes + sum(self._reserved.values())

    def can_admit(self, final_seq_len: int) -> bool:
        """Would a request peaking at ``final_seq_len`` tokens fit?"""
        return self.sequence_bytes(final_seq_len) <= self.free_bytes

    def can_admit_request(self, prompt_tokens: int,
                          final_seq_len: int) -> bool:
        return self.can_admit(final_seq_len)

    def admit(self, request_id: int, prompt_tokens: int,
              final_seq_len: int) -> None:
        """Reserve a request's peak footprint (raises on overflow)."""
        need_bytes = self.sequence_bytes(final_seq_len)
        if need_bytes > self.free_bytes:
            raise CapacityError(
                f"{self.engine}: request {request_id} needs "
                f"{need_bytes / GIB:.2f} GiB > "
                f"{self.free_bytes / GIB:.2f} GiB "
                f"free", required_bytes=int(need_bytes),
                available_bytes=int(max(self.free_bytes, 0)))
        if request_id in self._reserved:
            raise ConfigError(f"request {request_id} already admitted")
        self._reserved[request_id] = need_bytes
        self._context[request_id] = prompt_tokens

    def admission_chunk(self, desired_tokens: int,
                        final_seq_len: int) -> int:
        return desired_tokens if self.can_admit(final_seq_len) else 0

    def clamp_growth(self, request_id: int, desired_tokens: int) -> int:
        self._require(request_id)
        return desired_tokens          # peak already reserved at admit

    def peak_bytes(self, final_seq_len: int) -> float:
        return self.sequence_bytes(final_seq_len)

    def release(self, request_id: int) -> None:
        self._reserved.pop(request_id, None)
        super().release(request_id)


@dataclass
class BlockAllocator(MemoryLedger):
    """Paged admission: charge only the live fixed-size token blocks.

    The KV cache of each request is held in ``page_size``-token blocks;
    a request with ``n`` live blocks is charged exactly what the Table-3
    per-sequence model charges a context of ``n * page_size`` tokens —
    KV cache plus the engine's per-sequence workspace — so the cumulative
    price of a fully-grown request telescopes to the conservative
    tracker's reservation, and a uniform trace of block-aligned requests
    still saturates at :meth:`MemoryFootprint.max_batch` concurrent
    requests.  Until then, the headroom the conservative policy wastes on
    not-yet-generated tokens admits extra requests.

    :meth:`grow` raises :class:`CapacityError` when the pool cannot back
    a new block; the serving engine answers by preempting the youngest
    resident request (recompute-on-readmit).
    """

    page_size: int = 16

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.page_size <= 0:
            raise ConfigError("page_size must be positive")
        self._blocks: dict[int, int] = {}
        self._cum_memo: dict[int, float] = {0: 0.0}

    # -- block arithmetic ----------------------------------------------
    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` KV entries."""
        return -(-max(tokens, 0) // self.page_size)

    def block_bytes(self, blocks: int) -> float:
        """Cumulative charge for one request's first ``blocks`` blocks.

        Priced by the Table-3 per-sequence model at the padded context,
        so per-block marginals telescope exactly to
        :func:`per_sequence_bytes`.
        """
        cached_bytes = self._cum_memo.get(blocks)
        if cached_bytes is None:
            cached_bytes = self.sequence_bytes(blocks * self.page_size)
            self._cum_memo[blocks] = cached_bytes
        return cached_bytes

    @property
    def used_blocks(self) -> int:
        return sum(self._blocks.values())

    @property
    def reserved_bytes(self) -> float:
        return self.static_bytes + sum(self.block_bytes(blocks)
                                       for blocks in self._blocks.values())

    # -- admission policy ----------------------------------------------
    def can_admit_request(self, prompt_tokens: int,
                          final_seq_len: int) -> bool:
        return (self.block_bytes(self.blocks_for(prompt_tokens))
                <= self.free_bytes)

    def admit(self, request_id: int, prompt_tokens: int,
              final_seq_len: int) -> None:
        """Allocate blocks for the immediately-live context only."""
        if request_id in self._blocks:
            raise ConfigError(f"request {request_id} already admitted")
        blocks = self.blocks_for(prompt_tokens)
        need_bytes = self.block_bytes(blocks)
        if need_bytes > self.free_bytes:
            raise CapacityError(
                f"{self.engine}: request {request_id} needs {blocks} "
                f"blocks ({need_bytes / GIB:.2f} GiB) > "
                f"{self.free_bytes / GIB:.2f} GiB free",
                required_bytes=int(need_bytes),
                available_bytes=int(max(self.free_bytes, 0)))
        self._blocks[request_id] = blocks
        self._context[request_id] = prompt_tokens

    def admission_chunk(self, desired_tokens: int,
                        final_seq_len: int) -> int:
        if desired_tokens <= 0:
            return 0
        free_bytes = self.free_bytes
        blocks = 0
        while (blocks < self.blocks_for(desired_tokens)
               and self.block_bytes(blocks + 1) <= free_bytes):
            blocks += 1
        return min(desired_tokens, blocks * self.page_size)

    def clamp_growth(self, request_id: int, desired_tokens: int) -> int:
        self._require(request_id)
        if desired_tokens <= 0:
            return 0
        held = self._blocks[request_id]
        context = self._context[request_id]
        free_bytes = self.free_bytes
        blocks = max(held, self.blocks_for(context))
        target = self.blocks_for(context + desired_tokens)
        while (blocks < target and
               self.block_bytes(blocks + 1) - self.block_bytes(held)
               <= free_bytes):
            blocks += 1
        return max(0, min(desired_tokens,
                          blocks * self.page_size - context))

    def peak_bytes(self, final_seq_len: int) -> float:
        return self.block_bytes(self.blocks_for(final_seq_len))

    def grow(self, request_id: int, new_tokens: int = 1) -> None:
        """Advance the context, allocating blocks across boundaries.

        Raises :class:`CapacityError` — without charging anything — when
        the pool cannot back the new blocks; the caller preempts.
        """
        self._require(request_id)
        context = self._context[request_id] + new_tokens
        held = self._blocks[request_id]
        needed = self.blocks_for(context)
        if needed > held:
            delta_bytes = self.block_bytes(needed) \
                - self.block_bytes(held)
            if delta_bytes > self.free_bytes:
                raise CapacityError(
                    f"{self.engine}: request {request_id} needs "
                    f"{needed - held} more blocks "
                    f"({delta_bytes / GIB:.3f} GiB) > "
                    f"{self.free_bytes / GIB:.3f} GiB free",
                    required_bytes=int(delta_bytes),
                    available_bytes=int(max(self.free_bytes, 0)))
            self._blocks[request_id] = needed
        self._context[request_id] = context

    def release(self, request_id: int) -> None:
        self._blocks.pop(request_id, None)
        super().release(request_id)


class DeviceLedgers:
    """One :class:`MemoryLedger` per cluster device, gated on the
    bottleneck.

    Under expert/tensor parallelism every admitted request occupies all
    devices of the grid — its KV cache shards over the ``tp`` group and
    its routed tokens visit experts on every ``ep`` device — but the
    devices are *not* symmetric: a skew-aware placement leaves some
    devices holding more expert weights than others.  This composite
    presents the single-ledger interface the batchers and the serving
    engine already speak, fanning every charge out to all per-device
    ledgers and answering every query from the most constrained device,
    so admission is gated on the bottleneck and :meth:`grow` is
    all-or-nothing (no device is charged unless every device can back
    the growth).
    """

    def __init__(self, ledgers: "list[MemoryLedger]") -> None:
        if not ledgers:
            raise ConfigError("DeviceLedgers needs at least one ledger")
        self.ledgers = list(ledgers)

    @classmethod
    def create(cls, config: MoEModelConfig, engine: str,
               gpus: "list[GPUSpec] | tuple[GPUSpec, ...]",
               parallel: ParallelPlan,
               expert_counts: "list[int] | tuple[int, ...] | None" = None,
               page_size: int | None = None) -> "DeviceLedgers":
        """Build the ``ep * tp`` grid of per-device ledgers.

        ``gpus`` lists one spec per grid device; ``expert_counts`` is
        the per-EP-rank expert census of the placement (device ``d``
        belongs to EP rank ``d // tp``), defaulting to the uniform
        ``1/ep`` share.
        """
        devices = parallel.ep * parallel.tp
        if len(gpus) < devices:
            raise ConfigError(
                f"{len(gpus)} devices for an ep={parallel.ep} x "
                f"tp={parallel.tp} grid")
        if expert_counts is not None and len(expert_counts) != parallel.ep:
            raise ConfigError(
                f"{len(expert_counts)} expert counts for ep={parallel.ep}")
        ledgers: list[MemoryLedger] = []
        for d in range(devices):
            experts = (expert_counts[d // parallel.tp]
                       if expert_counts is not None else None)
            if page_size:
                ledgers.append(BlockAllocator(
                    config, engine, gpus[d], parallel=parallel,
                    device_experts=experts, page_size=page_size))
            else:
                ledgers.append(KVCacheTracker(
                    config, engine, gpus[d], parallel=parallel,
                    device_experts=experts))
        return cls(ledgers)

    # -- bottleneck queries --------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.ledgers)

    @property
    def static_bytes(self) -> float:
        """Bottleneck device's static charge."""
        return max(led.static_bytes for led in self.ledgers)

    @property
    def budget_bytes(self) -> float:
        """Tightest per-device budget."""
        return min(led.budget_bytes for led in self.ledgers)

    @property
    def reserved_bytes(self) -> float:
        """Cluster-wide charged bytes (summed over devices)."""
        return sum(led.reserved_bytes for led in self.ledgers)

    @property
    def live_bytes(self) -> float:
        """Cluster-wide instantaneous footprint."""
        return sum(led.live_bytes for led in self.ledgers)

    @property
    def free_bytes(self) -> float:
        """Free bytes on the most constrained device."""
        return min(led.free_bytes for led in self.ledgers)

    @property
    def pool_utilisation(self) -> float:
        """Bottleneck device's charged pool fraction."""
        return max(led.pool_utilisation for led in self.ledgers)

    @property
    def active_requests(self) -> int:
        return self.ledgers[0].active_requests

    def sequence_bytes(self, seq_len: int) -> float:
        return max(led.sequence_bytes(seq_len) for led in self.ledgers)

    def peak_bytes(self, final_seq_len: int) -> float:
        return max(led.peak_bytes(final_seq_len) for led in self.ledgers)

    def max_concurrent(self, seq_len: int) -> int:
        return min(led.max_concurrent(seq_len) for led in self.ledgers)

    # -- admission policy (fan-out, bottleneck-gated) ------------------
    def can_admit_request(self, prompt_tokens: int,
                          final_seq_len: int) -> bool:
        return all(led.can_admit_request(prompt_tokens, final_seq_len)
                   for led in self.ledgers)

    def admit(self, request_id: int, prompt_tokens: int,
              final_seq_len: int) -> None:
        for led in self.ledgers:
            if not led.can_admit_request(prompt_tokens, final_seq_len):
                raise CapacityError(
                    f"{led.engine}: request {request_id} does not fit on "
                    f"the bottleneck device "
                    f"({led.free_bytes / GIB:.2f} GiB free)",
                    required_bytes=int(led.peak_bytes(final_seq_len)),
                    available_bytes=int(max(led.free_bytes, 0)))
        for led in self.ledgers:
            led.admit(request_id, prompt_tokens, final_seq_len)

    def admission_chunk(self, desired_tokens: int,
                        final_seq_len: int) -> int:
        return min(led.admission_chunk(desired_tokens, final_seq_len)
                   for led in self.ledgers)

    def clamp_growth(self, request_id: int, desired_tokens: int) -> int:
        return min(led.clamp_growth(request_id, desired_tokens)
                   for led in self.ledgers)

    def grow(self, request_id: int, new_tokens: int = 1) -> None:
        """All-or-nothing growth: charge every device or none.

        Raises :class:`CapacityError` from the bottleneck device when
        any device cannot back the new tokens (the serving engine
        answers by preempting, exactly as with one device).
        """
        grant = self.clamp_growth(request_id, new_tokens)
        if grant < new_tokens:
            bottleneck = min(self.ledgers, key=lambda led: led.free_bytes)
            raise CapacityError(
                f"{bottleneck.engine}: request {request_id} cannot grow "
                f"by {new_tokens} tokens on the bottleneck device "
                f"({bottleneck.free_bytes / GIB:.3f} GiB free)",
                required_bytes=int(bottleneck.sequence_bytes(new_tokens)),
                available_bytes=int(max(bottleneck.free_bytes, 0)))
        for led in self.ledgers:
            led.grow(request_id, new_tokens)

    def release(self, request_id: int) -> None:
        for led in self.ledgers:
            led.release(request_id)
