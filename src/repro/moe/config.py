"""MoE model configurations (Table 2).

Six real MoE LLMs define the evaluation space.  ``config_group`` mirrors
the paper's CFG#1-#5 grouping (Qwen2-MoE and DeepSeek-MoE share CFG#1).
Head counts and layer counts are from the public model cards; they feed
the attention cost model and the Figure 2 breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.registry.core import Registry


@dataclass(frozen=True)
class MoEModelConfig:
    """Architecture parameters of one MoE LLM.

    Attributes:
        name: Registry key.
        num_experts: Routed experts per MoE layer.
        hidden_size: Model (embedding) dimension.
        intermediate_size: Expert MLP inner dimension.
        top_k: Routed experts activated per token.
        num_shared_experts: Isolated shared experts (processed by every
            token) — the second routing type of §6.2.
        num_heads: Attention heads.
        num_layers: Decoder layers (for whole-model extrapolation).
        max_seq_len: Positional limit (OpenMoE caps at 2048, §6.3.1).
        activation: Expert activation function name; OpenMoE's variant is
            unsupported by MegaBlocks/vLLM-DS (the NS marker).
        config_group: Paper CFG id.
    """

    name: str
    num_experts: int
    hidden_size: int
    intermediate_size: int
    top_k: int
    num_shared_experts: int = 0
    num_heads: int = 32
    num_layers: int = 24
    max_seq_len: int = 4096
    activation: str = "silu"
    config_group: str = "CFG#?"

    def __post_init__(self) -> None:
        if self.top_k > self.num_experts:
            raise ConfigError(
                f"{self.name}: top_k={self.top_k} exceeds "
                f"num_experts={self.num_experts}")
        for field in ("num_experts", "hidden_size", "intermediate_size",
                      "top_k", "num_heads", "num_layers"):
            if getattr(self, field) <= 0:
                raise ConfigError(f"{self.name}: {field} must be positive")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def expert_param_count(self) -> int:
        """Parameters of one expert (gate/up/down projections)."""
        return 3 * self.hidden_size * self.intermediate_size

    @property
    def moe_param_count(self) -> int:
        """Parameters of one MoE layer (all experts, shared included)."""
        experts = self.num_experts + self.num_shared_experts
        return experts * self.expert_param_count

    @property
    def attention_param_count(self) -> int:
        """QKVO projection parameters of one decoder layer."""
        return 4 * self.hidden_size * self.hidden_size

    def flops_per_token_moe(self) -> float:
        """MoE-layer FLOPs for one token (routed + shared experts)."""
        active = self.top_k + self.num_shared_experts
        return 2.0 * active * self.expert_param_count

    def with_experts(self, num_experts: int) -> "MoEModelConfig":
        """Copy with a different expert count (PIT sweep, Figure 19)."""
        from dataclasses import replace
        return replace(self, name=f"{self.name}-e{num_experts}",
                       num_experts=num_experts,
                       top_k=min(self.top_k, num_experts))


QWEN2_MOE = MoEModelConfig(
    name="qwen2-moe", num_experts=60, hidden_size=1408,
    intermediate_size=2048, top_k=4, num_heads=16, num_layers=24,
    config_group="CFG#1")

DEEPSEEK_MOE = MoEModelConfig(
    name="deepseek-moe", num_experts=64, hidden_size=1408,
    intermediate_size=2048, top_k=6, num_heads=16, num_layers=28,
    config_group="CFG#1")

MINICPM_MOE = MoEModelConfig(
    name="minicpm-moe", num_experts=8, hidden_size=2304,
    intermediate_size=5760, top_k=2, num_heads=36, num_layers=40,
    config_group="CFG#2")

OPENMOE_34B = MoEModelConfig(
    name="openmoe-34b", num_experts=32, hidden_size=3072,
    intermediate_size=12288, top_k=2, num_heads=24, num_layers=32,
    max_seq_len=2048, activation="gelu_tanh", config_group="CFG#3")

MIXTRAL_8X7B = MoEModelConfig(
    name="mixtral-8x7b", num_experts=8, hidden_size=4096,
    intermediate_size=14336, top_k=2, num_heads=32, num_layers=32,
    config_group="CFG#4")

MIXTRAL_8X22B = MoEModelConfig(
    name="mixtral-8x22b", num_experts=8, hidden_size=6144,
    intermediate_size=16384, top_k=2, num_heads=48, num_layers=56,
    config_group="CFG#5")

#: The model registry, in Table 2 order (registration order).
MODEL_REGISTRY: Registry[MoEModelConfig] = Registry("model")


def register_model(config: MoEModelConfig,
                   replace: bool = False) -> MoEModelConfig:
    """Add ``config`` to the registry; collisions raise
    :class:`ConfigError` unless ``replace=True`` (mirrors
    :func:`repro.hw.spec.register_gpu`)."""
    return MODEL_REGISTRY.register(config.name, config, replace=replace)


for _cfg in (QWEN2_MOE, DEEPSEEK_MOE, MINICPM_MOE, OPENMOE_34B,
             MIXTRAL_8X7B, MIXTRAL_8X22B):
    register_model(_cfg)
del _cfg

CFG_GROUPS: dict[str, list[str]] = {
    "CFG#1": ["qwen2-moe", "deepseek-moe"],
    "CFG#2": ["minicpm-moe"],
    "CFG#3": ["openmoe-34b"],
    "CFG#4": ["mixtral-8x7b"],
    "CFG#5": ["mixtral-8x22b"],
}


def get_model(name: str) -> MoEModelConfig:
    """Look up a registered model by name (did-you-mean on a miss)."""
    return MODEL_REGISTRY.get(name)


def list_models() -> list[str]:
    """Registry keys in Table 2 (registration) order."""
    return list(MODEL_REGISTRY)
