"""MoE substrate: configs, routing, experts, layer engines, memory model.

Implements the paper's Table 2 model zoo and the five MoE layer execution
engines compared in §6.2-6.4: HuggingFace-Transformers-style (permute +
per-expert dense GEMMs), MegaBlocks (block-sparse grouped GEMM), vLLM-DS
(fused MoE kernel), PIT (permutation-invariant transformation), and
Samoyeds (dual-side sparse SSMM).
"""

from repro.moe.config import (
    CFG_GROUPS,
    MODEL_REGISTRY,
    MoEModelConfig,
    get_model,
    list_models,
    register_model,
)
from repro.moe.router import RoutingPlan, TopKRouter
from repro.moe.activations import get_activation, list_activations
from repro.moe.experts import ExpertWeights, build_expert, build_experts
from repro.moe.layers import (
    ENGINES,
    MegaBlocksEngine,
    MoEEngine,
    PitEngine,
    SamoyedsEngine,
    TransformersEngine,
    VllmEngine,
    register_engine,
)
from repro.moe.memory_model import (
    BlockAllocator,
    DeviceLedgers,
    KVCacheTracker,
    MemoryFootprint,
    MemoryLedger,
    max_batch_size,
    per_sequence_bytes,
)
from repro.moe.dataflow import permutation_seconds, unpermutation_seconds
from repro.moe.trace import padding_report, skewed_plan
from repro.moe.scheduler import (
    ExpertParallelResult,
    ExpertPlacement,
    compare_policies,
    place_experts,
    schedule_expert_parallel,
)

# Registers the "auto" engine (the cost-driven dispatcher) into
# ENGINES; a plain module import tolerates the partial-initialisation
# window when repro.registry.selector is what triggered this package.
# (AutoEngine itself is exported by repro.registry, lazily.)
import repro.registry.selector  # noqa: E402,F401  (registration side effect)

__all__ = [
    "CFG_GROUPS",
    "MODEL_REGISTRY",
    "MoEModelConfig",
    "get_model",
    "list_models",
    "register_model",
    "register_engine",
    "RoutingPlan",
    "TopKRouter",
    "get_activation",
    "list_activations",
    "ExpertWeights",
    "build_expert",
    "build_experts",
    "ENGINES",
    "MoEEngine",
    "TransformersEngine",
    "MegaBlocksEngine",
    "VllmEngine",
    "PitEngine",
    "SamoyedsEngine",
    "MemoryFootprint",
    "MemoryLedger",
    "KVCacheTracker",
    "BlockAllocator",
    "DeviceLedgers",
    "max_batch_size",
    "per_sequence_bytes",
    "permutation_seconds",
    "unpermutation_seconds",
    "padding_report",
    "skewed_plan",
    "compare_policies",
    "ExpertPlacement",
    "ExpertParallelResult",
    "place_experts",
    "schedule_expert_parallel",
]
