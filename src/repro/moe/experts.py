"""Expert weights: dense and Samoyeds-pruned variants.

An expert is a gated MLP: ``down_proj(act(gate_proj(x)) * up_proj(x))``.
Weights are stored **pre-transposed** (output-dim x input-dim) exactly as
§4.5's offline transposition prescribes, so every engine's GEMM is
``W @ x^T`` with no runtime transpose of W.

For functional tests the hidden/intermediate sizes can be scaled down
(``scale``); cost models never instantiate weights at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.formats.samoyeds import (
    SamoyedsPattern,
    SamoyedsWeight,
    prune_samoyeds,
)
from repro.moe.config import MoEModelConfig
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class ExpertWeights:
    """One expert's three projection matrices (pre-transposed).

    Shapes: ``gate_proj``/``up_proj`` are ``(intermediate, hidden)``;
    ``down_proj`` is ``(hidden, intermediate)``.
    """

    gate_proj: np.ndarray
    up_proj: np.ndarray
    down_proj: np.ndarray

    def __post_init__(self) -> None:
        inter, hidden = self.gate_proj.shape
        if self.up_proj.shape != (inter, hidden):
            raise ConfigError("up_proj shape mismatch with gate_proj")
        if self.down_proj.shape != (hidden, inter):
            raise ConfigError("down_proj must be (hidden, intermediate)")

    @property
    def hidden_size(self) -> int:
        return self.gate_proj.shape[1]

    @property
    def intermediate_size(self) -> int:
        return self.gate_proj.shape[0]

    def nbytes_dense(self, dtype_bytes: int = 2) -> int:
        return (self.gate_proj.size + self.up_proj.size
                + self.down_proj.size) * dtype_bytes

    def pruned(self, pattern: SamoyedsPattern) -> "ExpertWeights":
        """Dense weights with the Samoyeds mask applied (for references)."""
        return ExpertWeights(
            gate_proj=prune_samoyeds(self.gate_proj, pattern),
            up_proj=prune_samoyeds(self.up_proj, pattern),
            down_proj=prune_samoyeds(self.down_proj, pattern),
        )

    def encoded(self, pattern: SamoyedsPattern
                ) -> tuple[SamoyedsWeight, SamoyedsWeight, SamoyedsWeight]:
        """Samoyeds-format encodings of the three projections."""
        return (SamoyedsWeight.from_dense(self.gate_proj, pattern),
                SamoyedsWeight.from_dense(self.up_proj, pattern),
                SamoyedsWeight.from_dense(self.down_proj, pattern))


def build_expert(hidden_size: int, intermediate_size: int,
                 seed: int | np.random.Generator | None = None
                 ) -> ExpertWeights:
    """Random expert with transformer-standard initialisation scales."""
    rng = new_rng(seed)
    scale_in = 1.0 / np.sqrt(hidden_size)
    scale_out = 1.0 / np.sqrt(intermediate_size)
    return ExpertWeights(
        gate_proj=rng.normal(0, scale_in,
                             size=(intermediate_size, hidden_size)),
        up_proj=rng.normal(0, scale_in,
                           size=(intermediate_size, hidden_size)),
        down_proj=rng.normal(0, scale_out,
                             size=(hidden_size, intermediate_size)),
    )


def build_experts(config: MoEModelConfig, scale: int = 1,
                  seed: int | np.random.Generator | None = None,
                  include_shared: bool = True) -> list[ExpertWeights]:
    """All experts of one MoE layer, optionally size-scaled.

    ``scale`` divides hidden/intermediate sizes for functional testing;
    dimensions stay multiples of 32 so every sparse format still applies.
    Shared experts (if any and ``include_shared``) are appended *after*
    the routed experts.
    """
    if scale < 1:
        raise ConfigError("scale must be >= 1")
    hidden = max(32, config.hidden_size // scale)
    inter = max(32, config.intermediate_size // scale)
    hidden -= hidden % 32
    inter -= inter % 32
    rng = new_rng(seed)
    count = config.num_experts
    if include_shared:
        count += config.num_shared_experts
    return [build_expert(hidden, inter, rng) for _ in range(count)]
