"""Top-k token routing (Figure 1's routing mechanism).

The router scores every token against every expert, keeps the top-k
experts per token and normalises their gate weights with a softmax.  Its
output — per-expert token id lists — is precisely the information the
Samoyeds SEL arrays encode; the reference engines instead materialise the
permuted tensors of Figure 5 from it.

Shared experts (DeepSeek/Qwen style, §6.2) bypass routing: every token is
processed by every shared expert with unit weight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class RoutingPlan:
    """Routing decision for one batch of tokens.

    Attributes:
        num_tokens: Tokens routed.
        top_k: Experts per token.
        expert_token_ids: Per expert, the token ids routed to it (sorted).
        expert_gate_weights: Per expert, the gate weight of each routed
            token, aligned with ``expert_token_ids``.
    """

    num_tokens: int
    top_k: int
    expert_token_ids: tuple[np.ndarray, ...]
    expert_gate_weights: tuple[np.ndarray, ...]

    @property
    def num_experts(self) -> int:
        return len(self.expert_token_ids)

    def tokens_for(self, expert: int) -> np.ndarray:
        return self.expert_token_ids[expert]

    def load(self) -> np.ndarray:
        """Tokens per expert — the balance profile."""
        return np.array([ids.size for ids in self.expert_token_ids])

    def load_imbalance(self) -> float:
        """max/mean expert load (1.0 = perfectly balanced)."""
        loads = self.load()
        mean = loads.mean() if loads.size else 0.0
        return float(loads.max() / mean) if mean > 0 else 1.0

    def validate(self) -> None:
        """Check the routing invariants; raises :class:`RoutingError`."""
        counts = np.zeros(self.num_tokens, dtype=np.int64)
        for ids, weights in zip(self.expert_token_ids,
                                self.expert_gate_weights):
            if ids.shape != weights.shape:
                raise RoutingError("token ids and gate weights misaligned")
            if ids.size and (ids.min() < 0 or ids.max() >= self.num_tokens):
                raise RoutingError("token id out of range")
            if np.any(np.diff(ids) <= 0):
                raise RoutingError("expert token ids must be strictly "
                                   "increasing (each token at most once)")
            np.add.at(counts, ids, 1)
        if not np.all(counts == self.top_k):
            raise RoutingError(
                "every token must be routed to exactly top_k experts")
        total = np.zeros(self.num_tokens)
        for ids, weights in zip(self.expert_token_ids,
                                self.expert_gate_weights):
            np.add.at(total, ids, weights)
        if not np.allclose(total, 1.0, atol=1e-6):
            raise RoutingError("gate weights must sum to 1 per token")


class TopKRouter:
    """Softmax top-k router over a learned (here: random) scoring matrix."""

    def __init__(self, num_experts: int, top_k: int,
                 hidden_size: int | None = None,
                 seed: int | np.random.Generator | None = None) -> None:
        if top_k > num_experts:
            raise RoutingError(
                f"top_k={top_k} exceeds num_experts={num_experts}")
        self.num_experts = num_experts
        self.top_k = top_k
        self.hidden_size = hidden_size
        rng = new_rng(seed)
        if hidden_size is not None:
            scale = 1.0 / np.sqrt(hidden_size)
            self.gate_matrix = rng.normal(
                0.0, scale, size=(hidden_size, num_experts))
        else:
            self.gate_matrix = None
        self._rng = rng

    def logits(self, tokens: np.ndarray | int) -> np.ndarray:
        """Routing logits: ``x @ gate`` or synthetic when no weights."""
        if isinstance(tokens, np.ndarray) and self.gate_matrix is not None:
            return tokens @ self.gate_matrix
        count = tokens if isinstance(tokens, int) else tokens.shape[0]
        return self._rng.gumbel(size=(count, self.num_experts))

    def route(self, tokens: np.ndarray | int) -> RoutingPlan:
        """Route a batch; ``tokens`` is activations or a plain count."""
        logits = self.logits(tokens)
        num_tokens = logits.shape[0]
        top = np.argpartition(-logits, self.top_k - 1, axis=1)[:, :self.top_k]
        chosen = np.take_along_axis(logits, top, axis=1)
        # Per-token softmax over the selected experts only.
        chosen = chosen - chosen.max(axis=1, keepdims=True)
        weights = np.exp(chosen)
        weights /= weights.sum(axis=1, keepdims=True)

        ids_per_expert: list[np.ndarray] = []
        w_per_expert: list[np.ndarray] = []
        flat_tokens = np.repeat(np.arange(num_tokens), self.top_k)
        flat_experts = top.ravel()
        flat_weights = weights.ravel()
        for e in range(self.num_experts):
            mask = flat_experts == e
            ids = flat_tokens[mask]
            order = np.argsort(ids, kind="stable")
            ids_per_expert.append(ids[order])
            w_per_expert.append(flat_weights[mask][order])
        plan = RoutingPlan(
            num_tokens=num_tokens,
            top_k=self.top_k,
            expert_token_ids=tuple(ids_per_expert),
            expert_gate_weights=tuple(w_per_expert),
        )
        plan.validate()
        return plan


def uniform_plan(num_tokens: int, num_experts: int, top_k: int,
                 seed: int | np.random.Generator | None = None
                 ) -> RoutingPlan:
    """A perfectly balanced plan (capacity-factor-1 analytic workloads)."""
    rng = new_rng(seed)
    assignment = np.empty((num_tokens, top_k), dtype=np.int64)
    for t in range(num_tokens):
        assignment[t] = rng.choice(num_experts, size=top_k, replace=False)
    weights = np.full((num_tokens, top_k), 1.0 / top_k)
    ids_per_expert = []
    w_per_expert = []
    for e in range(num_experts):
        rows, cols = np.nonzero(assignment == e)
        order = np.argsort(rows, kind="stable")
        ids_per_expert.append(rows[order])
        w_per_expert.append(weights[rows[order], cols[order]])
    plan = RoutingPlan(num_tokens=num_tokens, top_k=top_k,
                       expert_token_ids=tuple(ids_per_expert),
                       expert_gate_weights=tuple(w_per_expert))
    plan.validate()
    return plan
