"""Expert activation functions.

MoE experts use gated MLPs: ``down(act(gate(x)) * up(x))``.  The
activation registry matters to the reproduction because kernel libraries
hard-code their fused epilogues: MegaBlocks and vLLM-DS only ship SiLU
(and GELU) epilogues, which is why OpenMoE-34B's variant shows up as *NS*
in Figures 14-16.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.errors import ConfigError

ActivationFn = Callable[[np.ndarray], np.ndarray]


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish: ``x * sigmoid(x)`` (LLaMA / Mixtral / Qwen family)."""
    return x / (1.0 + np.exp(-x))


def gelu(x: np.ndarray) -> np.ndarray:
    """Exact GELU via the error function."""
    from scipy.special import erf
    return 0.5 * x * (1.0 + erf(x / math.sqrt(2.0)))


def gelu_tanh(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU — OpenMoE's variant (the NS case)."""
    c = math.sqrt(2.0 / math.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x ** 3)))


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


_REGISTRY: dict[str, ActivationFn] = {
    "silu": silu,
    "gelu": gelu,
    "gelu_tanh": gelu_tanh,
    "relu": relu,
}

#: Activations with fused epilogues in MegaBlocks / vLLM-DS.
FUSED_KERNEL_ACTIVATIONS: frozenset[str] = frozenset({"silu", "gelu"})


def get_activation(name: str) -> ActivationFn:
    """Look up an activation; raises :class:`ConfigError` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown activation {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def list_activations() -> list[str]:
    return sorted(_REGISTRY)


def supported_by_fused_kernels(name: str) -> bool:
    """Whether MegaBlocks / vLLM-DS ship this epilogue (NS otherwise)."""
    return name in FUSED_KERNEL_ACTIVATIONS
