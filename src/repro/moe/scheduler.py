"""Expert-segment scheduling across GPU streams.

The Samoyeds engine executes one SSMM segment per expert.  On real
hardware those segments can overlap on separate streams until SMs are
saturated; with skewed routing the slowest expert dominates.  This
module models three policies and exposes the makespan arithmetic the
engine-level numbers summarise:

* ``sequential`` — one stream, segments back to back (the measurement
  configuration of the paper);
* ``parallel``   — greedy longest-processing-time placement onto ``s``
  streams (classic makespan scheduling);
* ``fused``      — one grid over all experts (the vLLM-style layout),
  for comparison.

An extension beyond the paper's evaluation, flagged as such in
DESIGN.md; it exercises the cost model against routing traces from
:mod:`repro.moe.trace`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.errors import ConfigError
from repro.hw.interconnect import ACT_BYTES, ClusterSpec, make_cluster
from repro.hw.spec import GPUSpec
from repro.kernels.ssmm_samoyeds import SamoyedsKernel
from repro.moe.config import MoEModelConfig
from repro.moe.router import RoutingPlan

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.context import ExecutionContext


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one layer's expert segments."""

    policy: str
    streams: int
    makespan_s: float
    segment_seconds: tuple[float, ...]

    @property
    def total_work_s(self) -> float:
        return sum(self.segment_seconds)

    @property
    def utilisation(self) -> float:
        """Work / (streams x makespan) — 1.0 means perfectly packed."""
        if self.makespan_s <= 0 or self.streams <= 0:
            return 0.0
        return self.total_work_s / (self.streams * self.makespan_s)


def segment_seconds_from_loads(config: MoEModelConfig,
                               loads: Iterable[int], spec: GPUSpec,
                               kernel: SamoyedsKernel,
                               tile_n: int = 64, tp: int = 1,
                               memo: "dict[int, float] | None" = None
                               ) -> list[float]:
    """Per-expert SSMM-triple time for the given per-expert token loads.

    The gate and up projections share one GEMM shape ``(inter, h, n_e)``
    so their cost is computed once and counted twice.  The load vector
    is bucketed through numpy: loads pad to their ``tile_n`` multiple
    with integer arithmetic (``(load + tile_n - 1) // tile_n * tile_n``
    equals the reference ``ceil`` for every integer load), the *unique*
    padded shapes are priced once each through the kernel model, and
    the per-expert vector is filled by bucket — a serving step prices a
    64-expert layer with a handful of kernel-model evaluations instead
    of one per expert.

    ``memo`` optionally persists the per-``n_e`` triple seconds across
    calls (the serving pricer reuses one dict per run).  It must be
    private to a fixed (config, spec, kernel, tile_n, tp) combination —
    entries are keyed by the padded shape alone.

    ``tp > 1`` prices a tensor-sharded segment: the expert inner
    dimension splits across the tensor-parallel group (the all-reduce
    that stitches shards back together is charged by the caller's
    interconnect model, not here).
    """
    if tile_n <= 0:
        raise ConfigError("tile_n must be positive")
    if tp <= 0:
        raise ConfigError("tp must be positive")
    h, inter = config.hidden_size, config.intermediate_size
    if tp > 1:
        inter = max(1, math.ceil(inter / tp))
    arr = np.asarray(loads if isinstance(loads, np.ndarray)
                     else list(loads), dtype=np.int64)
    if arr.size == 0:
        return []
    if memo is None:
        memo = {}
    padded = (arr + tile_n - 1) // tile_n * tile_n
    out = np.zeros(arr.size, dtype=np.float64)
    active = arr != 0
    for n_e in np.unique(padded[active]):
        n_int = int(n_e)
        triple = memo.get(n_int)
        if triple is None:
            gate_up_s = kernel.cost(inter, h, n_int, spec).time_s
            down_s = kernel.cost(h, inter, n_int, spec).time_s
            triple = memo[n_int] = 2.0 * gate_up_s + down_s
        out[active & (padded == n_e)] = triple
    return out.tolist()


def expert_segment_seconds(config: "MoEModelConfig | ExecutionContext",
                           plan: RoutingPlan,
                           spec: GPUSpec | None = None,
                           kernel: SamoyedsKernel | None = None,
                           tile_n: int | None = None) -> list[float]:
    """Per-expert SSMM-triple time under the actual routed loads.

    Accepts either the legacy ``(config, plan, spec, kernel)`` arguments
    or an :class:`~repro.context.ExecutionContext` first argument that
    supplies device, kernel and tile choices.
    """
    from repro.context import ExecutionContext
    if isinstance(config, ExecutionContext):
        ctx = config
        spec = spec or ctx.spec
        kernel = kernel or ctx.segment_kernel()
        tile_n = ctx.effective_tile_n if tile_n is None else tile_n
        config = ctx.config
    if spec is None or kernel is None:
        raise ConfigError(
            "spec and kernel are required without an ExecutionContext")
    return segment_seconds_from_loads(config, plan.load(), spec, kernel,
                                      64 if tile_n is None else tile_n)


def schedule_sequential(segments: list[float]) -> ScheduleResult:
    """All segments on one stream."""
    return ScheduleResult(policy="sequential", streams=1,
                          makespan_s=sum(segments),
                          segment_seconds=tuple(segments))


def schedule_parallel(segments: list[float],
                      streams: int) -> ScheduleResult:
    """Greedy LPT placement onto ``streams`` streams.

    LPT is a 4/3-approximation of optimal makespan — good enough to
    show the skew sensitivity the scheduler exists to expose.
    """
    if streams <= 0:
        raise ConfigError("streams must be positive")
    loads = [0.0] * streams
    heap = [(0.0, i) for i in range(streams)]
    heapq.heapify(heap)
    for seg in sorted(segments, reverse=True):
        load, idx = heapq.heappop(heap)
        loads[idx] = load + seg
        heapq.heappush(heap, (loads[idx], idx))
    return ScheduleResult(policy="parallel", streams=streams,
                          makespan_s=max(loads) if loads else 0.0,
                          segment_seconds=tuple(segments))


def schedule_fused(config: MoEModelConfig, plan: RoutingPlan,
                   spec: GPUSpec, kernel: SamoyedsKernel,
                   tile_n: int = 64) -> ScheduleResult:
    """One grouped grid over all experts (padding included)."""
    h, inter = config.hidden_size, config.intermediate_size
    padded_total = int(sum(math.ceil(int(load) / tile_n) * tile_n
                           for load in plan.load() if load))
    padded_total = max(padded_total, tile_n)
    # Gate and up share one GEMM shape: price it once, count it twice.
    gate_up_s = kernel.cost(inter, h, padded_total, spec).time_s
    total_s = (2.0 * gate_up_s
               + kernel.cost(h, inter, padded_total, spec).time_s)
    return ScheduleResult(policy="fused", streams=1, makespan_s=total_s,
                          segment_seconds=(total_s,))


def compare_policies(config: "MoEModelConfig | ExecutionContext",
                     plan: RoutingPlan,
                     spec: GPUSpec | None = None,
                     kernel: SamoyedsKernel | None = None,
                     streams: int | None = None,
                     tile_n: int | None = None) -> dict[str, ScheduleResult]:
    """All three policies on one routed workload.

    The first argument may be an :class:`~repro.context.ExecutionContext`
    supplying device, kernel, stream count and tile size.
    """
    from repro.context import ExecutionContext
    if isinstance(config, ExecutionContext):
        ctx = config
        spec = spec or ctx.spec
        kernel = kernel or ctx.segment_kernel()
        streams = streams if streams is not None else ctx.streams
        tile_n = ctx.effective_tile_n if tile_n is None else tile_n
        config = ctx.config
    if spec is None:
        raise ConfigError("spec is required without an ExecutionContext")
    kernel = kernel or SamoyedsKernel()
    streams = 4 if streams is None else streams
    tile_n = 64 if tile_n is None else tile_n
    segments_s = expert_segment_seconds(config, plan, spec, kernel,
                                        tile_n)
    return {
        "sequential": schedule_sequential(segments_s),
        "parallel": schedule_parallel(segments_s, streams),
        "fused": schedule_fused(config, plan, spec, kernel, tile_n),
    }


# ----------------------------------------------------------------------
# Expert-parallel placement and scheduling (cluster-scale extension)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExpertPlacement:
    """Static expert-to-device assignment for one expert-parallel group.

    Attributes:
        ep: Expert-parallel degree (devices in the group).
        device_of: Per expert, the owning device index.
        policy: Placement policy name (``round_robin`` / ``balanced``).
    """

    ep: int
    device_of: tuple[int, ...]
    policy: str = "round_robin"

    def __post_init__(self) -> None:
        if self.ep <= 0:
            raise ConfigError("ep must be positive")
        for device in self.device_of:
            if not 0 <= device < self.ep:
                raise ConfigError(
                    f"device {device} outside expert-parallel group of "
                    f"{self.ep}")

    @property
    def num_experts(self) -> int:
        return len(self.device_of)

    def experts_on(self, device: int) -> tuple[int, ...]:
        """Expert indices owned by ``device``."""
        return tuple(e for e, d in enumerate(self.device_of)
                     if d == device)

    def counts(self) -> tuple[int, ...]:
        """Experts per device (the weight-footprint profile)."""
        out = [0] * self.ep
        for device in self.device_of:
            out[device] += 1
        return tuple(out)

    @property
    def max_device_experts(self) -> int:
        """Expert count on the most loaded device (weight bottleneck)."""
        return max(self.counts())


def place_experts(num_experts: int, ep: int,
                  policy: str = "round_robin",
                  profile: "Iterable[float] | None" = None
                  ) -> ExpertPlacement:
    """Assign ``num_experts`` experts to ``ep`` devices.

    * ``round_robin`` — expert ``e`` lands on device ``e % ep``
      (placement used when no routing profile is known);
    * ``balanced``   — skew-aware LPT over ``profile`` (expected token
      share per expert, e.g. the measured routing histogram): heaviest
      expert first onto the least-loaded device, ties broken toward the
      device holding fewer experts so weight footprints stay level.
    """
    if num_experts <= 0:
        raise ConfigError("num_experts must be positive")
    if ep <= 0:
        raise ConfigError("ep must be positive")
    if ep > num_experts:
        raise ConfigError(
            f"expert-parallel degree {ep} exceeds {num_experts} experts")
    if policy == "round_robin":
        return ExpertPlacement(
            ep=ep, device_of=tuple(e % ep for e in range(num_experts)),
            policy=policy)
    if policy != "balanced":
        raise ConfigError(
            f"unknown placement policy {policy!r}; known: round_robin, "
            f"balanced")
    loads = ([1.0] * num_experts if profile is None
             else [float(x) for x in profile])
    if len(loads) != num_experts:
        raise ConfigError(
            f"profile has {len(loads)} entries for {num_experts} experts")
    if any(x < 0 for x in loads):
        raise ConfigError("profile entries must be non-negative")
    device_of = [0] * num_experts
    heap = [(0.0, 0, d) for d in range(ep)]   # (load, count, device)
    heapq.heapify(heap)
    order = sorted(range(num_experts), key=lambda e: -loads[e])
    for expert in order:
        load, count, device = heapq.heappop(heap)
        device_of[expert] = device
        heapq.heappush(heap, (load + loads[expert], count + 1, device))
    return ExpertPlacement(ep=ep, device_of=tuple(device_of),
                           policy=policy)


@dataclass(frozen=True)
class ExpertParallelResult:
    """One layer's MoE step priced over an expert-parallel group.

    The step is the slowest device's segment makespan plus the
    dispatch and combine all-to-alls that move routed activations to
    their experts and back.
    """

    placement: ExpertPlacement
    streams: int
    per_device_s: tuple[float, ...]
    alltoall_s: float

    @property
    def compute_s(self) -> float:
        """Slowest device's expert-segment makespan."""
        return max(self.per_device_s) if self.per_device_s else 0.0

    @property
    def makespan_s(self) -> float:
        return self.compute_s + self.alltoall_s

    @property
    def comm_fraction(self) -> float:
        total_s = self.makespan_s
        return self.alltoall_s / total_s if total_s > 0 else 0.0

    @property
    def device_imbalance(self) -> float:
        """max/mean device busy time (1.0 = perfectly balanced)."""
        if not self.per_device_s:
            return 1.0
        mean = sum(self.per_device_s) / len(self.per_device_s)
        return self.compute_s / mean if mean > 0 else 1.0


def device_makespans(segments: "Iterable[float]",
                     placement: ExpertPlacement,
                     streams: int = 1) -> list[float]:
    """Per-device LPT makespan of each device's own expert segments."""
    segs = list(segments)
    if len(segs) != placement.num_experts:
        raise ConfigError(
            f"{len(segs)} segments for {placement.num_experts} experts")
    out = []
    for device in range(placement.ep):
        mine = [segs[e] for e in placement.experts_on(device)]
        out.append(schedule_parallel(mine, streams).makespan_s
                   if mine else 0.0)
    return out


def dispatch_combine_seconds(config: MoEModelConfig, routed_tokens: int,
                             cluster: ClusterSpec, ep: int) -> float:
    """Dispatch + combine all-to-all for ``routed_tokens`` activations.

    Each expert-parallel device holds ``routed/ep`` token activations
    and exchanges the ``(ep-1)/ep`` remote share both ways (token to
    expert, expert output back to token).
    """
    if ep <= 1 or routed_tokens <= 0:
        return 0.0
    per_device = (routed_tokens / ep) * config.hidden_size * ACT_BYTES
    return 2.0 * cluster.alltoall_seconds(per_device, ep)


def schedule_expert_parallel(config: "MoEModelConfig | ExecutionContext",
                             plan: RoutingPlan,
                             ep: int | None = None,
                             spec: GPUSpec | None = None,
                             kernel: SamoyedsKernel | None = None,
                             streams: int | None = None,
                             tile_n: int | None = None,
                             tp: int | None = None,
                             cluster: ClusterSpec | None = None,
                             policy: str = "balanced",
                             placement: ExpertPlacement | None = None
                             ) -> ExpertParallelResult:
    """Price one MoE layer step over an expert-parallel device group.

    The first argument may be an :class:`~repro.context.ExecutionContext`
    supplying device, kernel, stream count, tile size and the parallel
    plan/topology; explicit arguments override.  The routing ``plan``
    doubles as the placement profile when ``policy='balanced'``.
    """
    from repro.context import ExecutionContext
    if isinstance(config, ExecutionContext):
        ctx = config
        spec = spec or ctx.spec
        kernel = kernel or ctx.segment_kernel()
        streams = streams if streams is not None else ctx.streams
        tile_n = ctx.effective_tile_n if tile_n is None else tile_n
        ep = ctx.parallel.ep if ep is None else ep
        tp = ctx.parallel.tp if tp is None else tp
        cluster = cluster or ctx.cluster_spec
        config = ctx.config
    if spec is None:
        raise ConfigError("spec is required without an ExecutionContext")
    kernel = kernel or SamoyedsKernel()
    streams = 1 if streams is None else streams
    tile_n = 64 if tile_n is None else tile_n
    ep = 1 if ep is None else ep
    tp = 1 if tp is None else tp
    loads = plan.load()
    if placement is None:
        placement = place_experts(config.num_experts, ep, policy=policy,
                                  profile=[float(x) for x in loads])
    elif placement.ep != ep or placement.num_experts != config.num_experts:
        raise ConfigError("placement does not match ep/num_experts")
    if cluster is None:
        from repro.hw.interconnect import ParallelPlan
        cluster = make_cluster(spec, ParallelPlan(ep=ep, tp=tp))
    segments_s = segment_seconds_from_loads(config, loads, spec,
                                            kernel, tile_n, tp=tp)
    per_device = device_makespans(segments_s, placement, streams)
    comm_s = dispatch_combine_seconds(config, int(sum(loads)), cluster,
                                      ep)
    return ExpertParallelResult(placement=placement, streams=streams,
                                per_device_s=tuple(per_device),
                                alltoall_s=comm_s)
