"""Expert-segment scheduling across GPU streams.

The Samoyeds engine executes one SSMM segment per expert.  On real
hardware those segments can overlap on separate streams until SMs are
saturated; with skewed routing the slowest expert dominates.  This
module models three policies and exposes the makespan arithmetic the
engine-level numbers summarise:

* ``sequential`` — one stream, segments back to back (the measurement
  configuration of the paper);
* ``parallel``   — greedy longest-processing-time placement onto ``s``
  streams (classic makespan scheduling);
* ``fused``      — one grid over all experts (the vLLM-style layout),
  for comparison.

An extension beyond the paper's evaluation, flagged as such in
DESIGN.md; it exercises the cost model against routing traces from
:mod:`repro.moe.trace`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.spec import GPUSpec
from repro.kernels.ssmm_samoyeds import SamoyedsKernel
from repro.moe.config import MoEModelConfig
from repro.moe.router import RoutingPlan


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one layer's expert segments."""

    policy: str
    streams: int
    makespan_s: float
    segment_seconds: tuple[float, ...]

    @property
    def total_work_s(self) -> float:
        return sum(self.segment_seconds)

    @property
    def utilisation(self) -> float:
        """Work / (streams x makespan) — 1.0 means perfectly packed."""
        if self.makespan_s <= 0 or self.streams <= 0:
            return 0.0
        return self.total_work_s / (self.streams * self.makespan_s)


def expert_segment_seconds(config: MoEModelConfig, plan: RoutingPlan,
                           spec: GPUSpec, kernel: SamoyedsKernel,
                           tile_n: int = 64) -> list[float]:
    """Per-expert SSMM-triple time under the actual routed loads."""
    h, inter = config.hidden_size, config.intermediate_size
    out = []
    for load in plan.load():
        if load == 0:
            out.append(0.0)
            continue
        n_e = math.ceil(int(load) / tile_n) * tile_n
        triple = (kernel.cost(inter, h, n_e, spec).time_s
                  + kernel.cost(inter, h, n_e, spec).time_s
                  + kernel.cost(h, inter, n_e, spec).time_s)
        out.append(triple)
    return out


def schedule_sequential(segments: list[float]) -> ScheduleResult:
    """All segments on one stream."""
    return ScheduleResult(policy="sequential", streams=1,
                          makespan_s=sum(segments),
                          segment_seconds=tuple(segments))


def schedule_parallel(segments: list[float],
                      streams: int) -> ScheduleResult:
    """Greedy LPT placement onto ``streams`` streams.

    LPT is a 4/3-approximation of optimal makespan — good enough to
    show the skew sensitivity the scheduler exists to expose.
    """
    if streams <= 0:
        raise ConfigError("streams must be positive")
    loads = [0.0] * streams
    heap = [(0.0, i) for i in range(streams)]
    heapq.heapify(heap)
    for seg in sorted(segments, reverse=True):
        load, idx = heapq.heappop(heap)
        loads[idx] = load + seg
        heapq.heappush(heap, (loads[idx], idx))
    return ScheduleResult(policy="parallel", streams=streams,
                          makespan_s=max(loads) if loads else 0.0,
                          segment_seconds=tuple(segments))


def schedule_fused(config: MoEModelConfig, plan: RoutingPlan,
                   spec: GPUSpec, kernel: SamoyedsKernel,
                   tile_n: int = 64) -> ScheduleResult:
    """One grouped grid over all experts (padding included)."""
    h, inter = config.hidden_size, config.intermediate_size
    padded_total = int(sum(math.ceil(int(load) / tile_n) * tile_n
                           for load in plan.load() if load))
    padded_total = max(padded_total, tile_n)
    total = (kernel.cost(inter, h, padded_total, spec).time_s
             + kernel.cost(inter, h, padded_total, spec).time_s
             + kernel.cost(h, inter, padded_total, spec).time_s)
    return ScheduleResult(policy="fused", streams=1, makespan_s=total,
                          segment_seconds=(total,))


def compare_policies(config: MoEModelConfig, plan: RoutingPlan,
                     spec: GPUSpec,
                     kernel: SamoyedsKernel | None = None,
                     streams: int = 4,
                     tile_n: int = 64) -> dict[str, ScheduleResult]:
    """All three policies on one routed workload."""
    kernel = kernel or SamoyedsKernel()
    segments = expert_segment_seconds(config, plan, spec, kernel, tile_n)
    return {
        "sequential": schedule_sequential(segments),
        "parallel": schedule_parallel(segments, streams),
        "fused": schedule_fused(config, plan, spec, kernel, tile_n),
    }
