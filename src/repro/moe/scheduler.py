"""Expert-segment scheduling across GPU streams.

The Samoyeds engine executes one SSMM segment per expert.  On real
hardware those segments can overlap on separate streams until SMs are
saturated; with skewed routing the slowest expert dominates.  This
module models three policies and exposes the makespan arithmetic the
engine-level numbers summarise:

* ``sequential`` — one stream, segments back to back (the measurement
  configuration of the paper);
* ``parallel``   — greedy longest-processing-time placement onto ``s``
  streams (classic makespan scheduling);
* ``fused``      — one grid over all experts (the vLLM-style layout),
  for comparison.

An extension beyond the paper's evaluation, flagged as such in
DESIGN.md; it exercises the cost model against routing traces from
:mod:`repro.moe.trace`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigError
from repro.hw.spec import GPUSpec
from repro.kernels.ssmm_samoyeds import SamoyedsKernel
from repro.moe.config import MoEModelConfig
from repro.moe.router import RoutingPlan

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.context import ExecutionContext


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one layer's expert segments."""

    policy: str
    streams: int
    makespan_s: float
    segment_seconds: tuple[float, ...]

    @property
    def total_work_s(self) -> float:
        return sum(self.segment_seconds)

    @property
    def utilisation(self) -> float:
        """Work / (streams x makespan) — 1.0 means perfectly packed."""
        if self.makespan_s <= 0 or self.streams <= 0:
            return 0.0
        return self.total_work_s / (self.streams * self.makespan_s)


def segment_seconds_from_loads(config: MoEModelConfig,
                               loads: Iterable[int], spec: GPUSpec,
                               kernel: SamoyedsKernel,
                               tile_n: int = 64) -> list[float]:
    """Per-expert SSMM-triple time for the given per-expert token loads.

    The gate and up projections share one GEMM shape ``(inter, h, n_e)``
    so their cost is computed once and counted twice; repeated padded
    loads (common under near-uniform routing) hit a per-call memo so a
    serving step prices a 64-expert layer with a handful of kernel-model
    evaluations.
    """
    if tile_n <= 0:
        raise ConfigError("tile_n must be positive")
    h, inter = config.hidden_size, config.intermediate_size
    memo: dict[int, float] = {}
    out = []
    for load in loads:
        if load == 0:
            out.append(0.0)
            continue
        n_e = math.ceil(int(load) / tile_n) * tile_n
        triple = memo.get(n_e)
        if triple is None:
            gate_up = kernel.cost(inter, h, n_e, spec).time_s
            down = kernel.cost(h, inter, n_e, spec).time_s
            triple = memo[n_e] = 2.0 * gate_up + down
        out.append(triple)
    return out


def expert_segment_seconds(config: "MoEModelConfig | ExecutionContext",
                           plan: RoutingPlan,
                           spec: GPUSpec | None = None,
                           kernel: SamoyedsKernel | None = None,
                           tile_n: int | None = None) -> list[float]:
    """Per-expert SSMM-triple time under the actual routed loads.

    Accepts either the legacy ``(config, plan, spec, kernel)`` arguments
    or an :class:`~repro.context.ExecutionContext` first argument that
    supplies device, kernel and tile choices.
    """
    from repro.context import ExecutionContext
    if isinstance(config, ExecutionContext):
        ctx = config
        spec = spec or ctx.spec
        kernel = kernel or ctx.segment_kernel()
        tile_n = ctx.effective_tile_n if tile_n is None else tile_n
        config = ctx.config
    if spec is None or kernel is None:
        raise ConfigError(
            "spec and kernel are required without an ExecutionContext")
    return segment_seconds_from_loads(config, plan.load(), spec, kernel,
                                      64 if tile_n is None else tile_n)


def schedule_sequential(segments: list[float]) -> ScheduleResult:
    """All segments on one stream."""
    return ScheduleResult(policy="sequential", streams=1,
                          makespan_s=sum(segments),
                          segment_seconds=tuple(segments))


def schedule_parallel(segments: list[float],
                      streams: int) -> ScheduleResult:
    """Greedy LPT placement onto ``streams`` streams.

    LPT is a 4/3-approximation of optimal makespan — good enough to
    show the skew sensitivity the scheduler exists to expose.
    """
    if streams <= 0:
        raise ConfigError("streams must be positive")
    loads = [0.0] * streams
    heap = [(0.0, i) for i in range(streams)]
    heapq.heapify(heap)
    for seg in sorted(segments, reverse=True):
        load, idx = heapq.heappop(heap)
        loads[idx] = load + seg
        heapq.heappush(heap, (loads[idx], idx))
    return ScheduleResult(policy="parallel", streams=streams,
                          makespan_s=max(loads) if loads else 0.0,
                          segment_seconds=tuple(segments))


def schedule_fused(config: MoEModelConfig, plan: RoutingPlan,
                   spec: GPUSpec, kernel: SamoyedsKernel,
                   tile_n: int = 64) -> ScheduleResult:
    """One grouped grid over all experts (padding included)."""
    h, inter = config.hidden_size, config.intermediate_size
    padded_total = int(sum(math.ceil(int(load) / tile_n) * tile_n
                           for load in plan.load() if load))
    padded_total = max(padded_total, tile_n)
    # Gate and up share one GEMM shape: price it once, count it twice.
    gate_up = kernel.cost(inter, h, padded_total, spec).time_s
    total = 2.0 * gate_up + kernel.cost(h, inter, padded_total, spec).time_s
    return ScheduleResult(policy="fused", streams=1, makespan_s=total,
                          segment_seconds=(total,))


def compare_policies(config: "MoEModelConfig | ExecutionContext",
                     plan: RoutingPlan,
                     spec: GPUSpec | None = None,
                     kernel: SamoyedsKernel | None = None,
                     streams: int | None = None,
                     tile_n: int | None = None) -> dict[str, ScheduleResult]:
    """All three policies on one routed workload.

    The first argument may be an :class:`~repro.context.ExecutionContext`
    supplying device, kernel, stream count and tile size.
    """
    from repro.context import ExecutionContext
    if isinstance(config, ExecutionContext):
        ctx = config
        spec = spec or ctx.spec
        kernel = kernel or ctx.segment_kernel()
        streams = streams if streams is not None else ctx.streams
        tile_n = ctx.effective_tile_n if tile_n is None else tile_n
        config = ctx.config
    if spec is None:
        raise ConfigError("spec is required without an ExecutionContext")
    kernel = kernel or SamoyedsKernel()
    streams = 4 if streams is None else streams
    tile_n = 64 if tile_n is None else tile_n
    segments = expert_segment_seconds(config, plan, spec, kernel, tile_n)
    return {
        "sequential": schedule_sequential(segments),
        "parallel": schedule_parallel(segments, streams),
        "fused": schedule_fused(config, plan, spec, kernel, tile_n),
    }
