"""MoE layer execution engines (§6.2's five contestants).

Every engine implements the same mathematical layer —

``y[t] = sum_e gate[t,e] * expert_e(x[t])`` over each token's top-k
experts (plus unconditional shared experts) —

but with the data flow of its namesake system:

* :class:`TransformersEngine` — HuggingFace reference: materialised input
  permutation, one dense GEMM triple per expert, unfused activation,
  weighted un-permutation through global memory (Figure 5's redundancy).
* :class:`MegaBlocksEngine` — block-sparse grouped GEMM: all experts in
  one kernel, tokens padded to 128-row blocks, no permutation tensors.
* :class:`VllmEngine` — vLLM-DS fused MoE kernel: gather + GEMM + epilogue
  fused, dense weights.
* :class:`PitEngine` — PIT's permutation-invariant transformation:
  micro-tile (16-row) gathering into dense tiles; exploits activation
  sparsity only, no SpTC (§6.7).
* :class:`SamoyedsEngine` — dual-side sparse SSMM: Samoyeds weights on
  SpTC, SEL-based input selection, fused activation and weighted
  accumulation, compressed intermediate layout.

Functional ``run`` faces compute exact numpy results (dense engines agree
with each other to float tolerance; Samoyeds agrees with the pruned-weight
reference).  ``cost`` faces return simulated :class:`CostBreakdown`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigError
from repro.hw.simulator import CostBreakdown, combine
from repro.hw.spec import GPUSpec
from repro.kernels.base import MatmulKernel
from repro.kernels.gemm_dense import DenseGemmKernel
from repro.kernels.ssmm_samoyeds import SamoyedsFeatures, SamoyedsKernel
from repro.formats.samoyeds import DEFAULT_PATTERN, SamoyedsPattern
from repro.formats.selection import ColumnSelection
from repro.kernels.fusion import fused_weighted_accumulate
from repro.moe.activations import (
    get_activation,
    supported_by_fused_kernels,
)
from repro.moe.config import MoEModelConfig
from repro.moe.dataflow import permutation_seconds, unpermutation_seconds
from repro.moe.experts import ExpertWeights
from repro.moe.router import RoutingPlan
from repro.registry.capabilities import Capabilities
from repro.registry.core import Registry


def _expert_forward(x_e: np.ndarray, expert: ExpertWeights,
                    activation: str) -> np.ndarray:
    """Reference gated-MLP forward for one expert's token rows."""
    act = get_activation(activation)
    h_gate = x_e @ expert.gate_proj.T
    h_up = x_e @ expert.up_proj.T
    return (act(h_gate) * h_up) @ expert.down_proj.T


@dataclass(frozen=True)
class LayerWorkload:
    """The per-layer quantities every cost model needs."""

    config: MoEModelConfig
    tokens: int

    @property
    def routed_tokens_per_expert(self) -> float:
        return self.tokens * self.config.top_k / self.config.num_experts

    @property
    def total_routed_tokens(self) -> int:
        return self.tokens * self.config.top_k

    def padded_routed_tokens(self, tile_n: int) -> int:
        """Total routed tokens after per-expert padding to ``tile_n``."""
        per_expert = math.ceil(self.routed_tokens_per_expert / tile_n)
        return per_expert * tile_n * self.config.num_experts


class MoEEngine(abc.ABC):
    """Base class for the five engines."""

    name: str = "engine"
    #: Meta engines (the ``auto`` dispatcher) are registered like any
    #: other but are not contestants: figure sweeps skip them.
    is_meta: bool = False

    # ------------------------------------------------------------------
    # Capability checks (the NS markers of Figures 14-16)
    # ------------------------------------------------------------------
    def supports(self, config: MoEModelConfig) -> bool:
        return True

    def capabilities(self) -> Capabilities:
        """Declared capability metadata (queried by ``engine="auto"``
        and ``repro list engines``).  The default describes the dense
        baselines; sparse engines override."""
        return Capabilities(sparsity_format="dense", a_density=1.0,
                            mma_shapes=("mma.m16n8k16",),
                            needs_sparse_tensor_cores=False)

    def segment_kernel(self, config: MoEModelConfig,
                       spec: GPUSpec) -> "MatmulKernel | None":
        """Kernel pricing this engine's expert segments in the
        stream/placement schedulers; ``None`` keeps the caller's
        default (the Samoyeds SSMM, the paper's measurement setup)."""
        del config, spec
        return getattr(self, "_kernel", None)

    def check_supported(self, config: MoEModelConfig) -> None:
        if not self.supports(config):
            raise ConfigError(
                f"{self.name} does not support {config.name} "
                f"(activation {config.activation!r} has no fused epilogue)")

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------
    def run(self, x: np.ndarray, plan: RoutingPlan,
            experts: list[ExpertWeights], activation: str = "silu",
            num_shared: int = 0) -> np.ndarray:
        """Exact forward pass.  ``experts`` lists routed experts first,
        then ``num_shared`` shared experts."""
        routed = experts[:len(experts) - num_shared]
        shared = experts[len(experts) - num_shared:]
        if len(routed) != plan.num_experts:
            raise ConfigError(
                f"{len(routed)} routed experts != plan's {plan.num_experts}")
        out = np.zeros_like(x, dtype=np.float64)
        self._run_routed(x, plan, routed, activation, out)
        for expert in shared:
            out += _expert_forward(x, expert, activation)
        return out.astype(x.dtype)

    def _run_routed(self, x: np.ndarray, plan: RoutingPlan,
                    experts: list[ExpertWeights], activation: str,
                    out: np.ndarray) -> None:
        """Default routed path: gather -> expert -> weighted scatter."""
        for e, expert in enumerate(experts):
            ids = plan.tokens_for(e)
            if ids.size == 0:
                continue
            y = _expert_forward(x[ids], expert, activation)
            fused_weighted_accumulate(out, y, plan.expert_gate_weights[e],
                                      ids)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def cost(self, config: MoEModelConfig, tokens: int, spec: GPUSpec,
             num_shared: int | None = None) -> CostBreakdown:
        """Simulated MoE-layer latency for ``tokens`` tokens."""

    # Helpers shared by subclasses ------------------------------------
    def _triple(self, kernel: MatmulKernel, config: MoEModelConfig,
                n_tokens: int, spec: GPUSpec,
                label: str) -> list[CostBreakdown]:
        """The gate/up/down GEMM triple at ``n_tokens`` columns.

        Gate and up projections share one GEMM shape, so their cost is
        evaluated once and listed twice (``combine`` only reads the
        values, so repeating the breakdown is exact).
        """
        h, inter = config.hidden_size, config.intermediate_size
        n_tokens = max(1, n_tokens)
        gate_up = kernel.cost(inter, h, n_tokens, spec)
        return [gate_up, gate_up, kernel.cost(h, inter, n_tokens, spec)]

    def _shared_cost(self, kernel: MatmulKernel, config: MoEModelConfig,
                     tokens: int, spec: GPUSpec, num_shared: int
                     ) -> list[CostBreakdown]:
        # Every shared expert sees the full token batch, so one triple
        # prices them all; replicate it per expert for the combine sum.
        if num_shared <= 0:
            return []
        return self._triple(kernel, config, tokens, spec,
                            "shared") * num_shared


def _elementwise_pass_seconds(rows: int, cols: int, spec: GPUSpec,
                              passes: int = 1) -> float:
    """Unfused elementwise op: read + write per pass, plus launches."""
    per_pass = 2.0 * rows * cols * 2 / spec.dram_bandwidth
    return passes * (per_pass + spec.kernel_launch_overhead_s)


class TransformersEngine(MoEEngine):
    """HuggingFace Transformers reference (the paper's Vanilla)."""

    name = "transformers"

    def __init__(self) -> None:
        self._kernel = DenseGemmKernel()

    def _run_routed(self, x, plan, experts, activation, out):
        # Materialise the permuted tensors exactly as Figure 5 shows.
        for e, expert in enumerate(experts):
            ids = plan.tokens_for(e)
            if ids.size == 0:
                continue
            x_e = x[ids].copy()                       # input permutation
            y = _expert_forward(x_e, expert, activation)
            scattered = np.zeros_like(out)            # un-permutation via
            scattered[ids] = (plan.expert_gate_weights[e][:, None]
                              * y)                    # global memory
            out += scattered

    def cost(self, config: MoEModelConfig, tokens: int, spec: GPUSpec,
             num_shared: int | None = None) -> CostBreakdown:
        shared = (config.num_shared_experts if num_shared is None
                  else num_shared)
        work = LayerWorkload(config, tokens)
        n_e = max(1, round(work.routed_tokens_per_expert))
        # Every routed expert prices at the same mean load: one triple,
        # replicated per expert.
        parts = self._triple(self._kernel, config, n_e, spec,
                             "expert") * config.num_experts
        parts.extend(self._shared_cost(self._kernel, config, tokens, spec,
                                       shared))
        gemm = combine(f"{self.name}-gemms", parts)
        extra_s = (
            permutation_seconds(tokens, config.hidden_size, config.top_k,
                                spec)
            + unpermutation_seconds(tokens, config.hidden_size,
                                    config.top_k, spec)
            # per-expert gather/scatter launches of the permuted flow
            + 2 * config.num_experts * spec.kernel_launch_overhead_s
            # act(gate) and *up are two unfused elementwise passes over
            # the intermediate, per expert population.
            + _elementwise_pass_seconds(work.total_routed_tokens,
                                        config.intermediate_size, spec,
                                        passes=2)
        )
        return replace(gemm, name=self.name,
                       time_s=gemm.time_s + extra_s,
                       detail={"gemm_s": gemm.time_s,
                               "dataflow_s": extra_s})


class MegaBlocksEngine(MoEEngine):
    """MegaBlocks block-sparse grouped GEMM."""

    name = "megablocks"
    BLOCK_ROWS = 128

    def __init__(self) -> None:
        kernel = DenseGemmKernel()
        kernel.EFFICIENCY = 0.80       # block-sparse bookkeeping overhead
        kernel.name = "megablocks-bsgemm"
        self._kernel = kernel

    def supports(self, config: MoEModelConfig) -> bool:
        return supported_by_fused_kernels(config.activation)

    def cost(self, config: MoEModelConfig, tokens: int, spec: GPUSpec,
             num_shared: int | None = None) -> CostBreakdown:
        self.check_supported(config)
        shared = (config.num_shared_experts if num_shared is None
                  else num_shared)
        work = LayerWorkload(config, tokens)
        padded_tokens = work.padded_routed_tokens(self.BLOCK_ROWS)
        parts = self._triple(self._kernel, config, padded_tokens, spec,
                             "grouped")
        parts.extend(self._shared_cost(self._kernel, config, tokens, spec,
                                       shared))
        gemm = combine(f"{self.name}-gemms", parts)
        # Block gathering metadata pass + one fused act*up pass.
        extra_s = (_elementwise_pass_seconds(
                       padded_tokens, config.intermediate_size, spec)
                   + tokens * config.top_k * 8 / spec.dram_bandwidth)
        return replace(gemm, name=self.name,
                       time_s=gemm.time_s + extra_s,
                       detail={"gemm_s": gemm.time_s,
                               "dataflow_s": extra_s,
                               "padded_tokens": float(padded_tokens)})


class VllmEngine(MoEEngine):
    """vLLM-DS fused MoE kernel (the SOTA dense baseline)."""

    name = "vllm-ds"
    TILE_ROWS = 64

    def __init__(self) -> None:
        kernel = DenseGemmKernel()
        kernel.EFFICIENCY = 0.85
        kernel.name = "vllm-fused-moe"
        self._kernel = kernel

    def supports(self, config: MoEModelConfig) -> bool:
        return supported_by_fused_kernels(config.activation)

    def cost(self, config: MoEModelConfig, tokens: int, spec: GPUSpec,
             num_shared: int | None = None) -> CostBreakdown:
        self.check_supported(config)
        shared = (config.num_shared_experts if num_shared is None
                  else num_shared)
        work = LayerWorkload(config, tokens)
        padded_tokens = work.padded_routed_tokens(self.TILE_ROWS)
        parts = self._triple(self._kernel, config, padded_tokens, spec,
                             "fused")
        parts.extend(self._shared_cost(self._kernel, config, tokens, spec,
                                       shared))
        gemm = combine(f"{self.name}-gemms", parts)
        # Fused gather/epilogue: only the routing-table pass remains.
        extra_s = tokens * config.top_k * 8 / spec.dram_bandwidth
        return replace(gemm, name=self.name,
                       time_s=gemm.time_s + extra_s,
                       detail={"gemm_s": gemm.time_s,
                               "dataflow_s": extra_s,
                               "padded_tokens": float(padded_tokens)})


class PitEngine(MoEEngine):
    """PIT compiler baseline: micro-tile permutation invariance (§6.7)."""

    name = "pit"
    MICRO_TILE = 16

    def __init__(self) -> None:
        kernel = DenseGemmKernel()
        kernel.EFFICIENCY = 0.82
        kernel.name = "pit-mtile-gemm"
        self._kernel = kernel

    def cost(self, config: MoEModelConfig, tokens: int, spec: GPUSpec,
             num_shared: int | None = None) -> CostBreakdown:
        shared = (config.num_shared_experts if num_shared is None
                  else num_shared)
        work = LayerWorkload(config, tokens)
        padded_tokens = work.padded_routed_tokens(self.MICRO_TILE)
        parts = self._triple(self._kernel, config, padded_tokens, spec,
                             "pit")
        parts.extend(self._shared_cost(self._kernel, config, tokens, spec,
                                       shared))
        gemm = combine(f"{self.name}-gemms", parts)
        # The PIT transformation maintains tile index tables and performs
        # the micro-tile gather/scatter (one round trip of the inputs).
        transform = (2.0 * work.total_routed_tokens * config.hidden_size
                     * 2 / spec.dram_bandwidth
                     + 2 * spec.kernel_launch_overhead_s)
        extra_s = transform + _elementwise_pass_seconds(
            padded_tokens, config.intermediate_size, spec)
        return replace(gemm, name=self.name,
                       time_s=gemm.time_s + extra_s,
                       detail={"gemm_s": gemm.time_s,
                               "dataflow_s": extra_s,
                               "padded_tokens": float(padded_tokens)})


class SamoyedsEngine(MoEEngine):
    """The paper's system: dual-side sparse SSMM with fused data flow."""

    name = "samoyeds"

    def __init__(self, pattern: SamoyedsPattern = DEFAULT_PATTERN,
                 features: SamoyedsFeatures | None = None) -> None:
        self.pattern = pattern
        self.features = features or SamoyedsFeatures()
        # GEMM kernels always see a fused layout: unfused transposition
        # is an engine-level (graph-level) cost, charged once per expert
        # below rather than once per kernel launch.
        from repro.kernels.layout import LayoutPlan as _LayoutPlan
        gemm_features = replace(self.features, layout=_LayoutPlan())
        self._kernel = SamoyedsKernel(pattern=pattern,
                                      features=gemm_features)

    def tile_rows(self, config: MoEModelConfig) -> int:
        """n-tile: narrowed for many-expert models (§4.2, §6.2)."""
        return 64 if config.num_experts > 16 else 128

    def capabilities(self) -> Capabilities:
        return Capabilities(
            sparsity_format="samoyeds",
            a_density=self.pattern.density,
            mma_shapes=(self._kernel.mma_shape().name,),
            needs_sparse_tensor_cores=True)

    # Functional: identical math to the reference but on pruned weights
    # and through the SEL view (no permutation copies).
    def _run_routed(self, x, plan, experts, activation, out):
        act = get_activation(activation)
        xt = np.ascontiguousarray(x.T)        # §4.5: tokens as columns
        for e, expert in enumerate(experts):
            ids = plan.tokens_for(e)
            if ids.size == 0:
                continue
            pruned = expert.pruned(self.pattern)
            sel = ColumnSelection(full=xt, sel=ids)
            h_gate = pruned.gate_proj @ sel.gather()      # SSMM
            h_up = pruned.up_proj @ sel.gather()          # SSMM
            inter = act(h_gate) * h_up                    # fused epilogue
            y = (pruned.down_proj @ inter).T              # SSMM + fused acc
            fused_weighted_accumulate(out, y, plan.expert_gate_weights[e],
                                      ids)

    def run(self, x, plan, experts, activation="silu", num_shared=0):
        routed = experts[:len(experts) - num_shared]
        shared = experts[len(experts) - num_shared:]
        out = np.zeros_like(x, dtype=np.float64)
        self._run_routed(x, plan, routed, activation, out)
        for expert in shared:
            out += _expert_forward(x, expert.pruned(self.pattern),
                                   activation)
        return out.astype(x.dtype)

    #: fp32 read-modify-write of the shared accumulator in the fused
    #: weighted-accumulation epilogue (read 4B + write 4B per fp16 out).
    ACC_EPILOGUE_FACTOR = 4.0

    def cost(self, config: MoEModelConfig, tokens: int, spec: GPUSpec,
             num_shared: int | None = None) -> CostBreakdown:
        shared = (config.num_shared_experts if num_shared is None
                  else num_shared)
        work = LayerWorkload(config, tokens)
        tile_n = self.tile_rows(config)
        h, inter = config.hidden_size, config.intermediate_size
        # The kernel integrates with the model expert-by-expert (§4.5's
        # layout variants exist per operand role): each expert is one
        # SSMM segment at its own padded token count.  This is where the
        # §6.2 padding discussion bites for many-expert models.
        n_e = math.ceil(work.routed_tokens_per_expert / tile_n) * tile_n
        # All experts share the padded segment shape: price the SSMM
        # triple once (gate and up are the same GEMM) and replicate.
        routed_gate_up = self._kernel.cost(inter, h, n_e, spec,
                                           n_full=tokens)
        routed_down = self._kernel.cost(h, inter, n_e, spec,
                                        n_full=tokens)
        parts = [routed_gate_up, routed_gate_up,
                 routed_down] * config.num_experts
        if shared > 0:
            shared_gate_up = self._kernel.cost(inter, h, tokens, spec,
                                               n_full=tokens)
            shared_down = self._kernel.cost(h, inter, tokens, spec,
                                            n_full=tokens)
            parts.extend([shared_gate_up, shared_gate_up,
                          shared_down] * shared)
        gemm = combine(f"{self.name}-gemms", parts)
        # Fused weighted accumulation: the down_proj epilogue performs an
        # fp32 read-modify-write against the shared output for every
        # routed token (plus shared-expert contributions).
        acc_rows = work.total_routed_tokens + shared * tokens
        acc_s = (self.ACC_EPILOGUE_FACTOR * acc_rows * h
                 / spec.dram_bandwidth)
        # The act(gate)*up fusion happens in the up_proj epilogue, which
        # re-reads the materialised gate output: one intermediate round
        # trip survives even in the fused pipeline.
        inter_rt_s = (2.0 * (n_e * config.num_experts + shared * tokens)
                      * inter * 2 / spec.dram_bandwidth)
        extra_s = acc_s + inter_rt_s
        if not self.features.layout.fused_input_transpose:
            # Ablation stages before +T: the graph-level transposition of
            # (W^T x^T)^T is materialised — one input and one output
            # transpose per expert over the hidden dimension.
            per_expert = 2.0 * (2.0 * h * n_e * 2 / spec.dram_bandwidth
                                + spec.kernel_launch_overhead_s)
            extra_s += per_expert * config.num_experts
        if not self.features.input_selection:
            # Ablation +W: weight sparsity only — the permuted data flow
            # of the reference implementation comes back, including its
            # per-expert gather/scatter launch storm.
            extra_s += permutation_seconds(tokens, h, config.top_k,
                                           spec)
            extra_s += unpermutation_seconds(tokens, h, config.top_k,
                                             spec)
            extra_s += (2 * config.num_experts
                        * spec.kernel_launch_overhead_s)
        padded_tokens = n_e * config.num_experts
        return replace(gemm, name=self.name,
                       time_s=gemm.time_s + extra_s,
                       detail={"gemm_s": gemm.time_s,
                               "dataflow_s": extra_s,
                               "padded_tokens": float(padded_tokens)})


#: Engine registry in the paper's legend order.  A sixth entry,
#: ``"auto"`` (the cost-driven dispatcher), is registered by
#: :mod:`repro.registry.selector`, which :mod:`repro.moe` imports.
ENGINES: Registry[MoEEngine] = Registry("engine")


def register_engine(engine: MoEEngine,
                    replace: bool = False) -> MoEEngine:
    """Add ``engine`` to the registry under its ``name``.

    Collisions raise :class:`ConfigError` unless ``replace=True``
    (mirrors :func:`repro.hw.spec.register_gpu`).  This is the whole
    third-party surface: subclass :class:`MoEEngine`, declare
    :meth:`~MoEEngine.capabilities`, register — every front door
    (``ExecutionContext``, specs, CLI, ``engine="auto"``) then sees it.
    """
    return ENGINES.register(engine.name, engine, replace=replace)


for _engine in (TransformersEngine(), MegaBlocksEngine(), VllmEngine(),
                PitEngine(), SamoyedsEngine()):
    register_engine(_engine)
del _engine
