"""Data-flow redundancy model (§3.1, Figure 5).

The reference MoE implementation materialises a permuted tensor per
expert (input permutation) and scatters expert outputs back through
global memory for the weighted sum (un-permutation).  Both are pure
memory-movement passes; their cost is what Samoyeds' SEL-based kernel
eliminates, and what the ``+WI`` step of Figure 17 measures.
"""

from __future__ import annotations

from repro.hw.spec import GPUSpec


def permutation_bytes(tokens: int, hidden: int, top_k: int,
                      dtype_bytes: int = 2) -> float:
    """Bytes moved to build the per-expert input tensors.

    Every token row is read once and written ``top_k`` times (it appears
    in each destination expert's tensor).
    """
    read = tokens * hidden * dtype_bytes
    write = tokens * top_k * hidden * dtype_bytes
    return float(read + write)


def unpermutation_bytes(tokens: int, hidden: int, top_k: int,
                        dtype_bytes: int = 2) -> float:
    """Bytes moved by the weighted un-permutation (§3.1).

    Expert outputs round-trip global memory: written by the expert GEMM,
    re-read for the element-wise weighted sum, and the final output is
    written once more.
    """
    expert_out = tokens * top_k * hidden * dtype_bytes
    final = tokens * hidden * dtype_bytes
    return float(2 * expert_out + final)


def permutation_seconds(tokens: int, hidden: int, top_k: int,
                        spec: GPUSpec, dtype_bytes: int = 2) -> float:
    """Time of the input-permutation pass (traffic + one launch)."""
    traffic_bytes = permutation_bytes(tokens, hidden, top_k, dtype_bytes)
    return (traffic_bytes / spec.dram_bandwidth
            + spec.kernel_launch_overhead_s)


def unpermutation_seconds(tokens: int, hidden: int, top_k: int,
                          spec: GPUSpec, dtype_bytes: int = 2) -> float:
    """Time of the weighted un-permutation pass."""
    traffic_bytes = unpermutation_bytes(tokens, hidden, top_k,
                                        dtype_bytes)
    return (traffic_bytes / spec.dram_bandwidth
            + spec.kernel_launch_overhead_s)


def intermediate_allocation_bytes(tokens: int, hidden: int,
                                  intermediate: int, top_k: int,
                                  dtype_bytes: int = 2) -> float:
    """Workspace the permuted data flow must allocate (memory model).

    Per-expert input copies plus the gate/up intermediates for every
    routed token — the buffers Figure 5 shows being created.
    """
    inputs = tokens * top_k * hidden * dtype_bytes
    intermediates = 2 * tokens * top_k * intermediate * dtype_bytes
    outputs = tokens * top_k * hidden * dtype_bytes
    return float(inputs + intermediates + outputs)
