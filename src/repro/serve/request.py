"""Deprecation shim: requests and traces live in :mod:`repro.workloads`.

The :class:`Request` unit and the trace generators moved to the
workload package (:mod:`repro.workloads.traces`) so workload definition
has one source of truth; this module re-exports them byte-for-byte for
the pre-package import path ``repro.serve.request``.  New code should
import from :mod:`repro.workloads`.
"""

from repro.workloads.traces import (  # noqa: F401
    DEFAULT_TENANT,
    Request,
    _build,
    _sample_lengths,
    _sample_output_lengths,
    bursty_trace,
    poisson_trace,
    replay_trace,
    validate_trace,
)

__all__ = [
    "DEFAULT_TENANT",
    "Request",
    "poisson_trace",
    "bursty_trace",
    "replay_trace",
    "validate_trace",
]
