"""Deprecation shim: requests and traces live in :mod:`repro.workloads`.

.. deprecated::
    Import :class:`Request` and the trace generators from
    :mod:`repro.workloads` instead.  This module re-exports them
    byte-for-byte for the pre-package import path
    ``repro.serve.request`` and will be removed once external callers
    have migrated; nothing inside ``src/`` imports it any more.
"""

from repro.workloads.traces import (  # noqa: F401
    DEFAULT_TENANT,
    Request,
    _build,
    _sample_lengths,
    _sample_output_lengths,
    bursty_trace,
    poisson_trace,
    replay_trace,
    validate_trace,
)

__all__ = [
    "DEFAULT_TENANT",
    "Request",
    "poisson_trace",
    "bursty_trace",
    "replay_trace",
    "validate_trace",
]
