"""Discrete-event serving core over the per-layer cost stack.

The engine is an event calendar (:mod:`repro.serve.events`): a
heap-ordered queue of typed events — :class:`~repro.serve.events.Arrival`,
:class:`~repro.serve.events.StepComplete`,
:class:`~repro.serve.events.Preempt`,
:class:`~repro.serve.events.HorizonExpired` — with an
:class:`~repro.serve.events.EventManager` that owns the clock.  At each
step boundary the batcher composes the step (admissions + decodes), a
:class:`~repro.serve.costs.StepPricer` prices its duration with the
prefill/decode cost split from :mod:`repro.models` — scaled by
``num_layers`` to a full-model forward — and a ``StepComplete`` event
is scheduled; its handler applies the plan's lifecycle effects when
the clock reaches it.  Request timestamps fall out of the clock.
Memory is charged through a
:class:`~repro.moe.memory_model.MemoryLedger` — the conservative
peak-reserving :class:`~repro.moe.memory_model.KVCacheTracker` by
default, or the paged :class:`~repro.moe.memory_model.BlockAllocator`
when ``page_size`` is set — so each engine's sustainable concurrency
(and therefore its saturation QPS) emerges from the same footprint
model that reproduces Table 3.

Under paged allocation a decode step can fail to allocate its next KV
block; the engine then *preempts* the youngest resident request
(latest arrival): its blocks are released and the request returns to
the front of the waiting queue to be recomputed on readmission
(vLLM's recompute preemption).  Generation restarts from the prompt,
but the request's first recorded TTFT is kept.  Preemptions surface as
:class:`~repro.serve.events.Preempt` events dispatched at the instant
they happen.

Inside a step, the MoE layer can optionally be priced through the
expert-segment LPT scheduler (``streams > 1`` on a Samoyeds context):
per-expert loads are drawn from the routing-skew profile and the
segments are packed onto streams, replacing the sequential segment sum
of the engine cost model while keeping its data-flow overheads.

On a context with a non-trivial
:class:`~repro.hw.interconnect.ParallelPlan` the server shards over an
``ep x tp`` device grid: experts are placed on devices (skew-aware by
default), each step is the slowest device's makespan plus the boundary
collectives (TP all-reduces, EP dispatch/combine all-to-alls), and
memory runs through one ledger per device
(:class:`~repro.moe.memory_model.DeviceLedgers`) with admission gated
on the bottleneck device.

The pre-calendar nested-``while`` implementation survives verbatim in
:mod:`repro.serve._legacy_loop` as the golden baseline; the calendar
core is pinned byte-identical to it by ``tests/test_serve_golden.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.context import ExecutionContext
from repro.errors import CapacityError, ConfigError, InternalError
from repro.analysis.sanitizer import (
    SanitizedEventManager,
    SanitizedStepPricer,
    sanitize_enabled,
    wrap_ledger,
)
from repro.hw.interconnect import ClusterSpec, LinkSpec, ParallelPlan
from repro.moe.memory_model import (
    BlockAllocator,
    DeviceLedgers,
    KVCacheTracker,
    MemoryLedger,
    kv_cache_bytes,
)
from repro.moe.scheduler import ExpertPlacement, place_experts
from repro.moe.trace import zipf_expert_popularity
from repro.registry.selector import AutoEngine
from repro.serve.batcher import (
    ActiveRequest,
    Batcher,
    ContinuousBatcher,
    StepPlan,
)
from repro.serve.costs import StepPricer
from repro.serve.events import (
    CLOCK_EPS,
    Arrival,
    EventKind,
    EventManager,
    HorizonExpired,
    Preempt,
    RateRefill,
    StepComplete,
)
from repro.serve.metrics import (
    MetricsCollector,
    RequestRecord,
    ServeReport,
    StepSample,
    summarise,
)
from repro.workloads.traces import Request, validate_trace
from repro.serve.scheduling import AdmissionGate, make_scheduler
from repro.utils.rng import new_rng
from repro.workloads.tenants import TenantSpec, validate_tenants


@dataclass
class ServingEngine:
    """One simulated model server: context + batching policy + memory.

    Attributes:
        ctx: Execution context (model, engine, device, stream count).
        batcher: Step-composition policy (continuous by default).
        num_layers: Decoder layers per forward; ``None`` uses the
            model's layer count (full-model steps), ``1`` reproduces the
            paper's single-layer protocol.
        routing_skew: Zipf skew of the per-step expert loads used by the
            LPT segment scheduler when ``ctx.streams > 1``.
        seed: RNG seed for the per-step routing draws.
        page_size: KV-cache page size in tokens.  ``None`` (default)
            keeps the conservative whole-request reservation; a positive
            value switches to the paged :class:`BlockAllocator` with
            preemption on block exhaustion.
        horizon_s: Optional serving horizon: the event loop stops at the
            first step boundary at or past this clock value, leaving
            in-flight requests unfinished (the report stays well-formed
            even when *nothing* completed).
        placement_policy: Expert-to-device placement under expert
            parallelism (``balanced`` uses the routing-skew profile,
            ``round_robin`` ignores it).
        tenants: Multi-tenant request classes
            (:class:`~repro.workloads.tenants.TenantSpec`): declares
            per-tenant priorities, TTFT/TPOT SLOs and token-rate
            limits, and switches the report to carry a per-tenant
            section.  Empty (default) keeps the single-tenant
            behaviour byte-identical to the goldens.
        scheduler: Preemption/queue-order policy
            (:data:`~repro.serve.scheduling.SCHEDULER_NAMES`):
            ``youngest_first`` (default, the historical byte-identical
            order) or ``priority_slack`` (evict low priority / most
            SLO slack first and admit high priority first).
        sanitize: Run under the sim-sanitizer (runtime invariant
            checks on the event calendar, the memory ledgers and the
            pricing memos — see :mod:`repro.analysis.sanitizer`).
            ``None`` (default) defers to the ``REPRO_SANITIZE``
            environment variable.  Reports are byte-identical either
            way; sanitized runs trade the uneventful-decode fast path
            for the checks.
    """

    ctx: ExecutionContext
    batcher: Batcher = field(default_factory=ContinuousBatcher)
    num_layers: int | None = None
    routing_skew: float = 0.0
    seed: int | None = None
    page_size: int | None = None
    horizon_s: float | None = None
    placement_policy: str = "balanced"
    tenants: Sequence[TenantSpec] = ()
    scheduler: str = "youngest_first"
    sanitize: bool | None = None

    def __post_init__(self) -> None:
        self.tenants = tuple(self.tenants)
        validate_tenants(self.tenants)
        self._tenant_table = {t.name: t for t in self.tenants}
        self._policy = make_scheduler(self.scheduler)
        self._layers = self.num_layers or self.ctx.config.num_layers
        if self._layers <= 0:
            raise ConfigError("num_layers must be positive")
        if self.page_size is not None and self.page_size <= 0:
            raise ConfigError("page_size must be positive")
        if self.horizon_s is not None and self.horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        self._rng = new_rng(self.seed)
        self._popularity = zipf_expert_popularity(
            self.ctx.config.num_experts, self.routing_skew)
        parallel = self.ctx.parallel
        if parallel.dp > 1:
            raise ConfigError(
                "data-parallel serving is not modeled; run one engine "
                "per replica (ep/tp shard a single replica)")
        self._distributed = not parallel.is_trivial
        self._cluster: ClusterSpec | None = None
        self._placement: ExpertPlacement | None = None
        if self._distributed:
            self._cluster = self.ctx.cluster_spec
            if parallel.ep > 1:
                self._placement = place_experts(
                    self.ctx.config.num_experts, parallel.ep,
                    policy=self.placement_policy,
                    profile=self._popularity)
        self._sanitize = sanitize_enabled(self.sanitize)
        pricer_cls = SanitizedStepPricer if self._sanitize else StepPricer
        self._pricer = pricer_cls(self.ctx, self._layers,
                                  self._popularity, self._rng,
                                  placement=self._placement,
                                  cluster=self._cluster)
        self._step_comm_s = 0.0
        self._comm_s_total = 0.0
        self._busy_s_total = 0.0
        # engine="auto": per-phase counts of which fixed engine the
        # cost-driven selector dispatched each step to.
        self._auto_counts: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Step pricing
    # ------------------------------------------------------------------
    def step_seconds(self, plan: StepPlan) -> float:
        """Duration of one engine step (full forward over all layers).

        Delegates to the memoising :class:`StepPricer`.  On a
        multi-device context the step is a per-device makespan:
        attention shards over the tensor-parallel group, expert
        segments run on their owning expert-parallel devices, and the
        boundary collectives (TP all-reduces, EP dispatch/combine
        all-to-alls) are added per layer.  ``self._step_comm_s`` holds
        the communication share of the step just priced.
        """
        step_s, comm_s, _ = self._pricer.price(plan)
        self._step_comm_s = comm_s
        return step_s

    # ------------------------------------------------------------------
    # Event handlers and memory policy
    # ------------------------------------------------------------------
    def _make_ledger(self) -> "MemoryLedger | DeviceLedgers":
        if self._distributed:
            parallel = self.ctx.parallel
            cluster = self._cluster
            if cluster is None:
                raise InternalError(
                    "distributed run has no cluster for its ledgers")
            grid = parallel.ep * parallel.tp
            gpus = [cluster.device(d % cluster.num_devices)
                    for d in range(grid)]
            counts = (self._placement.counts()
                      if self._placement is not None else None)
            return DeviceLedgers.create(
                self.ctx.config, self.ctx.engine.name, gpus, parallel,
                expert_counts=counts, page_size=self.page_size)
        if self.page_size:
            return BlockAllocator(self.ctx.config, self.ctx.engine.name,
                                  self.ctx.spec, page_size=self.page_size)
        return KVCacheTracker(self.ctx.config, self.ctx.engine.name,
                              self.ctx.spec)

    def _evict(self, victim: ActiveRequest,
               ledger: "MemoryLedger | DeviceLedgers",
               running: list[ActiveRequest], waiting: "deque[Request]",
               evicted: set[int], manager: EventManager) -> None:
        """Preempt ``victim``: free its blocks, requeue for recompute.

        The :class:`Preempt` event dispatches immediately at the
        current clock — preemption is a same-instant consequence of
        the completing step, not a scheduled future."""
        ledger.release(victim.request.rid)
        running.remove(victim)
        waiting.appendleft(victim.request)
        evicted.add(victim.request.rid)
        manager.emit(Preempt(when=manager.clock,
                             victim_rid=victim.request.rid,
                             tenant=victim.request.tenant))

    def _grow(self, ar: ActiveRequest,
              ledger: "MemoryLedger | DeviceLedgers",
              running: list[ActiveRequest], waiting: "deque[Request]",
              evicted: set[int], manager: EventManager) -> bool:
        """Charge one token of KV growth for ``ar``, preempting the
        scheduling policy's preferred victim until it fits — the
        youngest resident request (latest arrival) under the default
        policy, the lowest-priority / most-slack one under
        ``priority_slack``.

        Returns ``False`` when ``ar`` itself was the victim and got
        evicted; raises :class:`CapacityError` when ``ar`` cannot grow
        even with the device to itself.
        """
        while True:
            try:
                ledger.grow(ar.request.rid)
                return True
            except CapacityError:
                victim = max(running, key=self._victim_key)
                if victim is ar and len(running) == 1:
                    total_tokens = ar.request.total_tokens
                    raise CapacityError(
                        f"request {ar.request.rid} "
                        f"({total_tokens} tokens) "
                        f"exceeds device memory even alone on "
                        f"{self.ctx.spec.name} with "
                        f"{self.ctx.engine.name}",
                        required_bytes=int(
                            ledger.peak_bytes(total_tokens)),
                        available_bytes=int(ledger.budget_bytes
                                            - ledger.static_bytes))
                self._evict(victim, ledger, running, waiting, evicted,
                            manager)
                if victim is ar:
                    return False

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(self, trace: Sequence[Request],
            max_steps: int = 1_000_000) -> ServeReport:
        """Serve ``trace`` to completion and summarise the run."""
        validate_trace(trace)
        # Per-run accumulators (a ServingEngine may serve many traces).
        self._step_comm_s = 0.0
        self._comm_s_total = 0.0
        self._busy_s_total = 0.0
        self._auto_counts = {}
        raw_ledger = self._make_ledger()
        ledger = (wrap_ledger(raw_ledger) if self._sanitize
                  else raw_ledger)
        records = {req.rid: RequestRecord(req) for req in trace}
        waiting: deque[Request] = deque()
        running: list[ActiveRequest] = []
        collector = MetricsCollector()
        manager = (SanitizedEventManager() if self._sanitize
                   else EventManager())
        queue = manager.queue
        policy = self._policy
        table = self._tenant_table

        def victim_key(ar: ActiveRequest):
            return policy.victim_key(ar, manager.clock,
                                     records.get(ar.request.rid),
                                     table.get(ar.request.tenant))

        self._victim_key = victim_key
        # Token-rate admission gate: fresh per run (bucket levels are
        # run state).  ``None`` when no tenant declares a rate limit,
        # which keeps the admission path allocation-free.
        gate = AdmissionGate(table) if table else None
        if gate is not None and not gate:
            gate = None
        self.batcher.admission_gate = gate
        for req in sorted(trace, key=lambda r: (r.arrival_s, r.rid)):
            queue.push(Arrival(when=req.arrival_s, request=req))
        if self.horizon_s is not None:
            queue.push(HorizonExpired(when=self.horizon_s))
        steps = 0
        # The (at most one) in-flight step's plan.  The StepComplete
        # event carries the timing; the plan is mutable engine state.
        in_flight: list[StepPlan] = []

        def on_arrival(event: Arrival) -> None:
            if gate is not None and not gate.admissible(event.request):
                # Larger than its tenant's bucket capacity: no amount
                # of waiting admits it.  Reject at the door.
                collector.reject(event.request.tenant)
                return
            waiting.append(event.request)

        def on_preempt(event: Preempt) -> None:
            collector.preempt(event.tenant)

        def on_horizon(event: HorizonExpired) -> None:
            manager.stop()             # plan no further steps

        def on_rate_refill(event: RateRefill) -> None:
            pass    # wake-up only: planning resumes in the main loop

        def on_step_complete(event: StepComplete) -> None:
            plan = in_flight.pop()
            clock = manager.clock
            self._busy_s_total += event.step_s
            self._comm_s_total += event.comm_s
            evicted: set[int] = set()
            # Every ledger-charged request must be resident before any
            # growth, so preemption can see (and evict) all of them.
            running.extend(plan.prefill)
            # Decode growth first, oldest arrivals first: under paged
            # allocation the block that backs a new token may require
            # preempting the youngest resident request.
            for ar in sorted(plan.decode,
                             key=lambda a: (a.request.arrival_s,
                                            a.request.rid)):
                if ar.request.rid in evicted:
                    continue
                ar.generated += 1
                self._grow(ar, ledger, running, waiting, evicted,
                           manager)
            for ar in plan.prefill:            # prompt + first token
                record = records[ar.request.rid]
                if record.admitted_s is None:
                    record.admitted_s = ar.admitted_s
                if ar.request.rid in evicted:
                    continue
                if record.first_token_s is None:
                    record.first_token_s = clock
                ar.prefilled = True
                ar.prefilled_tokens = ar.request.prompt_tokens
                ar.generated = 1
                self._grow(ar, ledger, running, waiting, evicted,
                           manager)
            for chunk in plan.chunks:          # chunked prefill slices
                ar = chunk.ar
                record = records[ar.request.rid]
                if record.admitted_s is None:
                    record.admitted_s = ar.admitted_s
                if ar.request.rid in evicted:
                    continue
                ar.prefilled_tokens += chunk.tokens
                if ar.prefilled_tokens >= ar.request.prompt_tokens:
                    ar.prefilled = True         # last chunk: token one
                    ar.generated = 1
                    if record.first_token_s is None:
                        record.first_token_s = clock
                    self._grow(ar, ledger, running, waiting, evicted,
                               manager)
            # Arrivals that landed during (or epsilon-past) the step
            # join the queue before the sample, so queue-depth
            # percentiles see them; a coinciding horizon sets the stop
            # flag here but never suppresses the sample below.
            manager.dispatch_due()
            collector.observe(StepSample(
                clock_s=clock,
                queue_depth=len(waiting),
                running=ledger.active_requests,
                step_tokens=plan.total_tokens,
                live_bytes=ledger.live_bytes,
                reserved_bytes=ledger.reserved_bytes,
                pool_util=ledger.pool_utilisation,
                comm_s=event.comm_s,
                step_s=event.step_s,
            ))
            for ar in [ar for ar in running if ar.finished]:
                running.remove(ar)
                ledger.release(ar.request.rid)
                record = records[ar.request.rid]
                record.finished_s = clock
                collector.finish(record)

        manager.on(EventKind.ARRIVAL, on_arrival)
        manager.on(EventKind.PREEMPT, on_preempt)
        manager.on(EventKind.HORIZON_EXPIRED, on_horizon)
        manager.on(EventKind.STEP_COMPLETE, on_step_complete)
        manager.on(EventKind.RATE_REFILL, on_rate_refill)

        # -- uneventful-decode fast path --------------------------------
        # The discrete-event payoff: when the calendar can prove the
        # next step is a pure decode step whose completion dispatches
        # nothing — no arrival inside the epsilon window, no horizon,
        # nobody reaching their output length, nothing waiting to admit
        # — the general path's outcome is fully determined, and runs of
        # such steps reduce to the pricing arithmetic plus a metrics
        # sample.  Restricted to the configurations where that proof
        # holds: plain continuous batching (the plan is exactly
        # ``decode=tuple(running)``), conservative admission (growth
        # never fails, so no preemption), a fixed single-device engine
        # and a deterministic pricer (no RNG draw per step).
        fast_eligible = (type(self.batcher) is ContinuousBatcher
                         and self.page_size is None
                         and not self._distributed
                         and not self._pricer.stochastic
                         and not isinstance(self.ctx.engine, AutoEngine)
                         and not self._sanitize
                         and type(ledger) is KVCacheTracker)

        def fast_decode_run() -> bool:
            """Commit a run of provably uneventful pure-decode steps.

            Every committed step replays, float op for float op, what
            the general path would have done: the same pricing
            composition as :meth:`StepPricer._price` for a decode-only
            plan, the same ``max(clock, clock + step_s)`` clock update,
            the same per-step sample values (``live_bytes`` summed over
            the same per-request KV lengths in ledger order).  Only the
            work whose outcome is already known is skipped — planning,
            per-token ledger growth (bulk-applied afterwards), the
            preemption machinery and the finish scan.  Stops *before*
            any step boundary where an event could be due, leaving that
            step to the general path.  Returns True when at least one
            step was committed.
            """
            nonlocal steps
            if not running or not all(ar.prefilled for ar in running):
                return False
            # The step in which the earliest finisher reaches its
            # output length must run through the general path.
            limit = min(ar.request.output_tokens - ar.generated
                        for ar in running) - 1
            limit = min(limit, max_steps - steps)
            if limit <= 0:
                return False
            pricer = self._pricer
            batch = len(running)
            context_tokens = sum(ar.context_tokens for ar in running)
            moe_s = pricer._moe_seconds(batch)
            norm_s = pricer._norm_seconds(batch)
            layers = self._layers
            config, spec = self.ctx.config, self.ctx.spec
            static_bytes = ledger.static_bytes
            resident_tokens = ledger.kv_tokens()
            reserved_bytes = ledger.reserved_bytes
            util = ledger.pool_utilisation
            residents = ledger.active_requests
            # The queue cannot change inside the run (fast steps push
            # no events), so the barrier — the earliest event that
            # could become due at a step boundary — is a constant.
            head = queue.peek()
            barrier = head.when if head is not None else None
            # ``live_bytes`` closed form: the per-token KV charge is an
            # integer number of bytes for every registry model, so
            # per-request growth sums collapse to exact integer
            # arithmetic; one cross-check against the general path's
            # per-request float sum guards the assumption (falling
            # back to that sum if a config ever breaks it).
            per_token_bytes = kv_cache_bytes(config, 1)
            kv_int_bytes = int(per_token_bytes)
            total0_tokens = sum(resident_tokens)
            closed_form = (
                float(kv_int_bytes) == per_token_bytes
                and static_bytes
                + float(kv_int_bytes * (total0_tokens + batch))
                == static_bytes + sum(kv_cache_bytes(config, t + 1)
                                      for t in resident_tokens))
            # Inline the flash decode-attention arithmetic (the same
            # float ops as decode_attention_cost, minus the call and
            # the AttentionCost object); the rare flash=False context
            # keeps the function call.
            flash = self.ctx.flash
            if flash:
                proj_s = pricer.decode_proj(batch)
                h = config.hidden_size
                ccf = spec.cuda_core_flops
                bw = spec.dram_bandwidth
                launch_s = spec.kernel_launch_overhead_s
            observe = collector.samples.append
            busy = self._busy_s_total
            clock = manager.clock
            committed = 0
            while committed < limit:
                if flash:
                    flops = 2.0 * 2.0 * context_tokens * h
                    attn = 0.0 + ((proj_s
                                   + max(flops / ccf, flops / bw))
                                  + launch_s)
                else:
                    attn = 0.0 + pricer._decode_attn(context_tokens,
                                                     batch)
                step_s = (attn + moe_s + norm_s) * layers
                when = clock + step_s
                if barrier is not None and barrier <= when + CLOCK_EPS:
                    break          # something is due at this boundary
                committed += 1
                steps += 1
                clock = clock if clock >= when else when
                busy += step_s
                context_tokens += batch
                if closed_form:
                    live_bytes = static_bytes + float(
                        kv_int_bytes * (total0_tokens
                                        + committed * batch))
                else:
                    live_bytes = static_bytes + sum(
                        kv_cache_bytes(config, t + committed)
                        for t in resident_tokens)
                observe(StepSample(clock, 0, residents, batch,
                                   live_bytes, reserved_bytes, util,
                                   0.0, step_s))
            if not committed:
                return False
            self._busy_s_total = busy
            manager.clock = clock
            for ar in running:
                ar.generated += committed
                ledger.grow(ar.request.rid, committed)
            return True

        while True:
            # Same-instant events first: arrivals within the epsilon
            # of the clock, a horizon the clock has reached.
            manager.dispatch_due()
            if in_flight:
                # A step is in flight: advance to its completion (or
                # to whatever precedes it).  A step straddling the
                # horizon still completes fully, as before.
                manager.advance()
                continue
            if manager.stopped:
                break                  # horizon reached: stop serving
            if not (waiting or running or queue.pending_arrivals):
                break                  # trace fully served
            if fast_eligible and not waiting and fast_decode_run():
                continue
            if policy.reorders_queue and len(waiting) > 1:
                # Stable sort: FCFS within a priority class survives.
                ordered = sorted(
                    waiting,
                    key=lambda r: policy.queue_key(r,
                                                   table.get(r.tenant)))
                waiting.clear()
                waiting.extend(ordered)
            plan = self.batcher.plan_step(
                manager.clock, waiting, running, ledger,
                bool(queue.pending_arrivals))
            if plan.empty:
                if queue.pending_arrivals:
                    manager.advance()  # idle until the next arrival
                    continue
                if gate is not None and waiting:
                    # The queue head may be rate-throttled rather than
                    # memory-blocked: schedule a wake-up at the instant
                    # its tenant's bucket has refilled enough.
                    wake_s = gate.next_admit_s(manager.clock, waiting[0])
                    if wake_s is not None:
                        queue.push(RateRefill(when=wake_s))
                        manager.advance()
                        continue
                # An unfinished partial prefill is the stuck request
                # (it holds the blocks); otherwise blame the queue head.
                head = next((ar.request for ar in running
                             if not ar.prefilled),
                            waiting[0] if waiting else running[0].request)
                raise CapacityError(
                    f"request {head.rid} ({head.total_tokens} tokens) can "
                    f"never fit on {self.ctx.spec.name} with "
                    f"{self.ctx.engine.name}",
                    required_bytes=int(
                        ledger.peak_bytes(head.total_tokens)),
                    available_bytes=int(ledger.budget_bytes
                                        - ledger.static_bytes))
            steps += 1
            if steps > max_steps:
                raise ConfigError(f"exceeded {max_steps} steps; trace too "
                                  f"large or engine starved")
            step_s, comm_s, winner = self._pricer.price(plan)
            self._step_comm_s = comm_s
            if winner is not None:
                phase = ("prefill" if (plan.prefill or plan.chunks)
                         else "decode")
                counts = self._auto_counts.setdefault(phase, {})
                counts[winner] = counts.get(winner, 0) + 1
            in_flight.append(plan)
            queue.push(StepComplete(when=manager.clock + step_s,
                                    step_s=step_s, comm_s=comm_s))

        if self._sanitize and not manager.stopped:
            # A fully served trace must leave the ledger at its static
            # charge (horizon runs legitimately end with residents).
            ledger.assert_drained()
        return summarise(collector, engine=self.ctx.engine.name,
                         model=self.ctx.config.name,
                         gpu=self.ctx.spec.name, batcher=self.batcher.name,
                         num_requests=len(trace),
                         cluster=self._cluster_report(raw_ledger),
                         auto=self._auto_report(),
                         tenants=self.tenants or None,
                         all_records=list(records.values()))

    def _auto_report(self) -> dict[str, object] | None:
        """Auto-dispatch report section (``None`` for fixed engines).

        Names the engine the cost-driven selector dispatched each
        serving phase to — the most frequent winner per phase under
        ``selected``, full per-step counts under ``steps``.
        """
        if not isinstance(self.ctx.engine, AutoEngine):
            return None
        selected = {
            phase: max(counts.items(), key=lambda kv: (kv[1], kv[0]))[0]
            for phase, counts in self._auto_counts.items()}
        return {"selected": selected,
                "steps": {phase: dict(counts)
                          for phase, counts in self._auto_counts.items()}}

    def _cluster_report(self, ledger: "MemoryLedger | DeviceLedgers"
                        ) -> dict[str, object] | None:
        """Multi-device report section (``None`` on a single GPU)."""
        if not self._distributed:
            return None
        cluster = self._cluster
        if cluster is None:
            raise InternalError(
                "distributed run has no cluster for its report")
        busy = self._busy_s_total
        info: dict[str, object] = {
            "parallel": self.ctx.parallel.to_dict(),
            "cluster": cluster.describe(),
            "link": cluster.link.name,
            "comm_s_total": self._comm_s_total,
            "comm_fraction": (self._comm_s_total / busy
                              if busy > 0 else 0.0),
        }
        if self._placement is not None:
            info["placement_policy"] = self._placement.policy
            info["experts_per_device"] = list(self._placement.counts())
        if isinstance(ledger, DeviceLedgers):
            info["per_device_static_bytes"] = [
                led.static_bytes for led in ledger.ledgers]
        return info


#: ``simulate`` context-construction arguments and their signature
#: defaults: a prebuilt ExecutionContext already carries all of these.
_CTX_ARG_DEFAULTS = (("engine", "samoyeds"), ("gpu", "rtx4070s"),
                     ("streams", 1), ("flash", True),
                     ("parallel", None), ("link", None))


def _conflicting_ctx_args(ctx: ExecutionContext,
                          passed: dict[str, object]) -> list[str]:
    """Context-construction arguments that contradict a prebuilt ctx.

    An argument equal to its signature default is indistinguishable
    from an omitted one and is never flagged; one that matches what
    the context already carries is redundant but harmless.  Only a
    value that differs from *both* is a genuine contradiction.  A
    ``link`` on a single-device context is inert (no collectives are
    ever priced), so it is never flagged either — flagging it against
    the derived-default topology would reject a link the run never
    uses.
    """
    carried: dict[str, object] = {
        "engine": ctx.engine.name,
        "gpu": ctx.spec.name,
        "streams": ctx.streams,
        "flash": ctx.flash,
    }
    conflicts = []
    for name, default in _CTX_ARG_DEFAULTS:
        value = passed[name]
        if value == default:
            continue
        if name == "parallel":
            agrees = ParallelPlan.from_any(value) == ctx.parallel
        elif name == "link":
            link_name = (value.name if isinstance(value, LinkSpec)
                         else value)
            agrees = (ctx.parallel.is_trivial
                      or link_name == ctx.cluster_spec.link.name)
        else:
            agrees = value == carried[name]
        if not agrees:
            conflicts.append(name)
    return conflicts


def simulate(model: str | ExecutionContext, engine: str = "samoyeds",
             gpu: str = "rtx4070s", *, trace: Sequence[Request],
             batcher: Batcher | None = None, num_layers: int | None = None,
             streams: int = 1, flash: bool = True,
             routing_skew: float = 0.0, seed: int | None = None,
             page_size: int | None = None,
             parallel: "str | ParallelPlan | None" = None,
             link: "str | LinkSpec | None" = None,
             horizon_s: float | None = None,
             placement_policy: str = "balanced",
             sanitize: bool | None = None) -> ServeReport:
    """One-call serving simulation from registry names.

    This is the legacy kwargs front door; new code should prefer the
    declarative :class:`repro.api.DeploymentSpec` /
    :class:`repro.api.Deployment` surface, of which this is now a thin
    shim.  ``model`` may also be a prebuilt :class:`ExecutionContext`
    — the context then already carries engine, device, streams, flash,
    plan and topology, so combining it with
    ``engine``/``gpu``/``streams``/``flash``/``parallel``/``link``
    arguments that *contradict* it raises
    :class:`~repro.errors.ConfigError` (they used to be silently
    ignored); redundant arguments that agree with the context — or
    that equal the signature defaults, which is indistinguishable from
    omitting them — stay accepted.  A positive ``page_size`` switches admission
    to the paged :class:`~repro.moe.memory_model.BlockAllocator` (with
    preemption); ``None`` keeps the conservative whole-request
    reservation.  ``parallel`` takes the ``ep=4,tp=2`` syntax and
    shards the server over a homogeneous cluster of ``gpu`` copies
    joined by ``link``; ``horizon_s`` cuts serving off at that clock
    (the report stays well-formed even when nothing completed).
    ``sanitize=True`` (or ``REPRO_SANITIZE=1``) runs under the
    sim-sanitizer's runtime invariant checks; the report is
    byte-identical to an unsanitized run.
    """
    if isinstance(model, ExecutionContext):
        conflicts = _conflicting_ctx_args(
            model, {"engine": engine, "gpu": gpu, "streams": streams,
                    "flash": flash, "parallel": parallel, "link": link})
        if conflicts:
            raise ConfigError(
                f"simulate() got a prebuilt ExecutionContext together "
                f"with contradicting {', '.join(conflicts)}; the "
                f"context already fixes those — configure the context "
                f"(or use repro.api.DeploymentSpec) instead")
        ctx = model
    else:
        ctx = ExecutionContext.create(model, engine, gpu, streams=streams,
                                      flash=flash, parallel=parallel,
                                      link=link)
    server = ServingEngine(ctx=ctx, batcher=batcher or ContinuousBatcher(),
                           num_layers=num_layers,
                           routing_skew=routing_skew, seed=seed,
                           page_size=page_size, horizon_s=horizon_s,
                           placement_policy=placement_policy,
                           sanitize=sanitize)
    return server.run(trace)
