"""Discrete-event serving loop over the per-layer cost stack.

The engine advances a clock from step to step: at each boundary the
batcher composes the step (admissions + decodes), the step's duration is
priced with the prefill/decode cost split from :mod:`repro.models` —
scaled by ``num_layers`` to a full-model forward — and request lifecycle
timestamps fall out of the clock.  Memory is charged through a
:class:`~repro.moe.memory_model.MemoryLedger` — the conservative
peak-reserving :class:`~repro.moe.memory_model.KVCacheTracker` by
default, or the paged :class:`~repro.moe.memory_model.BlockAllocator`
when ``page_size`` is set — so each engine's sustainable concurrency
(and therefore its saturation QPS) emerges from the same footprint
model that reproduces Table 3.

Under paged allocation a decode step can fail to allocate its next KV
block; the engine then *preempts* the youngest resident request
(latest arrival): its blocks are released and the request returns to
the front of the waiting queue to be recomputed on readmission
(vLLM's recompute preemption).  Generation restarts from the prompt,
but the request's first recorded TTFT is kept.

Inside a step, the MoE layer can optionally be priced through the
expert-segment LPT scheduler (``streams > 1`` on a Samoyeds context):
per-expert loads are drawn from the routing-skew profile and the
segments are packed onto streams, replacing the sequential segment sum
of the engine cost model while keeping its data-flow overheads.

On a context with a non-trivial
:class:`~repro.hw.interconnect.ParallelPlan` the server shards over an
``ep x tp`` device grid: experts are placed on devices (skew-aware by
default), each step is the slowest device's makespan plus the boundary
collectives (TP all-reduces, EP dispatch/combine all-to-alls), and
memory runs through one ledger per device
(:class:`~repro.moe.memory_model.DeviceLedgers`) with admission gated
on the bottleneck device.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.context import ExecutionContext
from repro.errors import CapacityError, ConfigError
from repro.hw.interconnect import ClusterSpec, LinkSpec, ParallelPlan
from repro.models.attention import attention_cost, decode_attention_cost
from repro.models.decoder import boundary_comm_seconds, norm_seconds
from repro.moe.layers import SamoyedsEngine
from repro.moe.memory_model import (
    BlockAllocator,
    DeviceLedgers,
    KVCacheTracker,
    MemoryLedger,
)
from repro.moe.scheduler import (
    ExpertPlacement,
    device_makespans,
    place_experts,
    schedule_parallel,
    segment_seconds_from_loads,
)
from repro.moe.trace import zipf_expert_popularity
from repro.registry.selector import AutoEngine
from repro.serve.batcher import (
    ActiveRequest,
    Batcher,
    ContinuousBatcher,
    StepPlan,
)
from repro.serve.metrics import (
    MetricsCollector,
    RequestRecord,
    ServeReport,
    StepSample,
    summarise,
)
from repro.serve.request import Request, validate_trace
from repro.utils.rng import new_rng


@dataclass
class ServingEngine:
    """One simulated model server: context + batching policy + memory.

    Attributes:
        ctx: Execution context (model, engine, device, stream count).
        batcher: Step-composition policy (continuous by default).
        num_layers: Decoder layers per forward; ``None`` uses the
            model's layer count (full-model steps), ``1`` reproduces the
            paper's single-layer protocol.
        routing_skew: Zipf skew of the per-step expert loads used by the
            LPT segment scheduler when ``ctx.streams > 1``.
        seed: RNG seed for the per-step routing draws.
        page_size: KV-cache page size in tokens.  ``None`` (default)
            keeps the conservative whole-request reservation; a positive
            value switches to the paged :class:`BlockAllocator` with
            preemption on block exhaustion.
        horizon_s: Optional serving horizon: the event loop stops at the
            first step boundary at or past this clock value, leaving
            in-flight requests unfinished (the report stays well-formed
            even when *nothing* completed).
        placement_policy: Expert-to-device placement under expert
            parallelism (``balanced`` uses the routing-skew profile,
            ``round_robin`` ignores it).
    """

    ctx: ExecutionContext
    batcher: Batcher = field(default_factory=ContinuousBatcher)
    num_layers: int | None = None
    routing_skew: float = 0.0
    seed: int | None = None
    page_size: int | None = None
    horizon_s: float | None = None
    placement_policy: str = "balanced"

    def __post_init__(self) -> None:
        self._layers = self.num_layers or self.ctx.config.num_layers
        if self._layers <= 0:
            raise ConfigError("num_layers must be positive")
        if self.page_size is not None and self.page_size <= 0:
            raise ConfigError("page_size must be positive")
        if self.horizon_s is not None and self.horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        self._rng = new_rng(self.seed)
        self._moe_memo: dict[int, float] = {}
        self._popularity = zipf_expert_popularity(
            self.ctx.config.num_experts, self.routing_skew)
        parallel = self.ctx.parallel
        if parallel.dp > 1:
            raise ConfigError(
                "data-parallel serving is not modeled; run one engine "
                "per replica (ep/tp shard a single replica)")
        self._distributed = not parallel.is_trivial
        self._cluster: ClusterSpec | None = None
        self._placement: ExpertPlacement | None = None
        if self._distributed:
            self._cluster = self.ctx.cluster_spec
            if parallel.ep > 1:
                self._placement = place_experts(
                    self.ctx.config.num_experts, parallel.ep,
                    policy=self.placement_policy,
                    profile=self._popularity)
        self._step_comm_s = 0.0
        self._comm_s_total = 0.0
        self._busy_s_total = 0.0
        # engine="auto": per-phase counts of which fixed engine the
        # cost-driven selector dispatched each step to.
        self._auto_counts: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Step pricing
    # ------------------------------------------------------------------
    def step_seconds(self, plan: StepPlan) -> float:
        """Duration of one engine step (full forward over all layers).

        On a multi-device context the step is a per-device makespan:
        attention shards over the tensor-parallel group, expert
        segments run on their owning expert-parallel devices, and the
        boundary collectives (TP all-reduces, EP dispatch/combine
        all-to-alls) are added per layer.  ``self._step_comm_s`` holds
        the communication share of the step just priced.
        """
        cfg, spec = self.ctx.config, self.ctx.spec
        attn = 0.0
        for ar in plan.prefill:
            attn += attention_cost(cfg, ar.request.prompt_tokens, spec,
                                   batch=1, flash=self.ctx.flash).total_s
        for chunk in plan.chunks:
            attn += self._chunk_attention_seconds(chunk.offset,
                                                  chunk.tokens)
        if plan.decode:
            context = sum(ar.context_tokens for ar in plan.decode)
            attn += decode_attention_cost(cfg, context, spec,
                                          batch=len(plan.decode),
                                          flash=self.ctx.flash).total_s
        tokens = plan.total_tokens
        if isinstance(self.ctx.engine, AutoEngine) and tokens > 0:
            phase = ("prefill" if (plan.prefill or plan.chunks)
                     else "decode")
            winner = self.ctx.engine.select(cfg, tokens, spec).name
            counts = self._auto_counts.setdefault(phase, {})
            counts[winner] = counts.get(winner, 0) + 1
        if not self._distributed:
            self._step_comm_s = 0.0
            layer = attn + self._moe_seconds(tokens) \
                + norm_seconds(cfg, tokens, spec)
            return layer * self._layers
        parallel, cluster = self.ctx.parallel, self._cluster
        assert cluster is not None
        moe_compute = self._distributed_moe_seconds(tokens)
        comm = boundary_comm_seconds(cfg, tokens, parallel, cluster)
        layer = (attn / parallel.tp + moe_compute
                 + norm_seconds(cfg, tokens, spec) + comm)
        self._step_comm_s = comm * self._layers
        return layer * self._layers

    def _chunk_attention_seconds(self, offset: int, tokens: int) -> float:
        """Marginal prefill attention for ``tokens`` new prompt tokens
        attending over ``offset`` already-cached ones (chunked prefill:
        the causal quadratic telescopes across chunks)."""
        cfg, spec = self.ctx.config, self.ctx.spec
        if offset <= 0:
            return attention_cost(cfg, tokens, spec, batch=1,
                                  flash=self.ctx.flash).total_s
        whole = attention_cost(cfg, offset + tokens, spec, batch=1,
                               flash=self.ctx.flash).total_s
        prior = attention_cost(cfg, offset, spec, batch=1,
                               flash=self.ctx.flash).total_s
        return max(whole - prior, 0.0)

    def _engine_moe_memo(self, tokens: int) -> float:
        """Memoised monolithic engine cost of the MoE layer."""
        cached = self._moe_memo.get(tokens)
        if cached is None:
            cached = self.ctx.engine.cost(self.ctx.config, tokens,
                                          self.ctx.spec).time_s
            self._moe_memo[tokens] = cached
        return cached

    def _draw_segments(self, tokens: int, tp: int = 1) -> list[float]:
        """Per-expert SSMM segment times for one step's routed load,
        drawn from the routing-skew profile (``tp`` shards the expert
        inner dimension)."""
        ctx = self.ctx
        routed = tokens * ctx.config.top_k
        loads = self._rng.multinomial(routed, self._popularity)
        return segment_seconds_from_loads(
            ctx.config, loads, ctx.spec, ctx.segment_kernel(),
            ctx.effective_tile_n, tp=tp)

    def _moe_seconds(self, tokens: int) -> float:
        """MoE-layer seconds for ``tokens`` new tokens in one step."""
        if tokens <= 0:
            return 0.0
        ctx = self.ctx
        use_lpt = ctx.streams > 1 and isinstance(ctx.engine, SamoyedsEngine)
        if not use_lpt:
            return self._engine_moe_memo(tokens)
        # LPT path: overlap per-expert SSMM segments on ctx.streams
        # streams; keep the engine model's data-flow overheads.
        cost = ctx.engine.cost(ctx.config, tokens, ctx.spec)
        segments = self._draw_segments(tokens)
        makespan = schedule_parallel(segments, ctx.streams).makespan_s
        dataflow = float(cost.detail.get("dataflow_s", 0.0))
        return makespan + dataflow

    def _distributed_moe_seconds(self, tokens: int) -> float:
        """Per-device MoE compute seconds for ``tokens`` new tokens
        under the context's parallel plan (the dispatch/combine
        collectives are priced by :func:`boundary_comm_seconds`).

        A Samoyeds context draws per-expert loads from the routing-skew
        profile, prices tensor-sharded SSMM segments and takes the
        slowest expert-parallel device's LPT makespan over its own
        experts; other engines scale their monolithic cost by the ideal
        ``1 / (ep * tp)`` shard.
        """
        if tokens <= 0:
            return 0.0
        ctx = self.ctx
        parallel = ctx.parallel
        if not isinstance(ctx.engine, SamoyedsEngine):
            return self._engine_moe_memo(tokens) / (parallel.ep
                                                    * parallel.tp)
        cost = ctx.engine.cost(ctx.config, tokens, ctx.spec)
        segments = self._draw_segments(tokens, tp=parallel.tp)
        if self._placement is not None:
            compute = max(device_makespans(segments, self._placement,
                                           ctx.streams))
        else:
            compute = schedule_parallel(segments, ctx.streams).makespan_s
        dataflow = float(cost.detail.get("dataflow_s", 0.0))
        return compute + dataflow / (parallel.ep * parallel.tp)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _make_ledger(self) -> "MemoryLedger | DeviceLedgers":
        if self._distributed:
            parallel = self.ctx.parallel
            cluster = self._cluster
            assert cluster is not None
            grid = parallel.ep * parallel.tp
            gpus = [cluster.device(d % cluster.num_devices)
                    for d in range(grid)]
            counts = (self._placement.counts()
                      if self._placement is not None else None)
            return DeviceLedgers.create(
                self.ctx.config, self.ctx.engine.name, gpus, parallel,
                expert_counts=counts, page_size=self.page_size)
        if self.page_size:
            return BlockAllocator(self.ctx.config, self.ctx.engine.name,
                                  self.ctx.spec, page_size=self.page_size)
        return KVCacheTracker(self.ctx.config, self.ctx.engine.name,
                              self.ctx.spec)

    def _evict(self, victim: ActiveRequest, ledger: "MemoryLedger | DeviceLedgers",
               running: list[ActiveRequest], waiting: "deque[Request]",
               evicted: set[int], collector: MetricsCollector) -> None:
        """Preempt ``victim``: free its blocks, requeue for recompute."""
        ledger.release(victim.request.rid)
        running.remove(victim)
        waiting.appendleft(victim.request)
        evicted.add(victim.request.rid)
        collector.preempt()

    def _grow(self, ar: ActiveRequest, ledger: "MemoryLedger | DeviceLedgers",
              running: list[ActiveRequest], waiting: "deque[Request]",
              evicted: set[int], collector: MetricsCollector) -> bool:
        """Charge one token of KV growth for ``ar``, preempting the
        youngest resident request (latest arrival) until it fits.

        Returns ``False`` when ``ar`` itself was the youngest and got
        evicted; raises :class:`CapacityError` when ``ar`` cannot grow
        even with the device to itself.
        """
        while True:
            try:
                ledger.grow(ar.request.rid)
                return True
            except CapacityError:
                victim = max(running, key=lambda a: (a.request.arrival_s,
                                                     a.request.rid))
                if victim is ar and len(running) == 1:
                    total = ar.request.total_tokens
                    raise CapacityError(
                        f"request {ar.request.rid} ({total} tokens) "
                        f"exceeds device memory even alone on "
                        f"{self.ctx.spec.name} with "
                        f"{self.ctx.engine.name}",
                        required_bytes=int(ledger.peak_bytes(total)),
                        available_bytes=int(ledger.budget_bytes
                                            - ledger.static_bytes))
                self._evict(victim, ledger, running, waiting, evicted,
                            collector)
                if victim is ar:
                    return False

    def run(self, trace: Sequence[Request],
            max_steps: int = 1_000_000) -> ServeReport:
        """Serve ``trace`` to completion and summarise the run."""
        validate_trace(trace)
        # Per-run accumulators (a ServingEngine may serve many traces).
        self._step_comm_s = 0.0
        self._comm_s_total = 0.0
        self._busy_s_total = 0.0
        self._auto_counts = {}
        ledger = self._make_ledger()
        arrivals = deque(sorted(trace, key=lambda r: r.arrival_s))
        records = {req.rid: RequestRecord(req) for req in trace}
        waiting: deque[Request] = deque()
        running: list[ActiveRequest] = []
        collector = MetricsCollector()
        clock = 0.0
        steps = 0

        while arrivals or waiting or running:
            if self.horizon_s is not None and clock >= self.horizon_s:
                break                      # horizon reached: stop serving
            while arrivals and arrivals[0].arrival_s <= clock + 1e-12:
                waiting.append(arrivals.popleft())
            plan = self.batcher.plan_step(clock, waiting, running, ledger,
                                          bool(arrivals))
            if plan.empty:
                if arrivals:                       # idle until next arrival
                    clock = max(clock, arrivals[0].arrival_s)
                    continue
                # An unfinished partial prefill is the stuck request
                # (it holds the blocks); otherwise blame the queue head.
                head = next((ar.request for ar in running
                             if not ar.prefilled),
                            waiting[0] if waiting else running[0].request)
                raise CapacityError(
                    f"request {head.rid} ({head.total_tokens} tokens) can "
                    f"never fit on {self.ctx.spec.name} with "
                    f"{self.ctx.engine.name}",
                    required_bytes=int(
                        ledger.peak_bytes(head.total_tokens)),
                    available_bytes=int(ledger.budget_bytes
                                        - ledger.static_bytes))
            steps += 1
            if steps > max_steps:
                raise ConfigError(f"exceeded {max_steps} steps; trace too "
                                  f"large or engine starved")
            step_s = self.step_seconds(plan)
            clock += step_s
            self._busy_s_total += step_s
            self._comm_s_total += self._step_comm_s
            evicted: set[int] = set()

            # Every ledger-charged request must be resident before any
            # growth, so preemption can see (and evict) all of them.
            running.extend(plan.prefill)
            # Decode growth first, oldest arrivals first: under paged
            # allocation the block that backs a new token may require
            # preempting the youngest resident request.
            for ar in sorted(plan.decode,
                             key=lambda a: (a.request.arrival_s,
                                            a.request.rid)):
                if ar.request.rid in evicted:
                    continue
                ar.generated += 1
                self._grow(ar, ledger, running, waiting, evicted,
                           collector)
            for ar in plan.prefill:                # prompt + first token
                record = records[ar.request.rid]
                if record.admitted_s is None:
                    record.admitted_s = ar.admitted_s
                if ar.request.rid in evicted:
                    continue
                if record.first_token_s is None:
                    record.first_token_s = clock
                ar.prefilled = True
                ar.prefilled_tokens = ar.request.prompt_tokens
                ar.generated = 1
                self._grow(ar, ledger, running, waiting, evicted,
                           collector)
            for chunk in plan.chunks:              # chunked prefill slices
                ar = chunk.ar
                record = records[ar.request.rid]
                if record.admitted_s is None:
                    record.admitted_s = ar.admitted_s
                if ar.request.rid in evicted:
                    continue
                ar.prefilled_tokens += chunk.tokens
                if ar.prefilled_tokens >= ar.request.prompt_tokens:
                    ar.prefilled = True             # last chunk: token one
                    ar.generated = 1
                    if record.first_token_s is None:
                        record.first_token_s = clock
                    self._grow(ar, ledger, running, waiting, evicted,
                               collector)

            # Arrivals that landed during the step join the queue before
            # the sample, so queue-depth percentiles see them.
            while arrivals and arrivals[0].arrival_s <= clock + 1e-12:
                waiting.append(arrivals.popleft())

            collector.observe(StepSample(
                clock_s=clock,
                queue_depth=len(waiting),
                running=ledger.active_requests,
                step_tokens=plan.total_tokens,
                live_bytes=ledger.live_bytes,
                reserved_bytes=ledger.reserved_bytes,
                pool_util=ledger.pool_utilisation,
                comm_s=self._step_comm_s,
                step_s=step_s,
            ))
            for ar in [ar for ar in running if ar.finished]:
                running.remove(ar)
                ledger.release(ar.request.rid)
                record = records[ar.request.rid]
                record.finished_s = clock
                collector.finish(record)

        return summarise(collector, engine=self.ctx.engine.name,
                         model=self.ctx.config.name,
                         gpu=self.ctx.spec.name, batcher=self.batcher.name,
                         num_requests=len(trace),
                         cluster=self._cluster_report(ledger),
                         auto=self._auto_report())

    def _auto_report(self) -> dict[str, object] | None:
        """Auto-dispatch report section (``None`` for fixed engines).

        Names the engine the cost-driven selector dispatched each
        serving phase to — the most frequent winner per phase under
        ``selected``, full per-step counts under ``steps``.
        """
        if not isinstance(self.ctx.engine, AutoEngine):
            return None
        selected = {
            phase: max(counts.items(), key=lambda kv: (kv[1], kv[0]))[0]
            for phase, counts in self._auto_counts.items()}
        return {"selected": selected,
                "steps": {phase: dict(counts)
                          for phase, counts in self._auto_counts.items()}}

    def _cluster_report(self, ledger: "MemoryLedger | DeviceLedgers"
                        ) -> dict[str, object] | None:
        """Multi-device report section (``None`` on a single GPU)."""
        if not self._distributed:
            return None
        cluster = self._cluster
        assert cluster is not None
        busy = self._busy_s_total
        info: dict[str, object] = {
            "parallel": self.ctx.parallel.to_dict(),
            "cluster": cluster.describe(),
            "link": cluster.link.name,
            "comm_s_total": self._comm_s_total,
            "comm_fraction": (self._comm_s_total / busy
                              if busy > 0 else 0.0),
        }
        if self._placement is not None:
            info["placement_policy"] = self._placement.policy
            info["experts_per_device"] = list(self._placement.counts())
        if isinstance(ledger, DeviceLedgers):
            info["per_device_static_bytes"] = [
                led.static_bytes for led in ledger.ledgers]
        return info


#: ``simulate`` context-construction arguments and their signature
#: defaults: a prebuilt ExecutionContext already carries all of these.
_CTX_ARG_DEFAULTS = (("engine", "samoyeds"), ("gpu", "rtx4070s"),
                     ("streams", 1), ("flash", True),
                     ("parallel", None), ("link", None))


def _conflicting_ctx_args(ctx: ExecutionContext,
                          passed: dict[str, object]) -> list[str]:
    """Context-construction arguments that contradict a prebuilt ctx.

    An argument equal to its signature default is indistinguishable
    from an omitted one and is never flagged; one that matches what
    the context already carries is redundant but harmless.  Only a
    value that differs from *both* is a genuine contradiction.  A
    ``link`` on a single-device context is inert (no collectives are
    ever priced), so it is never flagged either — flagging it against
    the derived-default topology would reject a link the run never
    uses.
    """
    carried: dict[str, object] = {
        "engine": ctx.engine.name,
        "gpu": ctx.spec.name,
        "streams": ctx.streams,
        "flash": ctx.flash,
    }
    conflicts = []
    for name, default in _CTX_ARG_DEFAULTS:
        value = passed[name]
        if value == default:
            continue
        if name == "parallel":
            agrees = ParallelPlan.from_any(value) == ctx.parallel
        elif name == "link":
            link_name = (value.name if isinstance(value, LinkSpec)
                         else value)
            agrees = (ctx.parallel.is_trivial
                      or link_name == ctx.cluster_spec.link.name)
        else:
            agrees = value == carried[name]
        if not agrees:
            conflicts.append(name)
    return conflicts


def simulate(model: str | ExecutionContext, engine: str = "samoyeds",
             gpu: str = "rtx4070s", *, trace: Sequence[Request],
             batcher: Batcher | None = None, num_layers: int | None = None,
             streams: int = 1, flash: bool = True,
             routing_skew: float = 0.0, seed: int | None = None,
             page_size: int | None = None,
             parallel: "str | ParallelPlan | None" = None,
             link: "str | LinkSpec | None" = None,
             horizon_s: float | None = None,
             placement_policy: str = "balanced") -> ServeReport:
    """One-call serving simulation from registry names.

    This is the legacy kwargs front door; new code should prefer the
    declarative :class:`repro.api.DeploymentSpec` /
    :class:`repro.api.Deployment` surface, of which this is now a thin
    shim.  ``model`` may also be a prebuilt :class:`ExecutionContext`
    — the context then already carries engine, device, streams, flash,
    plan and topology, so combining it with
    ``engine``/``gpu``/``streams``/``flash``/``parallel``/``link``
    arguments that *contradict* it raises
    :class:`~repro.errors.ConfigError` (they used to be silently
    ignored); redundant arguments that agree with the context — or
    that equal the signature defaults, which is indistinguishable from
    omitting them — stay accepted.  A positive ``page_size`` switches admission
    to the paged :class:`~repro.moe.memory_model.BlockAllocator` (with
    preemption); ``None`` keeps the conservative whole-request
    reservation.  ``parallel`` takes the ``ep=4,tp=2`` syntax and
    shards the server over a homogeneous cluster of ``gpu`` copies
    joined by ``link``; ``horizon_s`` cuts serving off at that clock
    (the report stays well-formed even when nothing completed).
    """
    if isinstance(model, ExecutionContext):
        conflicts = _conflicting_ctx_args(
            model, {"engine": engine, "gpu": gpu, "streams": streams,
                    "flash": flash, "parallel": parallel, "link": link})
        if conflicts:
            raise ConfigError(
                f"simulate() got a prebuilt ExecutionContext together "
                f"with contradicting {', '.join(conflicts)}; the "
                f"context already fixes those — configure the context "
                f"(or use repro.api.DeploymentSpec) instead")
        ctx = model
    else:
        ctx = ExecutionContext.create(model, engine, gpu, streams=streams,
                                      flash=flash, parallel=parallel,
                                      link=link)
    server = ServingEngine(ctx=ctx, batcher=batcher or ContinuousBatcher(),
                           num_layers=num_layers,
                           routing_skew=routing_skew, seed=seed,
                           page_size=page_size, horizon_s=horizon_s,
                           placement_policy=placement_policy)
    return server.run(trace)
