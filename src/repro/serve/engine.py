"""Discrete-event serving loop over the per-layer cost stack.

The engine advances a clock from step to step: at each boundary the
batcher composes the step (admissions + decodes), the step's duration is
priced with the prefill/decode cost split from :mod:`repro.models` —
scaled by ``num_layers`` to a full-model forward — and request lifecycle
timestamps fall out of the clock.  Memory is charged through a
:class:`~repro.moe.memory_model.MemoryLedger` — the conservative
peak-reserving :class:`~repro.moe.memory_model.KVCacheTracker` by
default, or the paged :class:`~repro.moe.memory_model.BlockAllocator`
when ``page_size`` is set — so each engine's sustainable concurrency
(and therefore its saturation QPS) emerges from the same footprint
model that reproduces Table 3.

Under paged allocation a decode step can fail to allocate its next KV
block; the engine then *preempts* the youngest resident request
(latest arrival): its blocks are released and the request returns to
the front of the waiting queue to be recomputed on readmission
(vLLM's recompute preemption).  Generation restarts from the prompt,
but the request's first recorded TTFT is kept.

Inside a step, the MoE layer can optionally be priced through the
expert-segment LPT scheduler (``streams > 1`` on a Samoyeds context):
per-expert loads are drawn from the routing-skew profile and the
segments are packed onto streams, replacing the sequential segment sum
of the engine cost model while keeping its data-flow overheads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.context import ExecutionContext
from repro.errors import CapacityError, ConfigError
from repro.models.attention import attention_cost, decode_attention_cost
from repro.models.decoder import norm_seconds
from repro.moe.layers import SamoyedsEngine
from repro.moe.memory_model import (
    BlockAllocator,
    KVCacheTracker,
    MemoryLedger,
)
from repro.moe.scheduler import schedule_parallel, segment_seconds_from_loads
from repro.moe.trace import zipf_expert_popularity
from repro.serve.batcher import (
    ActiveRequest,
    Batcher,
    ContinuousBatcher,
    StepPlan,
)
from repro.serve.metrics import (
    MetricsCollector,
    RequestRecord,
    ServeReport,
    StepSample,
    summarise,
)
from repro.serve.request import Request, validate_trace
from repro.utils.rng import new_rng


@dataclass
class ServingEngine:
    """One simulated model server: context + batching policy + memory.

    Attributes:
        ctx: Execution context (model, engine, device, stream count).
        batcher: Step-composition policy (continuous by default).
        num_layers: Decoder layers per forward; ``None`` uses the
            model's layer count (full-model steps), ``1`` reproduces the
            paper's single-layer protocol.
        routing_skew: Zipf skew of the per-step expert loads used by the
            LPT segment scheduler when ``ctx.streams > 1``.
        seed: RNG seed for the per-step routing draws.
        page_size: KV-cache page size in tokens.  ``None`` (default)
            keeps the conservative whole-request reservation; a positive
            value switches to the paged :class:`BlockAllocator` with
            preemption on block exhaustion.
    """

    ctx: ExecutionContext
    batcher: Batcher = field(default_factory=ContinuousBatcher)
    num_layers: int | None = None
    routing_skew: float = 0.0
    seed: int | None = None
    page_size: int | None = None

    def __post_init__(self) -> None:
        self._layers = self.num_layers or self.ctx.config.num_layers
        if self._layers <= 0:
            raise ConfigError("num_layers must be positive")
        if self.page_size is not None and self.page_size <= 0:
            raise ConfigError("page_size must be positive")
        self._rng = new_rng(self.seed)
        self._moe_memo: dict[int, float] = {}
        self._popularity = zipf_expert_popularity(
            self.ctx.config.num_experts, self.routing_skew)

    # ------------------------------------------------------------------
    # Step pricing
    # ------------------------------------------------------------------
    def step_seconds(self, plan: StepPlan) -> float:
        """Duration of one engine step (full forward over all layers)."""
        cfg, spec = self.ctx.config, self.ctx.spec
        attn = 0.0
        for ar in plan.prefill:
            attn += attention_cost(cfg, ar.request.prompt_tokens, spec,
                                   batch=1, flash=self.ctx.flash).total_s
        for chunk in plan.chunks:
            attn += self._chunk_attention_seconds(chunk.offset,
                                                  chunk.tokens)
        if plan.decode:
            context = sum(ar.context_tokens for ar in plan.decode)
            attn += decode_attention_cost(cfg, context, spec,
                                          batch=len(plan.decode),
                                          flash=self.ctx.flash).total_s
        tokens = plan.total_tokens
        layer = attn + self._moe_seconds(tokens) \
            + norm_seconds(cfg, tokens, spec)
        return layer * self._layers

    def _chunk_attention_seconds(self, offset: int, tokens: int) -> float:
        """Marginal prefill attention for ``tokens`` new prompt tokens
        attending over ``offset`` already-cached ones (chunked prefill:
        the causal quadratic telescopes across chunks)."""
        cfg, spec = self.ctx.config, self.ctx.spec
        if offset <= 0:
            return attention_cost(cfg, tokens, spec, batch=1,
                                  flash=self.ctx.flash).total_s
        whole = attention_cost(cfg, offset + tokens, spec, batch=1,
                               flash=self.ctx.flash).total_s
        prior = attention_cost(cfg, offset, spec, batch=1,
                               flash=self.ctx.flash).total_s
        return max(whole - prior, 0.0)

    def _moe_seconds(self, tokens: int) -> float:
        """MoE-layer seconds for ``tokens`` new tokens in one step."""
        if tokens <= 0:
            return 0.0
        ctx = self.ctx
        use_lpt = ctx.streams > 1 and isinstance(ctx.engine, SamoyedsEngine)
        if not use_lpt:
            cached = self._moe_memo.get(tokens)
            if cached is None:
                cached = ctx.engine.cost(ctx.config, tokens,
                                         ctx.spec).time_s
                self._moe_memo[tokens] = cached
            return cached
        # LPT path: overlap per-expert SSMM segments on ctx.streams
        # streams; keep the engine model's data-flow overheads.
        cost = ctx.engine.cost(ctx.config, tokens, ctx.spec)
        routed = tokens * ctx.config.top_k
        loads = self._rng.multinomial(routed, self._popularity)
        segments = segment_seconds_from_loads(
            ctx.config, loads, ctx.spec, ctx.segment_kernel(),
            ctx.effective_tile_n)
        makespan = schedule_parallel(segments, ctx.streams).makespan_s
        dataflow = float(cost.detail.get("dataflow_s", 0.0))
        return makespan + dataflow

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _make_ledger(self) -> MemoryLedger:
        if self.page_size:
            return BlockAllocator(self.ctx.config, self.ctx.engine.name,
                                  self.ctx.spec, page_size=self.page_size)
        return KVCacheTracker(self.ctx.config, self.ctx.engine.name,
                              self.ctx.spec)

    def _evict(self, victim: ActiveRequest, ledger: MemoryLedger,
               running: list[ActiveRequest], waiting: "deque[Request]",
               evicted: set[int], collector: MetricsCollector) -> None:
        """Preempt ``victim``: free its blocks, requeue for recompute."""
        ledger.release(victim.request.rid)
        running.remove(victim)
        waiting.appendleft(victim.request)
        evicted.add(victim.request.rid)
        collector.preempt()

    def _grow(self, ar: ActiveRequest, ledger: MemoryLedger,
              running: list[ActiveRequest], waiting: "deque[Request]",
              evicted: set[int], collector: MetricsCollector) -> bool:
        """Charge one token of KV growth for ``ar``, preempting the
        youngest resident request (latest arrival) until it fits.

        Returns ``False`` when ``ar`` itself was the youngest and got
        evicted; raises :class:`CapacityError` when ``ar`` cannot grow
        even with the device to itself.
        """
        while True:
            try:
                ledger.grow(ar.request.rid)
                return True
            except CapacityError:
                victim = max(running, key=lambda a: (a.request.arrival_s,
                                                     a.request.rid))
                if victim is ar and len(running) == 1:
                    total = ar.request.total_tokens
                    raise CapacityError(
                        f"request {ar.request.rid} ({total} tokens) "
                        f"exceeds device memory even alone on "
                        f"{self.ctx.spec.name} with "
                        f"{self.ctx.engine.name}",
                        required_bytes=int(ledger.peak_bytes(total)),
                        available_bytes=int(ledger.budget_bytes
                                            - ledger.static_bytes))
                self._evict(victim, ledger, running, waiting, evicted,
                            collector)
                if victim is ar:
                    return False

    def run(self, trace: Sequence[Request],
            max_steps: int = 1_000_000) -> ServeReport:
        """Serve ``trace`` to completion and summarise the run."""
        validate_trace(trace)
        ledger = self._make_ledger()
        arrivals = deque(sorted(trace, key=lambda r: r.arrival_s))
        records = {req.rid: RequestRecord(req) for req in trace}
        waiting: deque[Request] = deque()
        running: list[ActiveRequest] = []
        collector = MetricsCollector()
        clock = 0.0
        steps = 0

        while arrivals or waiting or running:
            while arrivals and arrivals[0].arrival_s <= clock + 1e-12:
                waiting.append(arrivals.popleft())
            plan = self.batcher.plan_step(clock, waiting, running, ledger,
                                          bool(arrivals))
            if plan.empty:
                if arrivals:                       # idle until next arrival
                    clock = max(clock, arrivals[0].arrival_s)
                    continue
                # An unfinished partial prefill is the stuck request
                # (it holds the blocks); otherwise blame the queue head.
                head = next((ar.request for ar in running
                             if not ar.prefilled),
                            waiting[0] if waiting else running[0].request)
                raise CapacityError(
                    f"request {head.rid} ({head.total_tokens} tokens) can "
                    f"never fit on {self.ctx.spec.name} with "
                    f"{self.ctx.engine.name}",
                    required_bytes=int(
                        ledger.peak_bytes(head.total_tokens)),
                    available_bytes=int(ledger.budget_bytes
                                        - ledger.static_bytes))
            steps += 1
            if steps > max_steps:
                raise ConfigError(f"exceeded {max_steps} steps; trace too "
                                  f"large or engine starved")
            clock += self.step_seconds(plan)
            evicted: set[int] = set()

            # Every ledger-charged request must be resident before any
            # growth, so preemption can see (and evict) all of them.
            running.extend(plan.prefill)
            # Decode growth first, oldest arrivals first: under paged
            # allocation the block that backs a new token may require
            # preempting the youngest resident request.
            for ar in sorted(plan.decode,
                             key=lambda a: (a.request.arrival_s,
                                            a.request.rid)):
                if ar.request.rid in evicted:
                    continue
                ar.generated += 1
                self._grow(ar, ledger, running, waiting, evicted,
                           collector)
            for ar in plan.prefill:                # prompt + first token
                record = records[ar.request.rid]
                if record.admitted_s is None:
                    record.admitted_s = ar.admitted_s
                if ar.request.rid in evicted:
                    continue
                if record.first_token_s is None:
                    record.first_token_s = clock
                ar.prefilled = True
                ar.prefilled_tokens = ar.request.prompt_tokens
                ar.generated = 1
                self._grow(ar, ledger, running, waiting, evicted,
                           collector)
            for chunk in plan.chunks:              # chunked prefill slices
                ar = chunk.ar
                record = records[ar.request.rid]
                if record.admitted_s is None:
                    record.admitted_s = ar.admitted_s
                if ar.request.rid in evicted:
                    continue
                ar.prefilled_tokens += chunk.tokens
                if ar.prefilled_tokens >= ar.request.prompt_tokens:
                    ar.prefilled = True             # last chunk: token one
                    ar.generated = 1
                    if record.first_token_s is None:
                        record.first_token_s = clock
                    self._grow(ar, ledger, running, waiting, evicted,
                               collector)

            # Arrivals that landed during the step join the queue before
            # the sample, so queue-depth percentiles see them.
            while arrivals and arrivals[0].arrival_s <= clock + 1e-12:
                waiting.append(arrivals.popleft())

            collector.observe(StepSample(
                clock_s=clock,
                queue_depth=len(waiting),
                running=ledger.active_requests,
                step_tokens=plan.total_tokens,
                live_bytes=ledger.live_bytes,
                reserved_bytes=ledger.reserved_bytes,
                pool_util=ledger.pool_utilisation,
            ))
            for ar in [ar for ar in running if ar.finished]:
                running.remove(ar)
                ledger.release(ar.request.rid)
                record = records[ar.request.rid]
                record.finished_s = clock
                collector.finish(record)

        return summarise(collector, engine=self.ctx.engine.name,
                         model=self.ctx.config.name,
                         gpu=self.ctx.spec.name, batcher=self.batcher.name,
                         num_requests=len(trace))


def simulate(model: str | ExecutionContext, engine: str = "samoyeds",
             gpu: str = "rtx4070s", *, trace: Sequence[Request],
             batcher: Batcher | None = None, num_layers: int | None = None,
             streams: int = 1, flash: bool = True,
             routing_skew: float = 0.0, seed: int | None = None,
             page_size: int | None = None) -> ServeReport:
    """One-call serving simulation from registry names.

    ``model`` may also be a prebuilt :class:`ExecutionContext`, in which
    case ``engine``/``gpu``/``streams``/``flash`` are ignored.  A
    positive ``page_size`` switches admission to the paged
    :class:`~repro.moe.memory_model.BlockAllocator` (with preemption);
    ``None`` keeps the conservative whole-request reservation.
    """
    if isinstance(model, ExecutionContext):
        ctx = model
    else:
        ctx = ExecutionContext.create(model, engine, gpu, streams=streams,
                                      flash=flash)
    server = ServingEngine(ctx=ctx, batcher=batcher or ContinuousBatcher(),
                           num_layers=num_layers,
                           routing_skew=routing_skew, seed=seed,
                           page_size=page_size)
    return server.run(trace)
