"""Serving metrics: TTFT / TPOT / throughput / queue-depth percentiles.

The serving literature's standard quantities:

* **TTFT** — time to first token: arrival until the prefill step that
  produces the request's first output token completes;
* **TPOT** — time per output token: decode-phase pacing, ``(finish -
  first token) / (output_tokens - 1)``;
* **sustained QPS** — completed requests over the busy interval;
* **queue depth** — waiting requests sampled at every engine step;
* **preemptions** — running requests evicted back to the queue when the
  paged KV allocator ran out of blocks;
* **block utilisation** — charged fraction of the post-static memory
  pool, sampled per step (reservations or live blocks).

Percentiles use the deterministic sorted-linear-interpolation rule so a
fixed RNG seed reproduces a report bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigError
from repro.serve.request import Request

PERCENTILES = (50.0, 90.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Deterministic percentile (sorted, linear interpolation)."""
    if not values:
        raise ConfigError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ConfigError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def _summary(values: Sequence[float]) -> dict[str, float]:
    out = {f"p{int(q)}": percentile(values, q) for q in PERCENTILES}
    out["mean"] = sum(values) / len(values)
    out["max"] = max(values)
    return out


@dataclass
class RequestRecord:
    """Lifecycle timestamps of one request through the engine."""

    request: Request
    admitted_s: float | None = None
    first_token_s: float | None = None
    finished_s: float | None = None

    @property
    def completed(self) -> bool:
        return self.finished_s is not None

    @property
    def ttft_s(self) -> float:
        if self.first_token_s is None:
            raise ConfigError(
                f"request {self.request.rid} produced no token")
        return self.first_token_s - self.request.arrival_s

    @property
    def queueing_s(self) -> float:
        if self.admitted_s is None:
            raise ConfigError(f"request {self.request.rid} never admitted")
        return self.admitted_s - self.request.arrival_s

    @property
    def tpot_s(self) -> float:
        """Decode pacing; 0 for single-token outputs."""
        if self.finished_s is None or self.first_token_s is None:
            raise ConfigError(f"request {self.request.rid} unfinished")
        produced = self.request.output_tokens - 1
        if produced <= 0:
            return 0.0
        return (self.finished_s - self.first_token_s) / produced


@dataclass(frozen=True)
class ServeReport:
    """One engine's result under one trace."""

    engine: str
    model: str
    gpu: str
    batcher: str
    num_requests: int
    completed: int
    duration_s: float
    steps: int
    qps_sustained: float
    output_tokens_per_s: float
    ttft_s: dict[str, float]
    tpot_s: dict[str, float]
    queueing_s: dict[str, float]
    queue_depth: dict[str, float]
    batch_tokens: dict[str, float]
    max_concurrency: int
    peak_memory_bytes: float
    peak_reserved_bytes: float = 0.0
    preemptions: int = 0
    block_utilisation: dict[str, float] = field(default_factory=dict)
    cluster: dict[str, object] | None = None

    def to_dict(self) -> dict[str, object]:
        """JSON-ready payload (plain types only, stable key order).

        The ``cluster`` section (parallel plan, link, placement and
        communication shares) appears only for multi-device runs, so
        single-GPU reports stay byte-identical to the pre-cluster
        format.
        """
        return {
            "engine": self.engine,
            "model": self.model,
            "gpu": self.gpu,
            "batcher": self.batcher,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "duration_s": self.duration_s,
            "steps": self.steps,
            "qps_sustained": self.qps_sustained,
            "output_tokens_per_s": self.output_tokens_per_s,
            "ttft_s": dict(self.ttft_s),
            "tpot_s": dict(self.tpot_s),
            "queueing_s": dict(self.queueing_s),
            "queue_depth": dict(self.queue_depth),
            "batch_tokens": dict(self.batch_tokens),
            "max_concurrency": self.max_concurrency,
            "peak_memory_bytes": self.peak_memory_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "preemptions": self.preemptions,
            "block_utilisation": dict(self.block_utilisation),
            **({"cluster": dict(self.cluster)}
               if self.cluster is not None else {}),
        }

    def summary_row(self) -> list[object]:
        """One table row for ``bench/report.render_table``."""
        return [self.engine, self.batcher, self.completed,
                f"{self.qps_sustained:.2f}",
                f"{self.output_tokens_per_s:.0f}",
                f"{self.ttft_s['p50'] * 1e3:.1f}",
                f"{self.ttft_s['p99'] * 1e3:.1f}",
                f"{self.tpot_s['p50'] * 1e3:.2f}",
                f"{self.queue_depth['max']:.0f}",
                self.max_concurrency,
                self.preemptions]


REPORT_HEADERS = ["engine", "batcher", "done", "qps", "tok/s",
                  "ttft p50 ms", "ttft p99 ms", "tpot p50 ms",
                  "queue max", "max conc", "preempt"]


@dataclass
class StepSample:
    """Per-step observability sample taken by the event loop.

    ``live_bytes`` is the instantaneous static + KV footprint;
    ``reserved_bytes`` is what the admission policy actually charged
    (peak reservations or live blocks), whose post-static fraction of
    the pool is ``pool_util``.
    """

    clock_s: float
    queue_depth: int
    running: int
    step_tokens: int
    live_bytes: float = 0.0
    reserved_bytes: float = 0.0
    pool_util: float = 0.0
    comm_s: float = 0.0
    step_s: float = 0.0


@dataclass
class MetricsCollector:
    """Accumulates per-step samples, finished records and evictions."""

    samples: list[StepSample] = field(default_factory=list)
    records: list[RequestRecord] = field(default_factory=list)
    preemptions: int = 0

    def observe(self, sample: StepSample) -> None:
        self.samples.append(sample)

    def finish(self, record: RequestRecord) -> None:
        self.records.append(record)

    def preempt(self) -> None:
        """Count one eviction of a running request back to the queue."""
        self.preemptions += 1


def _zero_summary() -> dict[str, float]:
    """The all-zero percentile block of an empty report."""
    out = {f"p{int(q)}": 0.0 for q in PERCENTILES}
    out["mean"] = 0.0
    out["max"] = 0.0
    return out


def _sample_stats(samples: "Sequence[StepSample]") -> dict[str, object]:
    """Per-step aggregates shared by the full and zero-completion
    reports (zeroed when no step was ever observed)."""
    if not samples:
        return {
            "queue_depth": _zero_summary(),
            "batch_tokens": _zero_summary(),
            "max_concurrency": 0,
            "peak_memory_bytes": 0.0,
            "peak_reserved_bytes": 0.0,
            "block_utilisation": _zero_summary(),
        }
    return {
        "queue_depth": _summary([float(s.queue_depth) for s in samples]),
        "batch_tokens": _summary([float(s.step_tokens) for s in samples]),
        "max_concurrency": max(s.running for s in samples),
        "peak_memory_bytes": max(s.live_bytes for s in samples),
        "peak_reserved_bytes": max(s.reserved_bytes for s in samples),
        "block_utilisation": _summary([s.pool_util for s in samples]),
    }


def _empty_report(collector: MetricsCollector, *, engine: str, model: str,
                  gpu: str, batcher: str, num_requests: int,
                  cluster: dict[str, object] | None) -> ServeReport:
    """Well-formed report for a run where nothing completed.

    A short horizon (or a trace cut off mid-flight) can finish zero
    requests; callers sweeping load points need a structured zero, not
    an exception from :func:`percentile` over no samples.
    """
    samples = collector.samples
    return ServeReport(
        engine=engine,
        model=model,
        gpu=gpu,
        batcher=batcher,
        num_requests=num_requests,
        completed=0,
        duration_s=samples[-1].clock_s if samples else 0.0,
        steps=len(samples),
        qps_sustained=0.0,
        output_tokens_per_s=0.0,
        ttft_s=_zero_summary(),
        tpot_s=_zero_summary(),
        queueing_s=_zero_summary(),
        preemptions=collector.preemptions,
        cluster=cluster,
        **_sample_stats(samples),  # type: ignore[arg-type]
    )


def summarise(collector: MetricsCollector, *, engine: str, model: str,
              gpu: str, batcher: str, num_requests: int,
              cluster: dict[str, object] | None = None) -> ServeReport:
    """Fold a run's samples and records into a :class:`ServeReport`.

    Zero completed requests yield a well-formed empty report (all
    percentile blocks zeroed) rather than an error; ``cluster`` is the
    optional multi-device section attached verbatim.
    """
    done = [r for r in collector.records if r.completed]
    if cluster is not None and collector.samples:
        cluster = dict(cluster)
        cluster["comm_fraction_per_step"] = _summary(
            [s.comm_s / s.step_s if s.step_s > 0 else 0.0
             for s in collector.samples])
    if not done:
        return _empty_report(collector, engine=engine, model=model,
                             gpu=gpu, batcher=batcher,
                             num_requests=num_requests, cluster=cluster)
    samples = collector.samples
    if not samples:
        raise ConfigError("completed requests but no observed steps")
    first_arrival = min(r.request.arrival_s for r in done)
    last_finish = max(r.finished_s for r in done)          # type: ignore
    duration = max(last_finish - first_arrival, 1e-12)
    out_tokens = sum(r.request.output_tokens for r in done)
    return ServeReport(
        engine=engine,
        model=model,
        gpu=gpu,
        batcher=batcher,
        num_requests=num_requests,
        completed=len(done),
        duration_s=duration,
        steps=len(collector.samples),
        qps_sustained=len(done) / duration,
        output_tokens_per_s=out_tokens / duration,
        ttft_s=_summary([r.ttft_s for r in done]),
        tpot_s=_summary([r.tpot_s for r in done]),
        queueing_s=_summary([r.queueing_s for r in done]),
        preemptions=collector.preemptions,
        cluster=cluster,
        **_sample_stats(samples),  # type: ignore[arg-type]
    )
