"""Serving metrics: TTFT / TPOT / throughput / queue-depth percentiles.

The serving literature's standard quantities:

* **TTFT** — time to first token: arrival until the prefill step that
  produces the request's first output token completes;
* **TPOT** — time per output token: decode-phase pacing, ``(finish -
  first token) / (output_tokens - 1)``;
* **sustained QPS** — completed requests over the busy interval;
* **queue depth** — waiting requests sampled at every engine step;
* **preemptions** — running requests evicted back to the queue when the
  paged KV allocator ran out of blocks;
* **block utilisation** — charged fraction of the post-static memory
  pool, sampled per step (reservations or live blocks).

Percentiles use the deterministic sorted-linear-interpolation rule so a
fixed RNG seed reproduces a report bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Sequence

from repro.errors import ConfigError
from repro.serve.events import CLOCK_EPS
from repro.workloads.tenants import TenantSpec
from repro.workloads.traces import DEFAULT_TENANT, Request


def percentile(values: Sequence[float], q: float) -> float:
    """Deterministic percentile (sorted, linear interpolation)."""
    if not values:
        raise ConfigError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ConfigError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


@dataclass(frozen=True)
class PercentileSummary:
    """Typed p50/p90/p99/mean/max block of one metric.

    Replaces the raw ``dict[str, float]`` blocks the report used to
    carry.  ``to_dict()`` emits the exact legacy key order, and the
    mapping protocol (``summary["p50"]``, ``dict(summary)``) keeps the
    dict-shaped call sites working unchanged.
    """

    p50: float
    p90: float
    p99: float
    mean: float
    max: float

    _KEYS = ("p50", "p90", "p99", "mean", "max")

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "PercentileSummary":
        return cls(p50=percentile(values, 50.0),
                   p90=percentile(values, 90.0),
                   p99=percentile(values, 99.0),
                   mean=sum(values) / len(values),
                   max=float(max(values)))

    @classmethod
    def zero(cls) -> "PercentileSummary":
        """The all-zero block of an empty report."""
        return cls(p50=0.0, p90=0.0, p99=0.0, mean=0.0, max=0.0)

    @classmethod
    def from_dict(cls, payload: "dict[str, float]") -> "PercentileSummary":
        unknown = set(payload) - set(cls._KEYS)
        if unknown:
            raise ConfigError(f"unknown percentile keys: {sorted(unknown)}")
        missing = set(cls._KEYS) - set(payload)
        if missing:
            # Silent zero-fill would read a truncated payload as real
            # zero latencies; a saved block always carries all five.
            raise ConfigError(
                f"missing percentile keys: {sorted(missing)}")
        return cls(**{key: float(payload[key]) for key in cls._KEYS})

    def to_dict(self) -> dict[str, float]:
        """JSON payload, byte-identical to the legacy dict blocks."""
        return {key: getattr(self, key) for key in self._KEYS}

    # -- mapping protocol (legacy call sites treat blocks as dicts) ----
    def keys(self) -> tuple[str, ...]:
        return self._KEYS

    def values(self) -> tuple[float, ...]:
        return tuple(getattr(self, key) for key in self._KEYS)

    def items(self) -> tuple[tuple[str, float], ...]:
        return tuple((key, getattr(self, key)) for key in self._KEYS)

    def get(self, key: str, default: object = None) -> object:
        return getattr(self, key) if key in self._KEYS else default

    def __getitem__(self, key: str) -> float:
        if key not in self._KEYS:
            raise KeyError(key)
        return float(getattr(self, key))

    def __iter__(self):
        return iter(self._KEYS)

    def __len__(self) -> int:
        return len(self._KEYS)

    def __contains__(self, key: object) -> bool:
        return key in self._KEYS


@dataclass
class RequestRecord:
    """Lifecycle timestamps of one request through the engine."""

    request: Request
    admitted_s: float | None = None
    first_token_s: float | None = None
    finished_s: float | None = None

    @property
    def completed(self) -> bool:
        return self.finished_s is not None

    @property
    def ttft_s(self) -> float:
        if self.first_token_s is None:
            raise ConfigError(
                f"request {self.request.rid} produced no token")
        return self.first_token_s - self.request.arrival_s

    @property
    def queueing_s(self) -> float:
        if self.admitted_s is None:
            raise ConfigError(f"request {self.request.rid} never admitted")
        return self.admitted_s - self.request.arrival_s

    @property
    def tpot_s(self) -> float:
        """Decode pacing; 0 for single-token outputs."""
        if self.finished_s is None or self.first_token_s is None:
            raise ConfigError(f"request {self.request.rid} unfinished")
        produced = self.request.output_tokens - 1
        if produced <= 0:
            return 0.0
        return (self.finished_s - self.first_token_s) / produced


@dataclass(frozen=True)
class ServeReport:
    """One engine's result under one trace."""

    engine: str
    model: str
    gpu: str
    batcher: str
    num_requests: int
    completed: int
    duration_s: float
    steps: int
    qps_sustained: float
    output_tokens_per_s: float
    ttft_s: PercentileSummary
    tpot_s: PercentileSummary
    queueing_s: PercentileSummary
    queue_depth: PercentileSummary
    batch_tokens: PercentileSummary
    max_concurrency: int
    peak_memory_bytes: float
    peak_reserved_bytes: float = 0.0
    preemptions: int = 0
    block_utilisation: PercentileSummary = field(
        default_factory=PercentileSummary.zero)
    cluster: dict[str, object] | None = None
    #: Auto-dispatch section (``engine="auto"`` runs only): which fixed
    #: engine the cost-driven selector picked per serving phase.
    auto: dict[str, object] | None = None
    #: Per-tenant section (multi-tenant runs only): one block per
    #: tenant with TTFT/TPOT percentiles, SLO attainment, admission
    #: and preemption counts.  ``None`` on single-tenant runs so their
    #: reports stay byte-identical to the pre-tenant format.
    tenants: dict[str, object] | None = None
    #: Per-pool section (disaggregated runs only): one block per pool
    #: with its role/device identity, step and request counts, and the
    #: phase latencies served there (TTFT on prefill-capable pools,
    #: TPOT on decode-capable ones).  ``None`` on colocated runs so
    #: their reports stay byte-identical to the pre-disagg format.
    pools: dict[str, object] | None = None
    #: KV-transfer section (disaggregated runs only): the inter-pool
    #: link, migration counts, bytes moved and the per-request
    #: transfer-seconds distribution.  ``None`` on colocated runs.
    transfer: dict[str, object] | None = None

    def to_dict(self) -> dict[str, object]:
        """JSON-ready payload (plain types only, stable key order).

        The ``cluster`` section (parallel plan, link, placement and
        communication shares) appears only for multi-device runs, and
        the ``tenants`` section only when tenants were declared, so
        single-GPU single-tenant reports stay byte-identical to the
        pre-cluster / pre-tenant format.
        """
        return {
            "engine": self.engine,
            "model": self.model,
            "gpu": self.gpu,
            "batcher": self.batcher,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "duration_s": self.duration_s,
            "steps": self.steps,
            "qps_sustained": self.qps_sustained,
            "output_tokens_per_s": self.output_tokens_per_s,
            "ttft_s": self.ttft_s.to_dict(),
            "tpot_s": self.tpot_s.to_dict(),
            "queueing_s": self.queueing_s.to_dict(),
            "queue_depth": self.queue_depth.to_dict(),
            "batch_tokens": self.batch_tokens.to_dict(),
            "max_concurrency": self.max_concurrency,
            "peak_memory_bytes": self.peak_memory_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "preemptions": self.preemptions,
            "block_utilisation": self.block_utilisation.to_dict(),
            **({"cluster": dict(self.cluster)}
               if self.cluster is not None else {}),
            **({"auto": dict(self.auto)}
               if self.auto is not None else {}),
            **({"tenants": dict(self.tenants)}
               if self.tenants is not None else {}),
            **({"pools": dict(self.pools)}
               if self.pools is not None else {}),
            **({"transfer": dict(self.transfer)}
               if self.transfer is not None else {}),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ServeReport":
        """Rebuild a typed report from a saved ``to_dict()`` payload."""
        data = dict(payload)
        for key in ("ttft_s", "tpot_s", "queueing_s", "queue_depth",
                    "batch_tokens", "block_utilisation"):
            block = data.get(key)
            if isinstance(block, dict):
                data[key] = PercentileSummary.from_dict(block)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown report keys: {sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]

    def summary_row(self) -> list[object]:
        """One table row for ``bench/report.render_table``."""
        return [self.engine, self.batcher, self.completed,
                f"{self.qps_sustained:.2f}",
                f"{self.output_tokens_per_s:.0f}",
                f"{self.ttft_s.p50 * 1e3:.1f}",
                f"{self.ttft_s.p99 * 1e3:.1f}",
                f"{self.tpot_s.p50 * 1e3:.2f}",
                f"{self.queue_depth.max:.0f}",
                self.max_concurrency,
                self.preemptions]


REPORT_HEADERS = ["engine", "batcher", "done", "qps", "tok/s",
                  "ttft p50 ms", "ttft p99 ms", "tpot p50 ms",
                  "queue max", "max conc", "preempt"]


@dataclass
class StepSample:
    """Per-step observability sample taken by the event loop.

    ``live_bytes`` is the instantaneous static + KV footprint;
    ``reserved_bytes`` is what the admission policy actually charged
    (peak reservations or live blocks), whose post-static fraction of
    the pool is ``pool_util``.
    """

    clock_s: float
    queue_depth: int
    running: int
    step_tokens: int
    live_bytes: float = 0.0
    reserved_bytes: float = 0.0
    pool_util: float = 0.0
    comm_s: float = 0.0
    step_s: float = 0.0


@dataclass
class MetricsCollector:
    """Accumulates per-step samples, finished records and evictions."""

    samples: list[StepSample] = field(default_factory=list)
    records: list[RequestRecord] = field(default_factory=list)
    preemptions: int = 0
    preemptions_by_tenant: dict[str, int] = field(default_factory=dict)
    rejected_by_tenant: dict[str, int] = field(default_factory=dict)

    def observe(self, sample: StepSample) -> None:
        self.samples.append(sample)

    def finish(self, record: RequestRecord) -> None:
        self.records.append(record)

    def preempt(self, tenant: str = DEFAULT_TENANT) -> None:
        """Count one eviction of a running request back to the queue."""
        self.preemptions += 1
        self.preemptions_by_tenant[tenant] = \
            self.preemptions_by_tenant.get(tenant, 0) + 1

    def reject(self, tenant: str = DEFAULT_TENANT) -> None:
        """Count one arrival rejected by its tenant's rate limit."""
        self.rejected_by_tenant[tenant] = \
            self.rejected_by_tenant.get(tenant, 0) + 1


def _sample_stats(samples: "Sequence[StepSample]") -> dict[str, object]:
    """Per-step aggregates shared by the full and zero-completion
    reports (zeroed when no step was ever observed)."""
    if not samples:
        return {
            "queue_depth": PercentileSummary.zero(),
            "batch_tokens": PercentileSummary.zero(),
            "max_concurrency": 0,
            "peak_memory_bytes": 0.0,
            "peak_reserved_bytes": 0.0,
            "block_utilisation": PercentileSummary.zero(),
        }
    return {
        "queue_depth": PercentileSummary.from_values(
            [float(s.queue_depth) for s in samples]),
        "batch_tokens": PercentileSummary.from_values(
            [float(s.step_tokens) for s in samples]),
        "max_concurrency": max(s.running for s in samples),
        "peak_memory_bytes": max(s.live_bytes for s in samples),
        "peak_reserved_bytes": max(s.reserved_bytes for s in samples),
        "block_utilisation": PercentileSummary.from_values(
            [s.pool_util for s in samples]),
    }


def _attainment(hits: int, offered: int) -> float:
    """SLO attainment over *offered* requests: a request that was
    rejected, starved or cut off by the horizon missed its SLO."""
    return hits / offered if offered else 0.0


def tenant_sections(tenants: "Sequence[TenantSpec]",
                    records: "Sequence[RequestRecord]",
                    rejected: "dict[str, int] | None" = None,
                    preempted: "dict[str, int] | None" = None
                    ) -> dict[str, object]:
    """Per-tenant report blocks: one per declared tenant (in
    declaration order) plus any extra tenant the trace carried.

    A tenant with zero completed requests reuses the zero-completions
    path (:meth:`PercentileSummary.zero`) — a well-formed all-zero
    block, never a percentile error.  SLO attainment is the fraction
    of the tenant's *offered* requests that met the objective
    (``None`` when the tenant declared no objective).
    """
    rejected = rejected or {}
    preempted = preempted or {}
    declared = {t.name: t for t in tenants}
    extras = sorted({r.request.tenant for r in records} - set(declared))
    sections: dict[str, object] = {}
    for name in list(declared) + extras:
        spec = declared.get(name)
        recs = [r for r in records if r.request.tenant == name]
        done = [r for r in recs if r.completed]
        first = [r for r in recs if r.first_token_s is not None]
        offered = len(recs)
        ttft = (PercentileSummary.from_values([r.ttft_s for r in first])
                if first else PercentileSummary.zero())
        tpot = (PercentileSummary.from_values([r.tpot_s for r in done])
                if done else PercentileSummary.zero())
        ttft_slo = spec.ttft_slo_s if spec is not None else None
        tpot_slo = spec.tpot_slo_s if spec is not None else None
        sections[name] = {
            "priority": spec.priority if spec is not None else 0,
            "requests": offered,
            "admitted": sum(1 for r in recs
                            if r.admitted_s is not None),
            "completed": len(done),
            "rejected": rejected.get(name, 0),
            "preemptions": preempted.get(name, 0),
            "ttft_s": ttft.to_dict(),
            "tpot_s": tpot.to_dict(),
            "ttft_slo_s": ttft_slo,
            "tpot_slo_s": tpot_slo,
            "ttft_attainment": (
                _attainment(sum(1 for r in first
                                if r.ttft_s <= ttft_slo), offered)
                if ttft_slo is not None else None),
            "tpot_attainment": (
                _attainment(sum(1 for r in done
                                if r.tpot_s <= tpot_slo), offered)
                if tpot_slo is not None else None),
        }
    return sections


def _empty_report(collector: MetricsCollector, *, engine: str, model: str,
                  gpu: str, batcher: str, num_requests: int,
                  cluster: dict[str, object] | None,
                  auto: dict[str, object] | None,
                  tenants: dict[str, object] | None = None,
                  pools: dict[str, object] | None = None,
                  transfer: dict[str, object] | None = None
                  ) -> ServeReport:
    """Well-formed report for a run where nothing completed.

    A short horizon (or a trace cut off mid-flight) can finish zero
    requests; callers sweeping load points need a structured zero, not
    an exception from :func:`percentile` over no samples.
    """
    samples = collector.samples
    return ServeReport(
        engine=engine,
        model=model,
        gpu=gpu,
        batcher=batcher,
        num_requests=num_requests,
        completed=0,
        duration_s=samples[-1].clock_s if samples else 0.0,
        steps=len(samples),
        qps_sustained=0.0,
        output_tokens_per_s=0.0,
        ttft_s=PercentileSummary.zero(),
        tpot_s=PercentileSummary.zero(),
        queueing_s=PercentileSummary.zero(),
        preemptions=collector.preemptions,
        cluster=cluster,
        auto=auto,
        tenants=tenants,
        pools=pools,
        transfer=transfer,
        **_sample_stats(samples),  # type: ignore[arg-type]
    )


def summarise(collector: MetricsCollector, *, engine: str, model: str,
              gpu: str, batcher: str, num_requests: int,
              cluster: dict[str, object] | None = None,
              auto: dict[str, object] | None = None,
              tenants: "Sequence[TenantSpec] | None" = None,
              all_records: "Sequence[RequestRecord] | None" = None,
              pools: dict[str, object] | None = None,
              transfer: dict[str, object] | None = None
              ) -> ServeReport:
    """Fold a run's samples and records into a :class:`ServeReport`.

    Zero completed requests yield a well-formed empty report (all
    percentile blocks zeroed) rather than an error; ``cluster`` (the
    multi-device section) and ``auto`` (the auto-dispatch section) are
    attached verbatim when present.  ``tenants`` (with ``all_records``,
    every request's record whether finished or not) attaches the
    per-tenant section; ``None`` keeps the single-tenant report shape.
    ``pools`` / ``transfer`` are the disaggregated-serving sections
    (:mod:`repro.serve.disagg`), attached verbatim when present.
    """
    done = [r for r in collector.records if r.completed]
    if cluster is not None and collector.samples:
        cluster = dict(cluster)
        cluster["comm_fraction_per_step"] = PercentileSummary.from_values(
            [s.comm_s / s.step_s if s.step_s > 0 else 0.0
             for s in collector.samples]).to_dict()
    tenant_blocks = None
    if tenants is not None:
        tenant_blocks = tenant_sections(
            tenants, all_records if all_records is not None
            else collector.records,
            rejected=collector.rejected_by_tenant,
            preempted=collector.preemptions_by_tenant)
    if not done:
        return _empty_report(collector, engine=engine, model=model,
                             gpu=gpu, batcher=batcher,
                             num_requests=num_requests, cluster=cluster,
                             auto=auto, tenants=tenant_blocks,
                             pools=pools, transfer=transfer)
    samples = collector.samples
    if not samples:
        raise ConfigError("completed requests but no observed steps")
    first_arrival_s = min(r.request.arrival_s for r in done)
    last_finish_s = max(r.finished_s for r in done)        # type: ignore
    duration_s = max(last_finish_s - first_arrival_s, CLOCK_EPS)
    out_tokens = sum(r.request.output_tokens for r in done)
    return ServeReport(
        engine=engine,
        model=model,
        gpu=gpu,
        batcher=batcher,
        num_requests=num_requests,
        completed=len(done),
        duration_s=duration_s,
        steps=len(collector.samples),
        qps_sustained=len(done) / duration_s,
        output_tokens_per_s=out_tokens / duration_s,
        ttft_s=PercentileSummary.from_values([r.ttft_s for r in done]),
        tpot_s=PercentileSummary.from_values([r.tpot_s for r in done]),
        queueing_s=PercentileSummary.from_values(
            [r.queueing_s for r in done]),
        preemptions=collector.preemptions,
        cluster=cluster,
        auto=auto,
        tenants=tenant_blocks,
        pools=pools,
        transfer=transfer,
        **_sample_stats(samples),  # type: ignore[arg-type]
    )


def sim_throughput(num_requests: int, steps: int,
                   wall_s: float) -> dict[str, float]:
    """Simulator throughput: simulated requests and steps per *wall*
    second.

    This measures the simulator itself, not the modelled server —
    ``repro bench sim`` feeds it a timed replay to build the
    ``BENCH_sim.json`` trajectory.  A non-positive wall clock (a
    too-coarse timer on a tiny run) reports zero rather than dividing
    by it.
    """
    if wall_s <= 0:
        return {"wall_s": wall_s, "requests_per_s": 0.0,
                "steps_per_s": 0.0}
    return {"wall_s": wall_s,
            "requests_per_s": num_requests / wall_s,
            "steps_per_s": steps / wall_s}
