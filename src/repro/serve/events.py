"""Event calendar for the discrete-event serving core.

The serving engine used to advance its clock inside a nested ``while
arrivals or waiting or running`` loop, draining arrival deques inline
(twice) and mutating the clock mid-body.  This module replaces that
shape with the classic simulator architecture (the accasim
``EventManager`` + ``JobFactory`` pattern): a heap-ordered
:class:`EventQueue` of typed events and an :class:`EventManager` that
owns the clock.  The engine becomes a set of event handlers; the
manager decides *when*, the engine decides *what*.

Event types and their meaning:

* :class:`Arrival` — a request reaches the server and joins the waiting
  queue.  One is pushed per trace request at run start.
* :class:`StepComplete` — an in-flight engine step finishes: its plan's
  lifecycle effects (decode growth, prefill completion, chunk
  accounting, preemptions) are applied at the completion clock.
* :class:`Preempt` — a running request was evicted back to the waiting
  queue by the paged allocator.  Preemptions are *consequences* of a
  step completing, so they are dispatched immediately at the current
  clock rather than scheduled into the future; they flow through the
  same typed-event path so observers see one uniform stream.
* :class:`HorizonExpired` — the serving horizon was reached: no further
  steps are planned, in-flight work still completes.
* :class:`RateRefill` — a wake-up scheduled at the instant a tenant's
  token bucket has refilled enough to admit the throttled queue head.
  The event itself is a no-op: it exists to give the otherwise idle
  calendar something to advance to, after which the normal planning
  path retries admission.
* :class:`KVTransfer` — a finished prompt's KV blocks land on their
  decode pool (disaggregated serving, :mod:`repro.serve.disagg`).  The
  event is scheduled at transfer start for ``start + transfer_s``
  (the inter-pool link's alpha-beta cost for the request's KV bytes);
  its handler releases the source pool's ledger charge and starts the
  request decoding on the destination pool.  During the in-flight
  window the request is resident on *both* ledgers — the conservation
  invariant the sim-sanitizer checks.

Ordering guarantees
-------------------

Events pop in ``(when, kind, rid)`` order: time first, then event kind
(arrivals sort before step completions at the same instant, matching
the old loop's drain-before-sample behaviour), then request id, so
near-simultaneous events order deterministically and a fixed seed
reproduces a run bit for bit.

Two clocks reading within :data:`CLOCK_EPS` of each other are *the same
instant*: an arrival landing within the epsilon of a step boundary is
admitted at that boundary without advancing the clock.  This is the
named successor of the ad-hoc ``1e-12`` the old loop repeated inline.
The epsilon tolerance applies only to arrivals — a
:class:`HorizonExpired` at ``t`` must not stop a run whose clock reads
``t - eps/2``, because the old loop's ``clock >= horizon`` comparison
was exact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING, ClassVar

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.workloads.traces import Request

#: Clock tolerance under which two event times are the same instant.
#: Successor of the inline ``1e-12`` the pre-calendar loop used in its
#: two arrival-drain blocks; every comparison in the calendar (and the
#: engine built on it) goes through this constant.
CLOCK_EPS = 1e-12


class EventKind(IntEnum):
    """Tie-break order for events at the same instant (lowest first).

    Arrivals sort before the step completion they coincide with so the
    queue-depth sample taken after a step sees every request that
    landed at (or epsilon-past) its boundary — the invariant the old
    loop maintained with its second drain block.
    """

    ARRIVAL = 0
    STEP_COMPLETE = 1
    PREEMPT = 2
    HORIZON_EXPIRED = 3
    RATE_REFILL = 4
    KV_TRANSFER = 5


@dataclass(frozen=True)
class Event:
    """Base event: a timestamp plus a deterministic tie-break key."""

    when: float

    KIND: ClassVar[EventKind] = EventKind.ARRIVAL

    @property
    def rid(self) -> int:
        """Request id used as the final tie-break (-1 when unrelated
        to a specific request)."""
        return -1

    def sort_key(self) -> tuple[float, int, int]:
        return (self.when, int(self.KIND), self.rid)


@dataclass(frozen=True)
class Arrival(Event):
    """A request arrives and joins the waiting queue."""

    request: "Request" = None  # type: ignore[assignment]

    KIND = EventKind.ARRIVAL

    @property
    def rid(self) -> int:
        return self.request.rid


@dataclass(frozen=True)
class StepComplete(Event):
    """An in-flight engine step finishes at ``when``.

    ``step_s`` is the step's modelled duration, ``comm_s`` its
    communication share (multi-device runs).  The plan itself is held
    by the engine (it is mutable step state, not event payload).
    """

    step_s: float = 0.0
    comm_s: float = 0.0

    KIND = EventKind.STEP_COMPLETE


@dataclass(frozen=True)
class Preempt(Event):
    """A running request was evicted back to the waiting queue."""

    victim_rid: int = -1
    tenant: str = "default"

    KIND = EventKind.PREEMPT

    @property
    def rid(self) -> int:
        return self.victim_rid


@dataclass(frozen=True)
class HorizonExpired(Event):
    """The serving horizon was reached; plan no further steps."""

    KIND = EventKind.HORIZON_EXPIRED


@dataclass(frozen=True)
class RateRefill(Event):
    """A throttled tenant's token bucket has refilled enough to admit
    the waiting queue head; wake the planner (no other effect)."""

    KIND = EventKind.RATE_REFILL


@dataclass(frozen=True)
class KVTransfer(Event):
    """A migrating request's KV blocks arrive on the decode pool.

    Scheduled by the disaggregated engine at transfer *start* for
    ``start + transfer_s``, where ``transfer_s`` is the inter-pool
    link's :meth:`~repro.hw.interconnect.LinkSpec.transfer_seconds`
    for ``nbytes`` of KV state (all layers of the request's context at
    prefill completion).  The destination ledger was charged at
    transfer start; the handler releases the source ledger and adds
    the request to the destination pool's running set.
    """

    transfer_rid: int = -1
    src_pool: str = ""
    dst_pool: str = ""
    nbytes: float = 0.0
    transfer_s: float = 0.0

    KIND = EventKind.KV_TRANSFER

    @property
    def rid(self) -> int:
        return self.transfer_rid


class EventQueue:
    """Heap-ordered queue of typed events.

    Events pop in ``(when, kind, rid)`` order; a monotone sequence
    number breaks any remaining tie by push order so the heap never
    compares event objects (and equal keys stay first-in-first-out).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, int, Event]] = []
        self._pushed = 0
        self._arrivals = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def pending_arrivals(self) -> int:
        """Arrival events still in the queue (the old loop's
        ``bool(arrivals)`` batcher signal)."""
        return self._arrivals

    def push(self, event: Event) -> None:
        when, kind, rid = event.sort_key()
        heapq.heappush(self._heap, (when, kind, rid, self._pushed, event))
        self._pushed += 1
        if isinstance(event, Arrival):
            self._arrivals += 1

    def peek(self) -> Event | None:
        return self._heap[0][4] if self._heap else None

    def pop(self) -> Event:
        if not self._heap:
            raise ConfigError("pop from an empty event queue")
        event = heapq.heappop(self._heap)[4]
        if isinstance(event, Arrival):
            self._arrivals -= 1
        return event

    def due(self, now: float, eps: float = CLOCK_EPS) -> Event | None:
        """Pop the next event if it is due at ``now``.

        Arrivals are due within ``eps`` of ``now`` (same-instant
        tolerance); every other kind is due only at ``when <= now`` —
        see the module docstring on why :class:`HorizonExpired` must
        not borrow the arrival tolerance.
        """
        head = self.peek()
        if head is None:
            return None
        limit = now + eps if isinstance(head, Arrival) else now
        return self.pop() if head.when <= limit else None


class EventManager:
    """Owns the simulation clock and dispatches due events in order.

    The manager is deliberately small: it advances the clock (never
    backwards), pops events when they are due, and hands them to the
    handler the engine registered per event kind.  All serving policy
    (planning steps, admission, preemption) stays in the engine's
    handlers.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.clock = 0.0
        self.stopped = False
        self._handlers: dict[EventKind, object] = {}

    def on(self, kind: EventKind, handler) -> None:
        """Register ``handler(event)`` for ``kind``."""
        self._handlers[kind] = handler

    def stop(self) -> None:
        """Stop the run: no further events are dispatched by
        :meth:`dispatch_due` and the engine plans no further steps."""
        self.stopped = True

    def emit(self, event: Event) -> None:
        """Dispatch ``event`` immediately at the current clock
        (used for same-instant consequences such as :class:`Preempt`)."""
        self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        handler = self._handlers.get(event.KIND)
        if handler is None:
            raise ConfigError(
                f"no handler registered for {event.KIND.name}")
        handler(event)

    def dispatch_due(self) -> bool:
        """Dispatch every event due at the current clock.

        Returns ``True`` if at least one event was dispatched.  The
        clock does not move: same-instant events (arrivals within
        :data:`CLOCK_EPS`) are the calendar's replacement for the old
        loop's inline drain blocks.  Dispatch continues even after
        :meth:`stop` — the stopped flag gates *planning*, and an
        arrival coinciding with the horizon must still join the
        waiting queue before the final queue-depth sample.
        """
        fired = False
        while True:
            event = self.queue.due(self.clock)
            if event is None:
                break
            self._dispatch(event)
            fired = True
        return fired

    def advance(self) -> bool:
        """Advance the clock to the next event and dispatch it (plus
        everything else due at that instant).

        Returns ``False`` when the queue is empty (nothing to advance
        to).  The clock never moves backwards: an event timestamped in
        the epsilon-past dispatches at the current clock.  Advancing
        works even after :meth:`stop` — a step in flight when the
        horizon expires still completes fully (the engine stops
        *planning*, not the calendar).
        """
        if not len(self.queue):
            return False
        event = self.queue.pop()
        self.clock = max(self.clock, event.when)
        self._dispatch(event)
        self.dispatch_due()
        return True
