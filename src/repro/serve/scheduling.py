"""SLO-aware scheduling: preemption order and per-tenant admission.

Two policy axes, both defaulting to the engine's historical behaviour:

**Preemption order** — when the paged allocator cannot back a token,
the engine evicts ``max(running, key=policy.victim_key(...))``:

* :class:`YoungestFirst` (default) keys on ``(arrival_s, rid)`` — the
  exact tuple the engine always used, so default runs stay
  byte-identical to the goldens;
* :class:`PrioritySlack` keys on ``(-priority, slack, arrival, rid)``:
  the victim is the lowest-priority request, ties broken by the most
  SLO slack remaining — the request that can best afford a recompute.
  The policy also *orders the waiting queue* by ``(-priority,
  arrival_s, rid)`` at each plan boundary, which is the main lever for
  high-priority TTFT attainment under overload.

Slack is time until the request's next deadline: ``arrival + ttft_slo``
while prefilling, ``first_token + tpot_slo * (output - 1)`` (the
finish deadline at SLO pace) once decoding; requests of tenants with
no SLO have infinite slack and are always preferred victims within
their priority class.

**Admission gating** — tenants with a ``token_rate_limit`` admit
through a :class:`TokenBucket` (capacity ``burst_tokens``, refilled
continuously): a request charges ``total_tokens`` when admitted, an
underfull bucket defers admission (head-of-line, retried every step —
the engine schedules a :class:`~repro.serve.events.RateRefill` wake-up
when the calendar would otherwise go idle), and a request larger than
the bucket capacity is rejected at arrival, never entering the queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import ConfigError
from repro.workloads.tenants import TenantSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.serve.batcher import ActiveRequest
    from repro.serve.metrics import RequestRecord
    from repro.workloads.traces import Request

#: Bucket-level tolerance absorbing float refill error: a request due
#: exactly at a refill boundary must admit there, not one event later.
_BUCKET_EPS = 1e-9

_INF = float("inf")


class SchedulingPolicy:
    """Preemption-order (and optionally queue-order) policy."""

    name: str = "policy"
    #: Does the policy reorder the waiting queue at plan boundaries?
    reorders_queue: bool = False

    def victim_key(self, ar: "ActiveRequest", clock: float,
                   record: "RequestRecord | None",
                   tenant: TenantSpec | None):
        """Sort key of eviction preference; ``max`` wins (is evicted)."""
        raise NotImplementedError

    def queue_key(self, req: "Request", tenant: TenantSpec | None):
        """Waiting-queue sort key (ascending; head admits first)."""
        raise NotImplementedError


class YoungestFirst(SchedulingPolicy):
    """Evict the latest arrival — the engine's historical default."""

    name = "youngest_first"
    reorders_queue = False

    def victim_key(self, ar: "ActiveRequest", clock: float,
                   record: "RequestRecord | None",
                   tenant: TenantSpec | None):
        return (ar.request.arrival_s, ar.request.rid)


class PrioritySlack(SchedulingPolicy):
    """Evict low priority first, then the most SLO slack."""

    name = "priority_slack"
    reorders_queue = True

    def victim_key(self, ar: "ActiveRequest", clock: float,
                   record: "RequestRecord | None",
                   tenant: TenantSpec | None):
        priority = tenant.priority if tenant is not None else 0
        return (-priority, self._slack_s(ar, clock, record, tenant),
                ar.request.arrival_s, ar.request.rid)

    def queue_key(self, req: "Request", tenant: TenantSpec | None):
        priority = tenant.priority if tenant is not None else 0
        return (-priority, req.arrival_s, req.rid)

    @staticmethod
    def _slack_s(ar: "ActiveRequest", clock: float,
                 record: "RequestRecord | None",
                 tenant: TenantSpec | None) -> float:
        """Seconds until the request's next deadline (inf = no SLO)."""
        if tenant is None:
            return _INF
        if not ar.prefilled:
            if tenant.ttft_slo_s is None:
                return _INF
            return ar.request.arrival_s + tenant.ttft_slo_s - clock
        if tenant.tpot_slo_s is None:
            return _INF
        first = (record.first_token_s if record is not None
                 and record.first_token_s is not None else clock)
        pace_tokens = max(ar.request.output_tokens - 1, 0)
        return first + tenant.tpot_slo_s * pace_tokens - clock


#: Scheduler names accepted by :func:`make_scheduler` (and the
#: ``serving.scheduler`` spec field / ``--scheduler`` flag).
SCHEDULER_NAMES = ("youngest_first", "priority_slack")


def make_scheduler(name: str) -> SchedulingPolicy:
    """Build a scheduling policy from its registry name."""
    if name == "youngest_first":
        return YoungestFirst()
    if name == "priority_slack":
        return PrioritySlack()
    known = ", ".join(SCHEDULER_NAMES)
    raise ConfigError(f"unknown scheduler {name!r}; known: {known}")


@dataclass
class TokenBucket:
    """Continuously refilled token bucket (starts full)."""

    rate: float                     # tokens per second
    capacity: float
    tokens: float = 0.0
    clock_s: float = 0.0

    def __post_init__(self) -> None:
        self.tokens = self.capacity

    def refill(self, clock: float) -> None:
        if clock > self.clock_s:
            self.tokens = min(self.capacity,
                              self.tokens + self.rate
                              * (clock - self.clock_s))
            self.clock_s = clock

    def try_charge(self, clock: float, amount: float) -> bool:
        self.refill(clock)
        if amount <= self.tokens + _BUCKET_EPS:
            self.tokens -= amount
            return True
        return False

    def charge_time_s(self, clock: float, amount: float) -> float:
        """Earliest clock at which ``amount`` tokens are available."""
        self.refill(clock)
        if amount <= self.tokens + _BUCKET_EPS:
            return clock
        return clock + (amount - self.tokens) / self.rate + _BUCKET_EPS


class AdmissionGate:
    """Per-tenant token-rate admission control.

    One :class:`TokenBucket` per rate-limited tenant; tenants without
    a limit pass through untouched.  The gate is per-run state — the
    engine builds a fresh one for every trace it serves.
    """

    def __init__(self, tenants: "Mapping[str, TenantSpec]") -> None:
        self._buckets: dict[str, TokenBucket] = {}
        for name, tenant in tenants.items():
            capacity = tenant.bucket_capacity
            if tenant.token_rate_limit is not None and capacity:
                self._buckets[name] = TokenBucket(
                    rate=float(tenant.token_rate_limit),
                    capacity=capacity)

    def __bool__(self) -> bool:
        return bool(self._buckets)

    def admissible(self, req: "Request") -> bool:
        """Can ``req`` *ever* be admitted (fits the bucket capacity)?"""
        bucket = self._buckets.get(req.tenant)
        return (bucket is None
                or req.total_tokens <= bucket.capacity + _BUCKET_EPS)

    def try_admit(self, clock: float, req: "Request") -> bool:
        """Charge ``req``'s tokens if its tenant's bucket allows."""
        bucket = self._buckets.get(req.tenant)
        if bucket is None:
            return True
        return bucket.try_charge(clock, float(req.total_tokens))

    def next_admit_s(self, clock: float, req: "Request") -> float | None:
        """When ``req`` could next pass the gate; ``None`` = now (or
        never — callers screen :meth:`admissible` at arrival)."""
        bucket = self._buckets.get(req.tenant)
        if bucket is None or not self.admissible(req):
            return None
        when_s = bucket.charge_time_s(clock, float(req.total_tokens))
        return when_s if when_s > clock else None
