"""Step composition policies: continuous, chunked-prefill and static.

A *step* is one full-model forward.  The batcher decides, at each step
boundary, which waiting requests to admit (prefill) and which running
requests advance by one token (decode):

* :class:`ContinuousBatcher` — vLLM/Orca-style iteration-level
  scheduling: every running request decodes each step, and new requests
  are admitted the moment the token budget and device memory allow,
  mixing prefill and decode work in one step;
* :class:`ChunkedPrefillBatcher` — continuous batching where long
  prompts are *split across steps* under the token budget instead of
  running alone: a 2k-token prompt no longer waits for an idle engine,
  it streams in beside the running decodes one chunk at a time;
* :class:`StaticBatcher` — the classic baseline: collect a fixed batch,
  run it to completion, admit nothing in between.  Short requests wait
  for the stragglers (the convoy effect continuous batching removes).

Admission charges device memory through a
:class:`~repro.moe.memory_model.MemoryLedger` — either the conservative
peak-reserving :class:`~repro.moe.memory_model.KVCacheTracker` or the
paged :class:`~repro.moe.memory_model.BlockAllocator`, which charges
only live blocks — so the concurrency ceiling per engine emerges from
the Table-3 memory model rather than a configured limit.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ConfigError
from repro.moe.memory_model import DeviceLedgers, MemoryLedger
from repro.workloads.traces import Request

#: Batchers speak the shared admission interface: a single-device
#: ledger or the per-device composite of a multi-GPU grid.
LedgerLike = MemoryLedger | DeviceLedgers


@dataclass(eq=False)
class ActiveRequest:
    """A request resident in device memory (admitted, not finished).

    ``eq=False``: residency is identity.  Exactly one ActiveRequest
    exists per admitted rid, and the serving loops remove it from the
    ``running`` list thousands of times per second — identity
    comparison keeps ``list.remove`` a C-level pointer scan instead of
    a field-by-field dataclass ``__eq__`` against every resident
    request.
    """

    request: Request
    admitted_s: float
    generated: int = 0
    prefilled: bool = False
    prefilled_tokens: int = 0

    @property
    def context_tokens(self) -> int:
        """Current KV-cache length of this request."""
        return self.prefilled_tokens + self.generated

    @property
    def finished(self) -> bool:
        return self.generated >= self.request.output_tokens


@dataclass(frozen=True)
class PrefillChunk:
    """One step's slice of a request's prompt (chunked prefill)."""

    ar: ActiveRequest
    tokens: int
    offset: int                  # KV tokens resident before this chunk

    @property
    def completes(self) -> bool:
        """Does this chunk finish the prompt (emitting token one)?"""
        return self.offset + self.tokens >= self.ar.request.prompt_tokens


@dataclass(frozen=True)
class StepPlan:
    """Work selected for one engine step."""

    prefill: tuple[ActiveRequest, ...] = ()
    decode: tuple[ActiveRequest, ...] = ()
    chunks: tuple[PrefillChunk, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.prefill and not self.decode and not self.chunks

    # The token totals are pure functions of the (frozen) membership
    # tuples, and the serving hot path reads them several times per
    # step (pricing signature, metrics sample), so they memoise on the
    # instance.  ``cached_property`` writes the instance ``__dict__``
    # directly, which a frozen dataclass permits; equality and hashing
    # still compare only the declared fields.
    @cached_property
    def prefill_tokens(self) -> int:
        return (sum(ar.request.prompt_tokens for ar in self.prefill)
                + sum(chunk.tokens for chunk in self.chunks))

    @property
    def decode_tokens(self) -> int:
        return len(self.decode)

    @cached_property
    def total_tokens(self) -> int:
        """New tokens traversing the MoE layer this step."""
        return self.prefill_tokens + self.decode_tokens


class Batcher(abc.ABC):
    """Step-composition policy interface."""

    name: str = "batcher"

    #: Per-tenant token-rate admission gate
    #: (:class:`repro.serve.scheduling.AdmissionGate`), set by the
    #: engine at run start; ``None`` (single-tenant / unthrottled
    #: runs) keeps admission exactly as before.
    admission_gate = None

    @abc.abstractmethod
    def plan_step(self, clock: float, waiting: "deque[Request]",
                  running: list[ActiveRequest], tracker: LedgerLike,
                  more_arrivals: bool) -> StepPlan:
        """Select this step's work; admits from ``waiting`` in place."""

    def _admit(self, clock: float, waiting: "deque[Request]",
               tracker: LedgerLike) -> ActiveRequest | None:
        """Admit the head of the queue if the ledger accepts it whole.

        Memory is checked before the rate gate so a memory-deferred
        request never consumes its tenant's bucket tokens; the gate
        charge happens exactly once, at actual admission.
        """
        req = waiting[0]
        if not tracker.can_admit_request(req.prompt_tokens,
                                         req.total_tokens):
            return None
        if (self.admission_gate is not None
                and not self.admission_gate.try_admit(clock, req)):
            return None                   # rate-throttled: retry later
        waiting.popleft()
        tracker.admit(req.rid, req.prompt_tokens, req.total_tokens)
        return ActiveRequest(request=req, admitted_s=clock)


@dataclass
class BudgetedBatcher(Batcher):
    """Shared knobs of the token-budgeted policies.

    ``token_budget`` bounds the *new* tokens packed into one step
    (prompt tokens for prefill, one per decode); decode work is never
    throttled — running requests always advance, the budget only limits
    how much prefill is mixed in alongside them.  ``max_running``
    optionally caps resident requests below the memory-derived limit.
    """

    token_budget: int = 4096
    max_running: int | None = None

    def __post_init__(self) -> None:
        if self.token_budget <= 0:
            raise ConfigError("token_budget must be positive")
        if self.max_running is not None and self.max_running <= 0:
            raise ConfigError("max_running must be positive")


@dataclass
class ContinuousBatcher(BudgetedBatcher):
    """Iteration-level scheduling under a per-step token budget."""

    name: str = field(default="continuous", init=False)

    def plan_step(self, clock: float, waiting: "deque[Request]",
                  running: list[ActiveRequest], tracker: LedgerLike,
                  more_arrivals: bool) -> StepPlan:
        decode = tuple(running)
        budget = self.token_budget - len(decode)
        prefill: list[ActiveRequest] = []
        while waiting:
            resident = len(decode) + len(prefill)
            if (self.max_running is not None
                    and resident >= self.max_running):
                break
            prompt_tokens = waiting[0].prompt_tokens
            oversized = prompt_tokens > self.token_budget
            if prompt_tokens > budget \
                    and not (oversized and resident == 0):
                # Budget exhausted — except an over-budget prompt on an
                # otherwise idle engine, which must run alone or starve.
                break
            admitted = self._admit(clock, waiting, tracker)
            if admitted is None:
                break                     # memory-bound: retry next step
            prefill.append(admitted)
            budget -= prompt_tokens
        return StepPlan(prefill=tuple(prefill), decode=decode)


@dataclass
class ChunkedPrefillBatcher(BudgetedBatcher):
    """Iteration-level scheduling with prompts split across steps.

    Decode work is never throttled; the leftover token budget each step
    is filled with prompt *chunks* (Sarathi/vLLM-style chunked prefill).
    At most one request is mid-prefill at a time (FCFS): its next chunk
    is sized by the leftover budget and — on a paged ledger — by the
    blocks actually free, so admission charges only live blocks rather
    than a request's peak footprint.  A request whose last chunk runs
    this step emits its first token this step.

    Newly admitted requests are appended to ``running`` immediately
    (``prefilled`` stays ``False`` until the prompt completes), so
    partially-prefilled KV survives across steps.
    """

    name: str = field(default="chunked", init=False)

    def plan_step(self, clock: float, waiting: "deque[Request]",
                  running: list[ActiveRequest], tracker: LedgerLike,
                  more_arrivals: bool) -> StepPlan:
        decode = tuple(ar for ar in running if ar.prefilled)
        budget = self.token_budget - len(decode)
        chunks: list[PrefillChunk] = []
        partial = next((ar for ar in running if not ar.prefilled), None)
        in_flight = partial is not None
        if partial is not None and budget > 0:
            remaining_tokens = (partial.request.prompt_tokens
                                - partial.prefilled_tokens)
            grant = tracker.clamp_growth(partial.request.rid,
                                         min(budget, remaining_tokens))
            if grant > 0:
                tracker.grow(partial.request.rid, grant)
                chunks.append(PrefillChunk(
                    ar=partial, tokens=grant,
                    offset=partial.prefilled_tokens))
                budget -= grant
                in_flight = grant < remaining_tokens
        while budget > 0 and waiting and not in_flight:
            if (self.max_running is not None
                    and len(running) >= self.max_running):
                break
            req = waiting[0]
            first = tracker.admission_chunk(
                min(budget, req.prompt_tokens), req.total_tokens)
            if first <= 0:
                break                     # memory-bound: retry next step
            if (self.admission_gate is not None
                    and not self.admission_gate.try_admit(clock, req)):
                break                     # rate-throttled: retry later
            waiting.popleft()
            tracker.admit(req.rid, 0, req.total_tokens)
            tracker.grow(req.rid, first)
            ar = ActiveRequest(request=req, admitted_s=clock)
            running.append(ar)
            chunks.append(PrefillChunk(ar=ar, tokens=first, offset=0))
            budget -= first
            in_flight = first < req.prompt_tokens
        return StepPlan(decode=decode, chunks=tuple(chunks))


@dataclass
class StaticBatcher(Batcher):
    """Fixed-size batches run to completion (the convoy baseline)."""

    batch_size: int = 8

    name: str = field(default="static", init=False)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")

    def plan_step(self, clock: float, waiting: "deque[Request]",
                  running: list[ActiveRequest], tracker: LedgerLike,
                  more_arrivals: bool) -> StepPlan:
        if running:
            return StepPlan(decode=tuple(running))
        if len(waiting) < self.batch_size and more_arrivals:
            return StepPlan()             # wait for the batch to fill
        prefill: list[ActiveRequest] = []
        while waiting and len(prefill) < self.batch_size:
            admitted = self._admit(clock, waiting, tracker)
            if admitted is None:
                break
            prefill.append(admitted)
        return StepPlan(prefill=tuple(prefill))


#: Policy names accepted by :func:`make_batcher` (and the ``batcher``
#: field of :class:`repro.api.ServingSpec` / the ``--batcher`` flag).
BATCHER_NAMES = ("continuous", "chunked", "static")


def make_batcher(name: str, *, token_budget: int = 4096,
                 batch_size: int = 8,
                 max_running: int | None = None) -> Batcher:
    """Build a batching policy from its registry name.

    The single construction path shared by the CLI and the declarative
    deployment API: ``token_budget``/``max_running`` configure the
    budgeted policies, ``batch_size`` the static one; knobs that do not
    apply to the chosen policy are ignored.
    """
    if name == "continuous":
        return ContinuousBatcher(token_budget=token_budget,
                                 max_running=max_running)
    if name == "chunked":
        return ChunkedPrefillBatcher(token_budget=token_budget,
                                     max_running=max_running)
    if name == "static":
        return StaticBatcher(batch_size=batch_size)
    known = ", ".join(BATCHER_NAMES)
    raise ConfigError(f"unknown batcher {name!r}; known: {known}")
