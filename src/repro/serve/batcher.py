"""Step composition policies: continuous vs static batching.

A *step* is one full-model forward.  The batcher decides, at each step
boundary, which waiting requests to admit (prefill) and which running
requests advance by one token (decode):

* :class:`ContinuousBatcher` — vLLM/Orca-style iteration-level
  scheduling: every running request decodes each step, and new requests
  are admitted the moment the token budget and device memory allow,
  mixing prefill and decode work in one step;
* :class:`StaticBatcher` — the classic baseline: collect a fixed batch,
  run it to completion, admit nothing in between.  Short requests wait
  for the stragglers (the convoy effect continuous batching removes).

Admission charges each request's peak footprint against the
:class:`~repro.moe.memory_model.KVCacheTracker`, so the concurrency
ceiling per engine emerges from the Table-3 memory model rather than a
configured limit.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.moe.memory_model import KVCacheTracker
from repro.serve.request import Request


@dataclass
class ActiveRequest:
    """A request resident in device memory (admitted, not finished)."""

    request: Request
    admitted_s: float
    generated: int = 0
    prefilled: bool = False

    @property
    def context_tokens(self) -> int:
        """Current KV-cache length of this request."""
        return self.request.prompt_tokens + self.generated

    @property
    def finished(self) -> bool:
        return self.generated >= self.request.output_tokens


@dataclass(frozen=True)
class StepPlan:
    """Work selected for one engine step."""

    prefill: tuple[ActiveRequest, ...] = ()
    decode: tuple[ActiveRequest, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.prefill and not self.decode

    @property
    def prefill_tokens(self) -> int:
        return sum(ar.request.prompt_tokens for ar in self.prefill)

    @property
    def decode_tokens(self) -> int:
        return len(self.decode)

    @property
    def total_tokens(self) -> int:
        """New tokens traversing the MoE layer this step."""
        return self.prefill_tokens + self.decode_tokens


class Batcher(abc.ABC):
    """Step-composition policy interface."""

    name: str = "batcher"

    @abc.abstractmethod
    def plan_step(self, clock: float, waiting: "deque[Request]",
                  running: list[ActiveRequest], tracker: KVCacheTracker,
                  more_arrivals: bool) -> StepPlan:
        """Select this step's work; admits from ``waiting`` in place."""

    def _admit(self, clock: float, waiting: "deque[Request]",
               tracker: KVCacheTracker) -> ActiveRequest | None:
        """Admit the head of the queue if its peak footprint fits."""
        req = waiting[0]
        if not tracker.can_admit(req.total_tokens):
            return None
        waiting.popleft()
        tracker.admit(req.rid, req.prompt_tokens, req.total_tokens)
        return ActiveRequest(request=req, admitted_s=clock)


@dataclass
class ContinuousBatcher(Batcher):
    """Iteration-level scheduling under a per-step token budget.

    ``token_budget`` bounds the *new* tokens packed into one step
    (prompt tokens for prefill, one per decode); decode work is never
    throttled — running requests always advance, the budget only limits
    how much prefill is mixed in alongside them.  ``max_running``
    optionally caps resident requests below the memory-derived limit.
    """

    token_budget: int = 4096
    max_running: int | None = None

    name: str = field(default="continuous", init=False)

    def __post_init__(self) -> None:
        if self.token_budget <= 0:
            raise ConfigError("token_budget must be positive")
        if self.max_running is not None and self.max_running <= 0:
            raise ConfigError("max_running must be positive")

    def plan_step(self, clock: float, waiting: "deque[Request]",
                  running: list[ActiveRequest], tracker: KVCacheTracker,
                  more_arrivals: bool) -> StepPlan:
        decode = tuple(running)
        budget = self.token_budget - len(decode)
        prefill: list[ActiveRequest] = []
        while waiting:
            resident = len(decode) + len(prefill)
            if (self.max_running is not None
                    and resident >= self.max_running):
                break
            prompt = waiting[0].prompt_tokens
            oversized = prompt > self.token_budget
            if prompt > budget and not (oversized and resident == 0):
                # Budget exhausted — except an over-budget prompt on an
                # otherwise idle engine, which must run alone or starve.
                break
            admitted = self._admit(clock, waiting, tracker)
            if admitted is None:
                break                     # memory-bound: retry next step
            prefill.append(admitted)
            budget -= prompt
        return StepPlan(prefill=tuple(prefill), decode=decode)


@dataclass
class StaticBatcher(Batcher):
    """Fixed-size batches run to completion (the convoy baseline)."""

    batch_size: int = 8

    name: str = field(default="static", init=False)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")

    def plan_step(self, clock: float, waiting: "deque[Request]",
                  running: list[ActiveRequest], tracker: KVCacheTracker,
                  more_arrivals: bool) -> StepPlan:
        if running:
            return StepPlan(decode=tuple(running))
        if len(waiting) < self.batch_size and more_arrivals:
            return StepPlan()             # wait for the batch to fill
        prefill: list[ActiveRequest] = []
        while waiting and len(prefill) < self.batch_size:
            admitted = self._admit(clock, waiting, tracker)
            if admitted is None:
                break
            prefill.append(admitted)
        return StepPlan(prefill=tuple(prefill))
