"""Disaggregated prefill/decode serving engine.

One shared event calendar drives N independent pools: each pool has
its own :class:`~repro.context.ExecutionContext` (engine, device,
parallel plan), batcher, :class:`~repro.serve.costs.StepPricer` and
memory ledger, but all pools share the clock, the arrival stream and
the metrics collector.  The per-pool building blocks are borrowed from
:class:`~repro.serve.engine.ServingEngine` — one classic engine is
constructed per pool and used for its ledger/pricer/batcher setup —
while the event loop here adds what colocated serving cannot express:

* **Routing** — a :class:`~repro.serve.disagg.routers.RouterPolicy`
  assigns each arrival to a prefill-capable pool, and each finished
  prompt to a decode-capable pool.  Candidates are always presented in
  stable name order, so equal-load ties resolve by ``(pool_name, rid)``
  and a run is byte-reproducible under any executor layout.
* **KV migration** — when a prompt finishes prefilling on a pool that
  does not serve decode, its KV state (all layers of the context at
  prefill completion) crosses the inter-pool link: the destination
  ledger is charged at transfer start, a
  :class:`~repro.serve.events.KVTransfer` fires after the link's
  alpha-beta cost, and its handler releases the source ledger and
  starts the request decoding on the destination.  During the window
  the request is resident on *both* ledgers; the sim-sanitizer's
  conservation invariant checks that the bytes released at the source
  equal the bytes charged at the destination and that residency is
  single-pool once the transfer completes.
* **Cross-pool preemption** — a decode-pool eviction cannot recompute
  locally (the pool never prefills); the victim is re-routed to a
  prefill-capable pool for recompute, keeping vLLM-style recompute
  semantics end to end.

A degenerate cluster (one pool serving both phases) never migrates;
the deployment layer runs it through the classic colocated engine so
its report stays byte-identical to a pool-free config.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.sanitizer import (
    KVTransferAuditor,
    SanitizedEventManager,
    wrap_ledger,
)
from repro.errors import CapacityError, ConfigError, InternalError
from repro.hw.interconnect import ClusterSpec, LinkSpec
from repro.moe.memory_model import kv_cache_bytes
from repro.registry.selector import AutoEngine
from repro.serve.batcher import ActiveRequest, StepPlan
from repro.serve.disagg.pools import DisaggCluster, PoolSpec
from repro.serve.disagg.routers import make_router
from repro.serve.engine import ServingEngine
from repro.serve.events import (
    Arrival,
    EventKind,
    EventManager,
    HorizonExpired,
    KVTransfer,
    Preempt,
    RateRefill,
    StepComplete,
)
from repro.serve.metrics import (
    MetricsCollector,
    PercentileSummary,
    RequestRecord,
    ServeReport,
    StepSample,
    summarise,
)
from repro.serve.scheduling import AdmissionGate
from repro.workloads.traces import Request, validate_trace


@dataclass(frozen=True)
class PoolStepComplete(StepComplete):
    """A :class:`StepComplete` attributed to one named pool.

    Same event kind (and therefore the same heap tie-break position)
    as the colocated step completion; the ``pool`` field lets the
    shared calendar dispatch the plan back to the pool that planned
    it.  Two pools completing at the same instant order by push
    sequence, which is deterministic because planning iterates pools
    in stable name order.
    """

    pool: str = ""


class _PoolState:
    """Per-run mutable state of one pool (queues, ledger, stats)."""

    def __init__(self, spec: PoolSpec, engine: ServingEngine,
                 ledger, raw_ledger) -> None:
        self.spec = spec
        self.engine = engine
        self.name = spec.name
        self.ledger = ledger
        self.raw_ledger = raw_ledger
        self.waiting: deque[Request] = deque()
        self.running: list[ActiveRequest] = []
        self.in_flight: list[StepPlan] = []
        #: Requests mid-transfer *out* of this pool: their KV bytes are
        #: still charged here until the transfer completes.
        self.outbound: dict[int, ActiveRequest] = {}
        #: Decode tokens en route to this pool by migration (load
        #: signal for the routers; settled when the transfer lands).
        self.inbound_tokens = 0
        self.steps = 0
        self.busy_s = 0.0
        self.comm_s = 0.0
        self.prefills = 0
        self.finished = 0
        self.ttft_values: list[float] = []
        self.tpot_values: list[float] = []
        self.peak_util = 0.0

    @property
    def outstanding_tokens(self) -> int:
        """Router load signal: queued + still-to-generate + inbound."""
        tokens = sum(r.total_tokens for r in self.waiting)
        tokens += sum(max(ar.request.total_tokens - ar.context_tokens, 0)
                      for ar in self.running)
        return tokens + self.inbound_tokens


class DisaggServingEngine:
    """Event-calendar server over disaggregated prefill/decode pools.

    Construction takes a validated :class:`DisaggCluster` plus one
    classic :class:`ServingEngine` per pool (built by the deployment
    layer with the pool's context/batcher overrides); those engines
    are never ``run()`` — they supply the per-pool ledger factory,
    pricer and batcher, so every cost and admission decision is priced
    by exactly the same stack as colocated serving.
    """

    def __init__(self, cluster: DisaggCluster,
                 pool_engines: Sequence[ServingEngine], *,
                 router: str = "round_robin",
                 horizon_s: float | None = None,
                 report_engine: str | None = None,
                 report_gpu: str | None = None,
                 report_batcher: str | None = None) -> None:
        if len(cluster.pools) != len(pool_engines):
            raise InternalError(
                f"{len(cluster.pools)} pools but "
                f"{len(pool_engines)} pool engines")
        if cluster.is_degenerate:
            raise ConfigError(
                "degenerate single-pool cluster: run the colocated "
                "ServingEngine instead (the deployment layer does "
                "this automatically)")
        self.cluster = cluster
        self.router = router
        make_router(router)            # fail fast on unknown names
        self.horizon_s = horizon_s
        if horizon_s is not None and horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        self._engines = list(pool_engines)
        first = self._engines[0]
        for spec, eng in zip(cluster.pools, self._engines):
            if eng.ctx.config.name != first.ctx.config.name:
                raise ConfigError(
                    f"pool {spec.name!r} serves model "
                    f"{eng.ctx.config.name!r} but pool "
                    f"{cluster.pools[0].name!r} serves "
                    f"{first.ctx.config.name!r}; all pools must share "
                    f"one model")
            if eng.page_size != first.page_size:
                raise ConfigError(
                    f"pool {spec.name!r} page_size {eng.page_size!r} "
                    f"differs from {first.page_size!r}; a shared KV "
                    f"page layout is what makes transfers exact")
            if eng._layers != first._layers:
                raise ConfigError(
                    f"pool {spec.name!r} num_layers differs; all "
                    f"pools must serve the same stack depth")
            if tuple(eng.tenants) != tuple(first.tenants):
                raise InternalError(
                    f"pool {spec.name!r} was built with different "
                    f"tenants")
            if eng.scheduler != first.scheduler:
                raise InternalError(
                    f"pool {spec.name!r} was built with a different "
                    f"scheduler")
            if eng._sanitize != first._sanitize:
                raise InternalError(
                    f"pool {spec.name!r} was built with a different "
                    f"sanitize setting")
        self._sanitize = first._sanitize
        self._link: LinkSpec = cluster.link
        self._report_engine = report_engine or first.ctx.engine.name
        self._report_batcher = report_batcher or first.batcher.name
        if report_gpu is None:
            gpus: list = []
            for spec, eng in zip(cluster.pools, self._engines):
                gpus.extend([eng.ctx.spec] * spec.num_devices)
            report_gpu = ClusterSpec(gpus=tuple(gpus),
                                     link=self._link).describe()
        self._report_gpu = report_gpu

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(self, trace: Sequence[Request],
            max_steps: int = 1_000_000) -> ServeReport:
        """Serve ``trace`` across the pools and summarise the run."""
        validate_trace(trace)
        first = self._engines[0]
        config = first.ctx.config
        layers = first._layers
        records = {req.rid: RequestRecord(req) for req in trace}
        collector = MetricsCollector()
        manager = (SanitizedEventManager() if self._sanitize
                   else EventManager())
        queue = manager.queue
        policy = first._policy
        table = first._tenant_table
        router = make_router(self.router)
        auditor = KVTransferAuditor() if self._sanitize else None

        states: list[_PoolState] = []
        for spec, eng in zip(self.cluster.pools, self._engines):
            eng._step_comm_s = 0.0
            raw = eng._make_ledger()
            ledger = wrap_ledger(raw) if self._sanitize else raw
            states.append(_PoolState(spec, eng, ledger, raw))
        by_name = {st.name: st for st in states}
        # Stable name order everywhere scheduling iterates pools: the
        # deterministic half of the ``(pool_name, rid)`` tie-break.
        sched = sorted(states, key=lambda s: s.name)
        prefill_states = [st for st in sched if st.spec.serves_prefill]
        decode_states = [st for st in sched if st.spec.serves_decode]

        gate = AdmissionGate(table) if table else None
        if gate is not None and not gate:
            gate = None
        for st in states:
            st.engine.batcher.admission_gate = gate

        for req in sorted(trace, key=lambda r: (r.arrival_s, r.rid)):
            queue.push(Arrival(when=req.arrival_s, request=req))
        if self.horizon_s is not None:
            queue.push(HorizonExpired(when=self.horizon_s))

        steps = 0
        #: rid -> (active request, source pool, destination pool) of
        #: every KV transfer currently on the wire.
        migrating: dict[int, tuple[ActiveRequest, _PoolState,
                                   _PoolState]] = {}
        #: Migrations blocked on destination admission, retried in
        #: stable (arrival_s, rid) order whenever capacity frees.
        pending: list[tuple[ActiveRequest, _PoolState]] = []
        transfer_seconds: dict[int, float] = {}
        transfer_stats = {"transfers": 0, "bytes": 0.0, "seconds": 0.0}
        auto_counts: dict[str, dict[str, int]] = {}

        def victim_key(ar: ActiveRequest):
            return policy.victim_key(ar, manager.clock,
                                     records.get(ar.request.rid),
                                     table.get(ar.request.tenant))

        def evict(st: _PoolState, victim: ActiveRequest,
                  evicted: set[int]) -> None:
            """Preempt ``victim`` from ``st`` for recompute.

            A prefill-capable pool requeues locally (the colocated
            semantics); a decode-only pool cannot recompute, so the
            victim re-routes to a prefill pool's queue head.
            """
            st.ledger.release(victim.request.rid)
            st.running.remove(victim)
            req = victim.request
            if st.spec.serves_prefill:
                st.waiting.appendleft(req)
            else:
                home = router.select(prefill_states, req,
                                     table.get(req.tenant), "prefill")
                home.waiting.appendleft(req)
            evicted.add(req.rid)
            manager.emit(Preempt(when=manager.clock,
                                 victim_rid=req.rid,
                                 tenant=req.tenant))

        def grow(st: _PoolState, ar: ActiveRequest,
                 evicted: set[int]) -> bool:
            """One token of KV growth on ``st``'s ledger, preempting
            until it fits (see :meth:`ServingEngine._grow`)."""
            while True:
                try:
                    st.ledger.grow(ar.request.rid)
                    return True
                except CapacityError:
                    victim = max(st.running, key=victim_key)
                    if victim is ar and len(st.running) == 1:
                        if st.outbound:
                            # Bytes held by outbound transfers will
                            # free when they land; recompute later.
                            evict(st, ar, evicted)
                            return False
                        total_tokens = ar.request.total_tokens
                        raise CapacityError(
                            f"request {ar.request.rid} ({total_tokens} "
                            f"tokens) exceeds pool {st.name!r} memory "
                            f"even alone on {st.engine.ctx.spec.name} "
                            f"with {st.engine.ctx.engine.name}",
                            required_bytes=int(
                                st.ledger.peak_bytes(total_tokens)),
                            available_bytes=int(
                                st.ledger.budget_bytes
                                - st.ledger.static_bytes))
                    evict(st, victim, evicted)
                    if victim is ar:
                        return False

        def try_migrate(ar: ActiveRequest, src: _PoolState) -> bool:
            """Start ``ar``'s KV transfer out of ``src`` if some decode
            pool can admit it now; charge the destination and schedule
            the :class:`KVTransfer` completion."""
            req = ar.request
            dst = router.select(decode_states, req,
                                table.get(req.tenant), "decode")
            if not dst.ledger.can_admit_request(ar.context_tokens,
                                                req.total_tokens):
                return False
            if auditor is not None:
                live0_bytes = dst.ledger.live_bytes
            dst.ledger.admit(req.rid, ar.context_tokens,
                             req.total_tokens)
            if auditor is not None:
                # Full-model KV bytes: the cluster live-bytes sum is
                # ep x the model's KV (tp shards cancel in the sum).
                auditor.transfer_started(
                    req.rid, src.name, dst.name,
                    charged_bytes=((dst.ledger.live_bytes - live0_bytes)
                                   / dst.spec.plan.ep))
            nbytes = kv_cache_bytes(config, ar.context_tokens) * layers
            transfer_s = self._link.transfer_seconds(nbytes)
            queue.push(KVTransfer(when=manager.clock + transfer_s,
                                  transfer_rid=req.rid,
                                  src_pool=src.name, dst_pool=dst.name,
                                  nbytes=nbytes, transfer_s=transfer_s))
            migrating[req.rid] = (ar, src, dst)
            src.outbound[req.rid] = ar
            dst.inbound_tokens += max(req.total_tokens
                                      - ar.context_tokens, 0)
            return True

        def retry_migrations() -> None:
            if not pending:
                return
            blocked = sorted(pending,
                             key=lambda item: (item[0].request.arrival_s,
                                               item[0].request.rid))
            pending.clear()
            for ar, src in blocked:
                if not try_migrate(ar, src):
                    pending.append((ar, src))

        # -- handlers ---------------------------------------------------
        def on_arrival(event: Arrival) -> None:
            req = event.request
            if gate is not None and not gate.admissible(req):
                collector.reject(req.tenant)
                return
            home = router.select(prefill_states, req,
                                 table.get(req.tenant), "prefill")
            home.waiting.append(req)

        def on_preempt(event: Preempt) -> None:
            collector.preempt(event.tenant)

        def on_horizon(event: HorizonExpired) -> None:
            manager.stop()

        def on_rate_refill(event: RateRefill) -> None:
            pass

        def on_kv_transfer(event: KVTransfer) -> None:
            rid = event.transfer_rid
            ar, src, dst = migrating.pop(rid)
            del src.outbound[rid]
            if auditor is not None:
                live0_bytes = src.ledger.live_bytes
            src.ledger.release(rid)
            if auditor is not None:
                auditor.transfer_completed(
                    rid,
                    released_bytes=((live0_bytes - src.ledger.live_bytes)
                                    / src.spec.plan.ep),
                    src_ledger=src.ledger, dst_ledger=dst.ledger)
            dst.running.append(ar)
            dst.inbound_tokens -= max(ar.request.total_tokens
                                      - ar.context_tokens, 0)
            transfer_seconds[rid] = (transfer_seconds.get(rid, 0.0)
                                     + event.transfer_s)
            transfer_stats["transfers"] += 1
            transfer_stats["bytes"] += event.nbytes
            transfer_stats["seconds"] += event.transfer_s
            # The source just freed KV bytes: blocked migrations out of
            # other pools may now fit elsewhere, and blocked *local*
            # admissions retry at the next planning pass.
            retry_migrations()

        def on_step_complete(event: StepComplete) -> None:
            if not isinstance(event, PoolStepComplete):
                raise InternalError(
                    "disagg calendar received an unpooled StepComplete")
            st = by_name[event.pool]
            plan = st.in_flight.pop()
            clock = manager.clock
            st.busy_s += event.step_s
            st.comm_s += event.comm_s
            evicted: set[int] = set()
            st.running.extend(plan.prefill)
            for ar in sorted(plan.decode,
                             key=lambda a: (a.request.arrival_s,
                                            a.request.rid)):
                if ar.request.rid in evicted:
                    continue
                ar.generated += 1
                grow(st, ar, evicted)
            for ar in plan.prefill:            # prompt + first token
                record = records[ar.request.rid]
                if record.admitted_s is None:
                    record.admitted_s = ar.admitted_s
                if ar.request.rid in evicted:
                    continue
                st.prefills += 1
                if record.first_token_s is None:
                    record.first_token_s = clock
                    st.ttft_values.append(clock - ar.request.arrival_s)
                ar.prefilled = True
                ar.prefilled_tokens = ar.request.prompt_tokens
                ar.generated = 1
                grow(st, ar, evicted)
            for chunk in plan.chunks:          # chunked prefill slices
                ar = chunk.ar
                record = records[ar.request.rid]
                if record.admitted_s is None:
                    record.admitted_s = ar.admitted_s
                if ar.request.rid in evicted:
                    continue
                ar.prefilled_tokens += chunk.tokens
                if ar.prefilled_tokens >= ar.request.prompt_tokens:
                    ar.prefilled = True         # last chunk: token one
                    ar.generated = 1
                    st.prefills += 1
                    if record.first_token_s is None:
                        record.first_token_s = clock
                        st.ttft_values.append(
                            clock - ar.request.arrival_s)
                    grow(st, ar, evicted)
            if not st.spec.serves_decode:
                # Prompts that finished prefilling here must decode
                # elsewhere: start (or queue) their KV migration.
                movers = sorted(
                    (ar for ar in st.running
                     if ar.prefilled and not ar.finished),
                    key=lambda a: (a.request.arrival_s, a.request.rid))
                for ar in movers:
                    st.running.remove(ar)
                    if not try_migrate(ar, st):
                        pending.append((ar, st))
            manager.dispatch_due()
            util = st.ledger.pool_utilisation
            if util > st.peak_util:
                st.peak_util = util
            collector.observe(StepSample(
                clock_s=clock,
                queue_depth=len(st.waiting),
                running=st.ledger.active_requests,
                step_tokens=plan.total_tokens,
                live_bytes=st.ledger.live_bytes,
                reserved_bytes=st.ledger.reserved_bytes,
                pool_util=util,
                comm_s=event.comm_s,
                step_s=event.step_s,
            ))
            for ar in [ar for ar in st.running if ar.finished]:
                st.running.remove(ar)
                st.ledger.release(ar.request.rid)
                record = records[ar.request.rid]
                record.finished_s = clock
                collector.finish(record)
                st.finished += 1
                st.tpot_values.append(record.tpot_s)
            retry_migrations()

        manager.on(EventKind.ARRIVAL, on_arrival)
        manager.on(EventKind.PREEMPT, on_preempt)
        manager.on(EventKind.HORIZON_EXPIRED, on_horizon)
        manager.on(EventKind.STEP_COMPLETE, on_step_complete)
        manager.on(EventKind.RATE_REFILL, on_rate_refill)
        manager.on(EventKind.KV_TRANSFER, on_kv_transfer)

        while True:
            manager.dispatch_due()
            busy = (any(st.in_flight for st in sched)
                    or bool(migrating))
            if manager.stopped:
                if busy:
                    # In-flight steps and transfers complete fully; the
                    # stop flag only gates planning, as colocated.
                    manager.advance()
                    continue
                break
            work = (any(st.waiting or st.running for st in sched)
                    or queue.pending_arrivals or pending)
            if not busy and not work:
                break                   # trace fully served
            planned = False
            for st in sched:
                if st.in_flight or not (st.waiting or st.running):
                    continue
                if policy.reorders_queue and len(st.waiting) > 1:
                    ordered = sorted(
                        st.waiting,
                        key=lambda r: policy.queue_key(
                            r, table.get(r.tenant)))
                    st.waiting.clear()
                    st.waiting.extend(ordered)
                plan = st.engine.batcher.plan_step(
                    manager.clock, st.waiting, st.running, st.ledger,
                    bool(queue.pending_arrivals))
                if plan.empty:
                    continue
                steps += 1
                if steps > max_steps:
                    raise ConfigError(
                        f"exceeded {max_steps} steps; trace too large "
                        f"or pools starved")
                step_s, comm_s, winner = st.engine._pricer.price(plan)
                if winner is not None:
                    phase = ("prefill" if (plan.prefill or plan.chunks)
                             else "decode")
                    counts = auto_counts.setdefault(phase, {})
                    counts[winner] = counts.get(winner, 0) + 1
                st.in_flight.append(plan)
                st.steps += 1
                queue.push(PoolStepComplete(
                    when=manager.clock + step_s, step_s=step_s,
                    comm_s=comm_s, pool=st.name))
                planned = True
            if planned:
                continue
            if busy:
                if not manager.advance():
                    raise InternalError(
                        "disagg calendar stalled with work in flight")
                continue
            if queue.pending_arrivals:
                manager.advance()       # idle until the next arrival
                continue
            if gate is not None:
                woke = False
                for st in sched:
                    if not st.waiting:
                        continue
                    wake_s = gate.next_admit_s(manager.clock,
                                               st.waiting[0])
                    if wake_s is not None:
                        queue.push(RateRefill(when=wake_s))
                        woke = True
                if woke:
                    manager.advance()
                    continue
            head = self._stuck_request(sched, pending)
            raise CapacityError(
                f"request {head.rid} ({head.total_tokens} tokens) can "
                f"never be served by pools "
                f"{', '.join(st.name for st in sched)}")

        if self._sanitize and not manager.stopped:
            for st in states:
                st.ledger.assert_drained()
            if auditor is not None:
                auditor.assert_drained()
        return summarise(
            collector, engine=self._report_engine, model=config.name,
            gpu=self._report_gpu, batcher=self._report_batcher,
            num_requests=len(trace),
            auto=self._auto_report(auto_counts),
            tenants=first.tenants or None,
            all_records=list(records.values()),
            pools=self._pools_report(states),
            transfer=self._transfer_report(transfer_stats,
                                           transfer_seconds))

    # ------------------------------------------------------------------
    # Report sections
    # ------------------------------------------------------------------
    @staticmethod
    def _stuck_request(sched: Sequence[_PoolState],
                       pending: Sequence[tuple[ActiveRequest,
                                               _PoolState]]) -> Request:
        """The request to blame for a starved cluster: an unfinished
        partial prefill holds blocks; else a blocked migration; else
        the first waiting head."""
        for st in sched:
            for ar in st.running:
                if not ar.prefilled:
                    return ar.request
        if pending:
            return pending[0][0].request
        for st in sched:
            if st.waiting:
                return st.waiting[0]
        for st in sched:
            if st.running:
                return st.running[0].request
        raise InternalError("starved cluster with no stuck request")

    def _auto_report(self, auto_counts: dict[str, dict[str, int]]
                     ) -> dict[str, object] | None:
        """Aggregated auto-dispatch section over every auto pool."""
        if not any(isinstance(eng.ctx.engine, AutoEngine)
                   for eng in self._engines):
            return None
        selected = {
            phase: max(counts.items(), key=lambda kv: (kv[1], kv[0]))[0]
            for phase, counts in auto_counts.items()}
        return {"selected": selected,
                "steps": {phase: dict(counts)
                          for phase, counts in auto_counts.items()}}

    def _pools_report(self, states: Sequence[_PoolState]
                      ) -> dict[str, object]:
        """One block per pool, in declaration order."""
        section: dict[str, object] = {}
        for st in states:
            block: dict[str, object] = {
                "role": st.spec.role,
                "gpu": st.engine.ctx.spec.name,
                "engine": st.engine.ctx.engine.name,
                "batcher": st.engine.batcher.name,
                "devices": st.spec.num_devices,
                "steps": st.steps,
                "busy_s": st.busy_s,
                "comm_s": st.comm_s,
                "requests_prefilled": st.prefills,
                "requests_finished": st.finished,
                "peak_pool_utilisation": st.peak_util,
            }
            if st.spec.serves_prefill:
                block["ttft_s"] = (
                    PercentileSummary.from_values(st.ttft_values)
                    if st.ttft_values
                    else PercentileSummary.zero()).to_dict()
            if st.spec.serves_decode:
                block["tpot_s"] = (
                    PercentileSummary.from_values(st.tpot_values)
                    if st.tpot_values
                    else PercentileSummary.zero()).to_dict()
            section[st.name] = block
        return section

    def _transfer_report(self, stats: dict[str, float],
                         per_request: dict[int, float]
                         ) -> dict[str, object]:
        """KV-transfer section: link, totals and per-request seconds.

        ``per_request_s`` maps each migrated request id to its total
        transfer seconds (summed over recompute re-migrations), in
        rid order.
        """
        values = [per_request[rid] for rid in sorted(per_request)]
        return {
            "link": self._link.name,
            "transfers": int(stats["transfers"]),
            "requests": len(per_request),
            "bytes_total": stats["bytes"],
            "seconds_total": stats["seconds"],
            "seconds": (PercentileSummary.from_values(values)
                        if values
                        else PercentileSummary.zero()).to_dict(),
            "per_request_s": {str(rid): per_request[rid]
                              for rid in sorted(per_request)},
        }
