"""Pluggable request routers for disaggregated serving.

A :class:`RouterPolicy` decides which pool serves a request's next
phase: arrivals are routed to a prefill-capable pool, and on prefill
completion the request is routed again to a decode-capable pool (the
KV-transfer destination).  Policies live in the :data:`ROUTERS`
registry (``Registry[type[RouterPolicy]]``), listed by
``repro list routers`` and selected by ``serving.router`` /
``--router``.

Determinism contract
--------------------

Routing happens inside event handlers, so a router sees candidates in
a deterministic order and must break ties deterministically: the
engine hands it pools in **stable name order**, and every shipped
policy resolves equal-load ties by that order, so assignment is a pure
function of ``(pool_name, rid)`` history and reports are byte-identical
across runs (and across ``--jobs N`` executor layouts).  A router is
per-run state — the engine builds a fresh instance for every trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence

from repro.errors import ConfigError
from repro.registry.core import Registry

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.workloads.tenants import TenantSpec
    from repro.workloads.traces import Request

#: Routing phases a policy is asked about.
PHASES = ("prefill", "decode")

_INF = float("inf")


class PoolView(Protocol):
    """What a router may observe about one candidate pool."""

    @property
    def name(self) -> str: ...

    @property
    def outstanding_tokens(self) -> int:
        """Tokens queued, still to generate, or inbound by migration."""
        ...


class RouterPolicy:
    """Assigns each request phase to one pool of the candidate set.

    Subclasses implement :meth:`select`; candidates arrive in stable
    name order and are never empty.  Instances are per-run state
    (counters reset with the run), built via :func:`make_router`.
    """

    name: str = "router"

    def select(self, pools: "Sequence[PoolView]", req: "Request",
               tenant: "TenantSpec | None", phase: str):
        """Pick the pool serving ``req``'s ``phase`` (one of
        :data:`PHASES`)."""
        raise NotImplementedError


#: The router registry: policy *classes*, instantiated fresh per run.
ROUTERS: Registry[type] = Registry("router")


def register_router(cls: type) -> type:
    """Class decorator: register a policy under its ``name``."""
    ROUTERS.register(cls.name, cls)
    return cls


def make_router(name: str) -> RouterPolicy:
    """Fresh policy instance from its registry name."""
    cls = ROUTERS.get(name)
    return cls()


def router_names() -> list[str]:
    """Registered router names, sorted."""
    return ROUTERS.names()


@register_router
class RoundRobinRouter(RouterPolicy):
    """Cycle pools in name order, one counter per (phase, candidates).

    Load-blind but perfectly fair: request ``k`` of a phase lands on
    pool ``k mod n`` of the name-sorted candidate list, so assignment
    depends only on arrival order — the simplest policy that is
    byte-stable under any executor layout.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._counters: dict[tuple[str, tuple[str, ...]], int] = {}

    def select(self, pools, req, tenant, phase):
        key = (phase, tuple(p.name for p in pools))
        turn = self._counters.get(key, 0)
        self._counters[key] = turn + 1
        return pools[turn % len(pools)]


@register_router
class LeastOutstandingRouter(RouterPolicy):
    """Send each request to the pool with the fewest outstanding
    tokens (queued + still-to-generate + inbound migrations).

    The classic join-the-shortest-queue heuristic, measured in tokens
    rather than requests so one long prompt counts for what it costs.
    Equal loads resolve by pool name.
    """

    name = "least_outstanding_tokens"

    def select(self, pools, req, tenant, phase):
        return min(pools, key=lambda p: (p.outstanding_tokens, p.name))


@register_router
class SloSlackRouter(RouterPolicy):
    """SLO-aware placement: tight-deadline traffic gets the emptiest
    pool, best-effort traffic packs onto the busiest.

    A request whose tenant declares the phase's objective (``ttft_slo_s``
    for prefill routing, ``tpot_slo_s`` for decode routing) has slack
    to protect: it joins the least-outstanding pool.  A request with
    no objective is pure throughput: it packs onto the *most* loaded
    pool, keeping the emptiest one free for the next deadline-bound
    arrival.  Both halves tie-break by pool name.
    """

    name = "slo_slack"

    def select(self, pools, req, tenant, phase):
        if phase not in PHASES:
            raise ConfigError(
                f"unknown routing phase {phase!r}; known: "
                f"{', '.join(PHASES)}")
        slo_s = None
        if tenant is not None:
            slo_s = (tenant.ttft_slo_s if phase == "prefill"
                     else tenant.tpot_slo_s)
        if slo_s is not None:
            return min(pools,
                       key=lambda p: (p.outstanding_tokens, p.name))
        return min(pools,
                   key=lambda p: (-p.outstanding_tokens, p.name))
