"""Pool model for disaggregated prefill/decode serving.

A :class:`PoolSpec` names one GPU pool and the phase(s) it serves;
a :class:`DisaggCluster` validates a set of pools and partitions the
combined device topology into named slices.  Each pool runs its own
engine selection, :class:`~repro.hw.interconnect.ParallelPlan`,
batcher and memory ledger; finished prompts migrate from a
prefill-role pool to a decode-role pool over the cluster's inter-pool
link (priced by :meth:`~repro.hw.interconnect.LinkSpec.transfer_seconds`,
scheduled as :class:`~repro.serve.events.KVTransfer` events).

Validation follows the :class:`~repro.workloads.tenants.TenantSpec`
convention: field-level errors raise :class:`~repro.errors.ConfigError`
messages of the form ``field: problem`` so the declarative API layer
can prefix them with their config path (``serving.pools[i].field``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping, Sequence

from repro.errors import ConfigError
from repro.hw.interconnect import (
    ClusterSpec,
    LinkSpec,
    ParallelPlan,
    get_link,
    parse_parallel,
)
from repro.hw.spec import GPUSpec, get_gpu
from repro.moe.layers import ENGINES
from repro.serve.batcher import BATCHER_NAMES

#: Phase roles a pool can serve.  ``both`` is the colocated role: a
#: request that prefills on a ``both`` pool decodes there too (no
#: KV transfer), which is what makes the single-pool degenerate config
#: reduce exactly to the classic engine.
POOL_ROLES = ("prefill", "decode", "both")


@dataclass(frozen=True)
class PoolSpec:
    """One named GPU pool of a disaggregated deployment.

    Attributes:
        name: Pool identifier (unique across the deployment); carried
            by routing decisions, report sections and transfer events.
        role: Phase(s) served — ``prefill``, ``decode`` or ``both``.
        gpu: Device registry name; ``None`` inherits the deployment's
            ``hardware.gpu``.
        engine: Engine registry name for this pool; ``None`` inherits
            ``model.engine``.  Mixed pools (e.g. a sparse-tensor-core
            engine on prefill, a dense one on decode) are the point.
        parallel: Per-pool parallel plan in ``ep=4,tp=2`` syntax;
            ``None`` is the single-device identity plan.
        batcher: Step-composition policy; ``None`` inherits
            ``serving.batcher``.
        token_budget: Per-step token budget; ``None`` inherits.
        batch_size: Static-batcher batch size; ``None`` inherits.
        max_running: Admission concurrency cap; ``None`` inherits.
    """

    name: str
    role: str = "both"
    gpu: str | None = None
    engine: str | None = None
    parallel: str | None = None
    batcher: str | None = None
    token_budget: int | None = None
    batch_size: int | None = None
    max_running: int | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError("name: must be a non-empty string")
        if self.role not in POOL_ROLES:
            raise ConfigError(
                f"role: must be one of {', '.join(POOL_ROLES)}; "
                f"got {self.role!r}")
        for field_name in ("gpu", "engine", "parallel", "batcher"):
            value = getattr(self, field_name)
            if value is not None and (not isinstance(value, str)
                                      or not value):
                raise ConfigError(
                    f"{field_name}: must be a non-empty string, "
                    f"got {value!r}")
        if self.gpu is not None:
            try:
                get_gpu(self.gpu)
            except Exception as exc:
                raise ConfigError(f"gpu: {exc}") from exc
        if self.engine is not None:
            try:
                ENGINES.get(self.engine)
            except Exception as exc:
                raise ConfigError(f"engine: {exc}") from exc
        if self.parallel is not None:
            try:
                parse_parallel(self.parallel)
            except ConfigError as exc:
                raise ConfigError(f"parallel: {exc}") from exc
        if self.batcher is not None and self.batcher not in BATCHER_NAMES:
            raise ConfigError(
                f"batcher: must be one of {', '.join(BATCHER_NAMES)}; "
                f"got {self.batcher!r}")
        for field_name in ("token_budget", "batch_size", "max_running"):
            value = getattr(self, field_name)
            if value is None:
                continue
            if (not isinstance(value, int) or isinstance(value, bool)
                    or value <= 0):
                raise ConfigError(
                    f"{field_name}: must be a positive integer, "
                    f"got {value!r}")

    # -- phase capabilities --------------------------------------------
    @property
    def serves_prefill(self) -> bool:
        return self.role in ("prefill", "both")

    @property
    def serves_decode(self) -> bool:
        return self.role in ("decode", "both")

    @property
    def plan(self) -> ParallelPlan:
        """The pool's parallel plan (identity when unset)."""
        if self.parallel is None:
            return ParallelPlan()
        return parse_parallel(self.parallel)

    @property
    def num_devices(self) -> int:
        return self.plan.num_devices

    # -- wire format ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-type payload; :meth:`from_dict` inverts it exactly."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PoolSpec":
        """Build from a mapping, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise ConfigError(
                f"expected a mapping, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"{unknown[0]}: unknown field (known: "
                f"{', '.join(sorted(known))})")
        return cls(**dict(payload))


def validate_pools(pools: Sequence[PoolSpec]) -> None:
    """Cross-pool invariants of one disaggregated deployment.

    Pool names must be unique (they key report sections and transfer
    events), and the set must be able to serve *both* phases — at
    least one prefill-capable and one decode-capable pool — or every
    request would starve in one phase.
    """
    if not pools:
        raise ConfigError("pools: must declare at least one pool")
    names = [p.name for p in pools]
    if len(set(names)) != len(names):
        dup = next(n for n in names if names.count(n) > 1)
        raise ConfigError(f"pools: duplicate pool name {dup!r}")
    if not any(p.serves_prefill for p in pools):
        raise ConfigError(
            "pools: no prefill-capable pool (need role=prefill or "
            "role=both)")
    if not any(p.serves_decode for p in pools):
        raise ConfigError(
            "pools: no decode-capable pool (need role=decode or "
            "role=both)")


@dataclass(frozen=True)
class DisaggCluster:
    """A validated set of pools plus their inter-pool transfer link.

    The cluster partitions the combined device topology: every pool
    contributes ``PoolSpec.num_devices`` copies of its GPU, and
    :meth:`device_slices` names each pool's contiguous slice of the
    union :class:`~repro.hw.interconnect.ClusterSpec` (joined by the
    transfer link — the hop KV blocks cross on migration).
    """

    pools: tuple[PoolSpec, ...]
    link: LinkSpec

    def __post_init__(self) -> None:
        validate_pools(self.pools)

    @classmethod
    def build(cls, pools: Sequence[PoolSpec],
              link: "LinkSpec | str" = "pcie4") -> "DisaggCluster":
        """Construct from pool specs and a link (name or spec)."""
        link_spec = get_link(link) if isinstance(link, str) else link
        return cls(pools=tuple(pools), link=link_spec)

    @property
    def is_degenerate(self) -> bool:
        """A single pool serving both phases — the colocated limit.

        Degenerate clusters never schedule a KV transfer; the serving
        layer runs them through the classic engine so their reports
        stay byte-identical to a pool-free deployment.
        """
        return len(self.pools) == 1 and self.pools[0].role == "both"

    @property
    def prefill_pools(self) -> tuple[PoolSpec, ...]:
        """Prefill-capable pools in stable name order (the router's
        deterministic tie-break domain)."""
        return tuple(sorted((p for p in self.pools if p.serves_prefill),
                            key=lambda p: p.name))

    @property
    def decode_pools(self) -> tuple[PoolSpec, ...]:
        """Decode-capable pools in stable name order."""
        return tuple(sorted((p for p in self.pools if p.serves_decode),
                            key=lambda p: p.name))

    def pool(self, name: str) -> PoolSpec:
        for p in self.pools:
            if p.name == name:
                return p
        known = ", ".join(p.name for p in self.pools)
        raise ConfigError(f"unknown pool {name!r} (known: {known})")

    def resolve_gpu(self, pool: PoolSpec,
                    default_gpu: "GPUSpec | str") -> GPUSpec:
        """The pool's device, falling back to the deployment default."""
        name = pool.gpu if pool.gpu is not None else default_gpu
        return name if isinstance(name, GPUSpec) else get_gpu(name)

    def cluster_spec(self, default_gpu: "GPUSpec | str") -> ClusterSpec:
        """Union topology: every pool's devices over the transfer link."""
        gpus: list[GPUSpec] = []
        for pool in self.pools:
            gpus.extend([self.resolve_gpu(pool, default_gpu)]
                        * pool.num_devices)
        return ClusterSpec(gpus=tuple(gpus), link=self.link)

    def device_slices(self) -> dict[str, tuple[int, int]]:
        """Each pool's ``[start, stop)`` slice of the union topology,
        in declaration order."""
        slices: dict[str, tuple[int, int]] = {}
        start = 0
        for pool in self.pools:
            stop = start + pool.num_devices
            slices[pool.name] = (start, stop)
            start = stop
        return slices

    def describe(self, default_gpu: "GPUSpec | str") -> str:
        """Human-readable identity, e.g.
        ``prefill=h100 + decode=w7900 over pcie4``."""
        parts = []
        for pool in self.pools:
            gpu = self.resolve_gpu(pool, default_gpu)
            count = pool.num_devices
            suffix = f"x{count}" if count > 1 else ""
            parts.append(f"{pool.name}={gpu.name}{suffix}")
        return " + ".join(parts) + f" over {self.link.name}"
