"""Disaggregated prefill/decode serving over heterogeneous GPU pools.

The subsystem splits a deployment into named pools — each with its own
engine, device, parallel plan, batcher and memory ledger — routed by a
pluggable :class:`RouterPolicy` and joined by KV-block transfers over
the cluster's inter-pool link.  See ``DESIGN.md`` ("Disaggregated
serving") for the full model.
"""

from repro.serve.disagg.engine import DisaggServingEngine, PoolStepComplete
from repro.serve.disagg.pools import (
    POOL_ROLES,
    DisaggCluster,
    PoolSpec,
    validate_pools,
)
from repro.serve.disagg.routers import (
    PHASES,
    ROUTERS,
    RouterPolicy,
    make_router,
    register_router,
    router_names,
)

__all__ = [
    "DisaggCluster",
    "DisaggServingEngine",
    "PHASES",
    "POOL_ROLES",
    "PoolSpec",
    "PoolStepComplete",
    "ROUTERS",
    "RouterPolicy",
    "make_router",
    "register_router",
    "router_names",
    "validate_pools",
]
