"""Request-level serving simulator (continuous batching).

Everything below the serving layer prices one decoder layer for one
token batch; this package lifts the cost stack to the *request* level: a
discrete-event loop admits requests from an arrival trace, packs prefill
and decode work into engine steps under a token budget, charges
KV-cache growth against device memory, and reports TTFT / TPOT /
throughput / queue-depth percentiles per engine.  DESIGN.md documents
how the simulator composes with the per-layer models; this is an
extension beyond the paper's per-layer evaluation.
"""

from repro.serve.request import (
    Request,
    bursty_trace,
    poisson_trace,
    replay_trace,
)
from repro.serve.batcher import (
    BATCHER_NAMES,
    ChunkedPrefillBatcher,
    ContinuousBatcher,
    PrefillChunk,
    StaticBatcher,
    StepPlan,
    make_batcher,
)
from repro.serve.engine import ServingEngine, simulate
from repro.serve.metrics import (
    PercentileSummary,
    ServeReport,
    percentile,
    summarise,
)

__all__ = [
    "Request",
    "poisson_trace",
    "bursty_trace",
    "replay_trace",
    "BATCHER_NAMES",
    "make_batcher",
    "ChunkedPrefillBatcher",
    "ContinuousBatcher",
    "PrefillChunk",
    "StaticBatcher",
    "StepPlan",
    "ServingEngine",
    "simulate",
    "PercentileSummary",
    "ServeReport",
    "percentile",
    "summarise",
]
