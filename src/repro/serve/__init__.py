"""Request-level serving simulator (continuous batching).

Everything below the serving layer prices one decoder layer for one
token batch; this package lifts the cost stack to the *request* level: a
heap-ordered event calendar (:mod:`repro.serve.events`) admits requests
from an arrival trace, packs prefill and decode work into engine steps
under a token budget, charges KV-cache growth against device memory,
and reports TTFT / TPOT / throughput / queue-depth percentiles per
engine.  Step pricing is memoised and vectorized
(:mod:`repro.serve.costs`); ``repro bench sim`` measures the
simulator's own speed.  DESIGN.md documents how the simulator composes
with the per-layer models; this is an extension beyond the paper's
per-layer evaluation.
"""

from repro.serve.costs import StepPricer
from repro.serve.events import (
    CLOCK_EPS,
    Arrival,
    EventKind,
    EventManager,
    EventQueue,
    HorizonExpired,
    Preempt,
    RateRefill,
    StepComplete,
)
from repro.serve.scheduling import (
    SCHEDULER_NAMES,
    AdmissionGate,
    PrioritySlack,
    TokenBucket,
    YoungestFirst,
    make_scheduler,
)
from repro.workloads.traces import (
    Request,
    bursty_trace,
    poisson_trace,
    replay_trace,
)
from repro.serve.batcher import (
    BATCHER_NAMES,
    ChunkedPrefillBatcher,
    ContinuousBatcher,
    PrefillChunk,
    StaticBatcher,
    StepPlan,
    make_batcher,
)
from repro.serve.engine import ServingEngine, simulate
from repro.serve.metrics import (
    PercentileSummary,
    ServeReport,
    percentile,
    sim_throughput,
    summarise,
)

__all__ = [
    "CLOCK_EPS",
    "Arrival",
    "StepComplete",
    "Preempt",
    "HorizonExpired",
    "RateRefill",
    "EventKind",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "YoungestFirst",
    "PrioritySlack",
    "AdmissionGate",
    "TokenBucket",
    "EventQueue",
    "EventManager",
    "StepPricer",
    "Request",
    "poisson_trace",
    "bursty_trace",
    "replay_trace",
    "BATCHER_NAMES",
    "make_batcher",
    "ChunkedPrefillBatcher",
    "ContinuousBatcher",
    "PrefillChunk",
    "StaticBatcher",
    "StepPlan",
    "ServingEngine",
    "simulate",
    "PercentileSummary",
    "ServeReport",
    "percentile",
    "sim_throughput",
    "summarise",
]
