"""Exact memoised step pricing for the event-calendar serving core.

The pre-calendar loop priced every step from scratch: one
``attention_cost`` per prefill request, one engine ``cost()`` per MoE
evaluation, scalar Python throughout.  Profiling a 2k-request replay
puts ~85% of the wall clock inside the analytic kernel cost model —
called thousands of times with a handful of *distinct* argument
tuples, because continuous batching revisits the same step shapes over
and over.

:class:`StepPricer` removes that waste without changing a single bit
of the output.  Every cost primitive in the serving path is a
deterministic function of a small integer key, so the pricer memoises
them exactly:

* prefill attention by prompt length, chunk attention by
  ``(offset, tokens)``, the decode-attention projection GEMMs by batch
  size (the context-dependent remainder is closed-form arithmetic);
* the monolithic MoE engine cost (time and data-flow overhead) by
  token count;
* RMSNorm and boundary-collective seconds by token count;
* whole steps by their exact plan signature — the tuple of prompt
  lengths, chunk slices and the decode ``(batch, context)`` pair — so
  a revisited step shape is one dict lookup instead of a full pricing
  pass;
* the ``engine="auto"`` winner per (phase, power-of-two bucket),
  extending the PR 5 :class:`~repro.registry.selector.SelectionTable`
  memoisation to whole-step granularity (``step:`` keys record the
  winner and the first modelled step seconds per bucket).

Because every memoised value is produced by the same pure function the
old loop called, and the sums compose in the same order, reports are
byte-identical to the reference loop (``tests/test_serve_golden.py``
pins this).  The one path that is *not* memoised per step is the
stochastic one: a Samoyeds context with ``streams > 1`` (or a
distributed Samoyeds context) draws per-expert loads from the RNG each
step; skipping the draw would desynchronise the stream, so those steps
re-draw every time and only the deterministic components (attention,
norms, data-flow, the per-``n_e`` segment triples) hit memos.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InternalError
from repro.models.attention import (
    _projection_seconds,
    attention_cost,
    decode_attention_cost,
)
from repro.models.decoder import boundary_comm_seconds, norm_seconds
from repro.moe.layers import SamoyedsEngine
from repro.moe.scheduler import (
    device_makespans,
    schedule_parallel,
    segment_seconds_from_loads,
)
from repro.registry.selector import AutoEngine, SelectionTable

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.context import ExecutionContext
    from repro.hw.interconnect import ClusterSpec
    from repro.moe.scheduler import ExpertPlacement
    from repro.serve.batcher import StepPlan

#: A priced step: (total seconds, communication seconds — both scaled
#: to all layers — and the auto-dispatch winner name, ``None`` for
#: fixed engines or empty steps).
PricedStep = "tuple[float, float, str | None]"


class StepPricer:
    """Prices serving steps with exact memoisation.

    Owns every cost memo of one :class:`~repro.serve.engine.ServingEngine`
    (memos persist across ``run()`` calls, like the old loop's MoE
    memo did).  Shares the engine's RNG so the stochastic LPT paths
    draw the same per-step load sequence the reference loop draws.
    """

    def __init__(self, ctx: "ExecutionContext", layers: int,
                 popularity, rng,
                 placement: "ExpertPlacement | None" = None,
                 cluster: "ClusterSpec | None" = None) -> None:
        self.ctx = ctx
        self._layers = layers
        self._popularity = popularity
        self._rng = rng
        self._placement = placement
        self._cluster = cluster
        self._distributed = not ctx.parallel.is_trivial
        self._samoyeds = isinstance(ctx.engine, SamoyedsEngine)
        self._auto = isinstance(ctx.engine, AutoEngine)
        #: Steps that consume RNG can never be memoised whole: the
        #: draw itself is part of the step's semantics.
        self.stochastic = self._samoyeds and (self._distributed
                                              or ctx.streams > 1)
        self._segment_kernel = None
        # Component memos: key -> seconds (or (time_s, dataflow_s)).
        self._attn: dict[int, float] = {}
        self._chunk: dict[tuple[int, int], float] = {}
        self._proj: dict[int, float] = {}
        self._norm: dict[int, float] = {}
        self._comm: dict[int, float] = {}
        self._moe: dict[int, tuple[float, float]] = {}
        self._segments: dict[int, dict[int, float]] = {}
        self._steps: dict[tuple, tuple[float, float, str | None]] = {}
        self._winners: dict[tuple, str] = {}

    # ------------------------------------------------------------------
    # Whole-step pricing
    # ------------------------------------------------------------------
    def price(self, plan: "StepPlan") -> "tuple[float, float, str | None]":
        """Price one step: ``(step_s, comm_s, auto_winner)``.

        ``step_s`` and ``comm_s`` are scaled to all decoder layers
        (they are what the old ``step_seconds`` returned and stashed in
        ``_step_comm_s``); ``auto_winner`` names the engine the
        cost-driven selector dispatched this step to, ``None`` off the
        auto path.
        """
        context = (sum(ar.context_tokens for ar in plan.decode)
                   if plan.decode else 0)
        if self.stochastic:
            return self._price(plan, context)
        sig = (tuple(ar.request.prompt_tokens for ar in plan.prefill),
               tuple((chunk.offset, chunk.tokens)
                     for chunk in plan.chunks),
               len(plan.decode), context)
        priced = self._steps.get(sig)
        if priced is None:
            priced = self._steps[sig] = self._price(plan, context)
            if priced[2] is not None:
                self._record_step(plan, priced[0], priced[2])
        return priced

    def _price(self, plan: "StepPlan",
               context: int) -> "tuple[float, float, str | None]":
        """One full pricing pass, composed in the reference loop's
        exact summation order (bit-identical floats)."""
        attn = 0.0
        for ar in plan.prefill:
            attn += self._prefill_attn(ar.request.prompt_tokens)
        for chunk in plan.chunks:
            attn += self._chunk_attn(chunk.offset, chunk.tokens)
        if plan.decode:
            attn += self._decode_attn(context, len(plan.decode))
        tokens = plan.total_tokens
        winner = None
        if self._auto and tokens > 0:
            phase = ("prefill" if (plan.prefill or plan.chunks)
                     else "decode")
            winner = self._winner(tokens, phase)
        if not self._distributed:
            layer = attn + self._moe_seconds(tokens) \
                + self._norm_seconds(tokens)
            return (layer * self._layers, 0.0, winner)
        parallel = self.ctx.parallel
        moe_compute_s = self._distributed_moe_seconds(tokens)
        comm_s = self._comm_seconds(tokens)
        layer = (attn / parallel.tp + moe_compute_s
                 + self._norm_seconds(tokens) + comm_s)
        return (layer * self._layers, comm_s * self._layers, winner)

    # ------------------------------------------------------------------
    # Memoised components
    # ------------------------------------------------------------------
    def _prefill_attn(self, prompt_tokens: int) -> float:
        cached_s = self._attn.get(prompt_tokens)
        if cached_s is None:
            cached_s = self._attn[prompt_tokens] = attention_cost(
                self.ctx.config, prompt_tokens, self.ctx.spec,
                batch=1, flash=self.ctx.flash).total_s
        return cached_s

    def _chunk_attn(self, offset: int, tokens: int) -> float:
        """Marginal prefill attention of a chunk (the causal quadratic
        telescopes across chunks)."""
        cached = self._chunk.get((offset, tokens))
        if cached is None:
            if offset <= 0:
                cached = self._prefill_attn(tokens)
            else:
                cached = max(self._prefill_attn(offset + tokens)
                             - self._prefill_attn(offset), 0.0)
            self._chunk[(offset, tokens)] = cached
        return cached

    def decode_proj(self, batch: int) -> float:
        """Memoised decode projection GEMM seconds for ``batch`` new
        tokens — the only kernel-model call in decode attention, and a
        function of the batch alone."""
        proj_s = self._proj.get(batch)
        if proj_s is None:
            proj_s = self._proj[batch] = _projection_seconds(
                self.ctx.config, batch, self.ctx.spec)
        return proj_s

    def _decode_attn(self, context: int, batch: int) -> float:
        """Decode attention for a batch against ``context`` total cached
        tokens.  The context sum is different nearly every step (each
        resident request grew by one token), so memoising on it would
        just grow a dict forever; instead the projection GEMMs are
        memoised by batch (:meth:`decode_proj`) and passed back in,
        leaving closed-form arithmetic."""
        return decode_attention_cost(
            self.ctx.config, context, self.ctx.spec,
            batch=batch, flash=self.ctx.flash,
            proj_s=self.decode_proj(batch)).total_s

    def _norm_seconds(self, tokens: int) -> float:
        cached_s = self._norm.get(tokens)
        if cached_s is None:
            cached_s = self._norm[tokens] = norm_seconds(
                self.ctx.config, tokens, self.ctx.spec)
        return cached_s

    def _comm_seconds(self, tokens: int) -> float:
        cached_s = self._comm.get(tokens)
        if cached_s is None:
            if self._cluster is None:
                raise InternalError(
                    "comm pricing requested without a cluster")
            cached_s = self._comm[tokens] = boundary_comm_seconds(
                self.ctx.config, tokens, self.ctx.parallel,
                self._cluster)
        return cached_s

    def _moe_cost(self, tokens: int) -> "tuple[float, float]":
        """Memoised monolithic engine cost: (time_s, dataflow_s)."""
        cached = self._moe.get(tokens)
        if cached is None:
            cost = self.ctx.engine.cost(self.ctx.config, tokens,
                                        self.ctx.spec)
            cached = self._moe[tokens] = (
                cost.time_s, float(cost.detail.get("dataflow_s", 0.0)))
        return cached

    # ------------------------------------------------------------------
    # MoE-layer paths (mirror the reference loop's three cases)
    # ------------------------------------------------------------------
    def _moe_seconds(self, tokens: int) -> float:
        """MoE-layer seconds for ``tokens`` new tokens in one step."""
        if tokens <= 0:
            return 0.0
        ctx = self.ctx
        if not (self._samoyeds and ctx.streams > 1):
            return self._moe_cost(tokens)[0]
        # LPT path: overlap per-expert SSMM segments on ctx.streams
        # streams; keep the engine model's data-flow overheads.
        _, dataflow_s = self._moe_cost(tokens)
        segments = self._draw_segments(tokens)
        makespan_s = schedule_parallel(segments, ctx.streams).makespan_s
        return makespan_s + dataflow_s

    def _distributed_moe_seconds(self, tokens: int) -> float:
        """Per-device MoE compute seconds under the parallel plan (the
        dispatch/combine collectives are priced by the comm memo)."""
        if tokens <= 0:
            return 0.0
        ctx = self.ctx
        parallel = ctx.parallel
        if not self._samoyeds:
            return self._moe_cost(tokens)[0] / (parallel.ep
                                                * parallel.tp)
        _, dataflow_s = self._moe_cost(tokens)
        segments = self._draw_segments(tokens, tp=parallel.tp)
        if self._placement is not None:
            compute_s = max(device_makespans(segments, self._placement,
                                             ctx.streams))
        else:
            compute_s = schedule_parallel(segments,
                                          ctx.streams).makespan_s
        return compute_s + dataflow_s / (parallel.ep * parallel.tp)

    def _draw_segments(self, tokens: int, tp: int = 1) -> list[float]:
        """Per-expert segment times for one step's routed load, drawn
        from the routing-skew profile.  Consumes one multinomial from
        the shared RNG per call — exactly like the reference loop, so
        seeded runs replay the same load sequence.  The per-``n_e``
        triple memo persists across steps (the reference rebuilt it
        per call), which is exact: the kernel model is deterministic.
        """
        ctx = self.ctx
        routed = tokens * ctx.config.top_k
        loads = self._rng.multinomial(routed, self._popularity)
        if self._segment_kernel is None:
            self._segment_kernel = ctx.segment_kernel()
        memo = self._segments.setdefault(tp, {})
        return segment_seconds_from_loads(
            ctx.config, loads, ctx.spec, self._segment_kernel,
            ctx.effective_tile_n, tp=tp, memo=memo)

    # ------------------------------------------------------------------
    # Auto-dispatch winner (SelectionTable step-key extension)
    # ------------------------------------------------------------------
    def _winner(self, tokens: int, phase: str) -> str:
        """The engine ``auto`` dispatches this step to.

        :meth:`AutoEngine.select` is already constant within a
        power-of-two problem bucket (its table key is the bucket), so
        the winner memoises exactly per (phase, bucket).  A shipped
        table with ``step:`` entries short-circuits even the first
        query per bucket — after revalidating the named engine the
        same way ``select`` revalidates its own entries.
        """
        engine = self.ctx.engine
        if not isinstance(engine, AutoEngine):
            raise InternalError(
                "auto-winner lookup on a non-auto engine "
                f"({type(engine).__name__})")
        cfg, spec = self.ctx.config, self.ctx.spec
        bucket = AutoEngine._bucket(cfg, tokens)
        memo_key = (phase, bucket)
        name = self._winners.get(memo_key)
        if name is None:
            step_key = self._step_key(tokens, phase)
            shipped = engine.table.lookup(step_key)
            if shipped is not None:
                choice = engine.validate_choice(shipped, cfg, spec)
                if choice is not None:
                    name = choice.name
            if name is None:
                name = engine.select(cfg, tokens, spec).name
            self._winners[memo_key] = name
        return name

    def _step_key(self, tokens: int, phase: str) -> str:
        engine = self.ctx.engine
        if not isinstance(engine, AutoEngine):
            raise InternalError(
                "selection-table key requested on a non-auto engine "
                f"({type(engine).__name__})")
        return SelectionTable.step_key(
            self.ctx.spec.name, phase,
            engine._problem_key(self.ctx.config, tokens, None),
            engine.density)

    def _record_step(self, plan: "StepPlan", step_s: float,
                     winner: str) -> None:
        """Record the winner and first modelled whole-step seconds
        under the table's ``step:`` namespace, so a saved table primes
        the next deployment's fast path."""
        engine = self.ctx.engine
        if not isinstance(engine, AutoEngine):
            raise InternalError(
                "step recording on a non-auto engine "
                f"({type(engine).__name__})")
        phase = "prefill" if (plan.prefill or plan.chunks) else "decode"
        key = self._step_key(plan.total_tokens, phase)
        if key not in engine.table.entries:
            engine.table.record(key, winner, step_s)
