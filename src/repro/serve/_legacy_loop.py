"""Pre-event-calendar serving loop, frozen for golden equivalence.

This module is a verbatim snapshot of the nested ``while`` serving loop
(and its scalar, unmemoised step pricing) as it stood before the engine
was refactored onto the event calendar in :mod:`repro.serve.events`.
It exists for exactly two purposes:

* **Golden tests** — ``tests/test_serve_golden.py`` pins the
  event-calendar :class:`~repro.serve.engine.ServingEngine` byte-
  identical (report JSON) to this loop on the serve / paged / parallel
  / scale fixtures.  The reference deliberately shares *no* pricing
  code with the live engine: a regression in the memoised or vectorized
  fast paths cannot hide here.
* **The perf baseline** — ``repro bench sim`` replays the same trace
  through this loop to measure the simulated-requests/sec speedup that
  ``BENCH_sim.json`` tracks across PRs.

Do not optimise this file; its slowness is the measurement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.context import ExecutionContext
from repro.errors import CapacityError, ConfigError, InternalError
from repro.hw.interconnect import ClusterSpec
from repro.models.attention import attention_cost, decode_attention_cost
from repro.models.decoder import boundary_comm_seconds, norm_seconds
from repro.moe.layers import SamoyedsEngine
from repro.moe.memory_model import (
    BlockAllocator,
    DeviceLedgers,
    KVCacheTracker,
    MemoryLedger,
)
from repro.moe.scheduler import (
    ExpertPlacement,
    device_makespans,
    place_experts,
    schedule_parallel,
)
from repro.moe.trace import zipf_expert_popularity
from repro.registry.selector import AutoEngine
from repro.serve.batcher import (
    ActiveRequest,
    Batcher,
    ContinuousBatcher,
    StepPlan,
)
from repro.serve.events import CLOCK_EPS
from repro.serve.metrics import (
    MetricsCollector,
    RequestRecord,
    ServeReport,
    StepSample,
    summarise,
)
from repro.workloads.traces import Request, validate_trace
from repro.utils.rng import new_rng


def _reference_segment_seconds(config, loads, spec, kernel, tile_n,
                               tp=1):
    """Scalar per-expert segment pricing, as shipped pre-refactor.

    A frozen copy of the original ``segment_seconds_from_loads`` body —
    the live function now takes the vectorized bucket path, which the
    reference must not share.
    """
    import math
    if tile_n <= 0:
        raise ConfigError("tile_n must be positive")
    if tp <= 0:
        raise ConfigError("tp must be positive")
    h, inter = config.hidden_size, config.intermediate_size
    if tp > 1:
        inter = max(1, math.ceil(inter / tp))
    memo: dict[int, float] = {}
    out = []
    for load in loads:
        if load == 0:
            out.append(0.0)
            continue
        n_e = math.ceil(int(load) / tile_n) * tile_n
        triple = memo.get(n_e)
        if triple is None:
            gate_up_s = kernel.cost(inter, h, n_e, spec).time_s
            down_s = kernel.cost(h, inter, n_e, spec).time_s
            triple = memo[n_e] = 2.0 * gate_up_s + down_s
        out.append(triple)
    return out


@dataclass
class ReferenceEngine:
    """The pre-refactor serving loop (see module docstring).

    Construction arguments mirror :class:`ServingEngine` exactly so a
    golden test (or the bench harness) can run both from one config.
    """

    ctx: ExecutionContext
    batcher: Batcher = field(default_factory=ContinuousBatcher)
    num_layers: int | None = None
    routing_skew: float = 0.0
    seed: int | None = None
    page_size: int | None = None
    horizon_s: float | None = None
    placement_policy: str = "balanced"

    def __post_init__(self) -> None:
        self._layers = self.num_layers or self.ctx.config.num_layers
        if self._layers <= 0:
            raise ConfigError("num_layers must be positive")
        if self.page_size is not None and self.page_size <= 0:
            raise ConfigError("page_size must be positive")
        if self.horizon_s is not None and self.horizon_s <= 0:
            raise ConfigError("horizon_s must be positive")
        self._rng = new_rng(self.seed)
        self._moe_memo: dict[int, float] = {}
        self._popularity = zipf_expert_popularity(
            self.ctx.config.num_experts, self.routing_skew)
        parallel = self.ctx.parallel
        if parallel.dp > 1:
            raise ConfigError(
                "data-parallel serving is not modeled; run one engine "
                "per replica (ep/tp shard a single replica)")
        self._distributed = not parallel.is_trivial
        self._cluster: ClusterSpec | None = None
        self._placement: ExpertPlacement | None = None
        if self._distributed:
            self._cluster = self.ctx.cluster_spec
            if parallel.ep > 1:
                self._placement = place_experts(
                    self.ctx.config.num_experts, parallel.ep,
                    policy=self.placement_policy,
                    profile=self._popularity)
        self._step_comm_s = 0.0
        self._comm_s_total = 0.0
        self._busy_s_total = 0.0
        self._auto_counts: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Step pricing (scalar, per-request Python loops — by design)
    # ------------------------------------------------------------------
    def step_seconds(self, plan: StepPlan) -> float:
        cfg, spec = self.ctx.config, self.ctx.spec
        attn = 0.0
        for ar in plan.prefill:
            attn += attention_cost(cfg, ar.request.prompt_tokens, spec,
                                   batch=1, flash=self.ctx.flash).total_s
        for chunk in plan.chunks:
            attn += self._chunk_attention_seconds(chunk.offset,
                                                  chunk.tokens)
        if plan.decode:
            context_tokens = sum(ar.context_tokens for ar in plan.decode)
            attn += decode_attention_cost(cfg, context_tokens, spec,
                                          batch=len(plan.decode),
                                          flash=self.ctx.flash).total_s
        tokens = plan.total_tokens
        if isinstance(self.ctx.engine, AutoEngine) and tokens > 0:
            phase = ("prefill" if (plan.prefill or plan.chunks)
                     else "decode")
            winner = self.ctx.engine.select(cfg, tokens, spec).name
            counts = self._auto_counts.setdefault(phase, {})
            counts[winner] = counts.get(winner, 0) + 1
        if not self._distributed:
            self._step_comm_s = 0.0
            layer = attn + self._moe_seconds(tokens) \
                + norm_seconds(cfg, tokens, spec)
            return layer * self._layers
        parallel, cluster = self.ctx.parallel, self._cluster
        if cluster is None:
            raise InternalError(
                "distributed pricing requested without a cluster")
        moe_compute_s = self._distributed_moe_seconds(tokens)
        comm_s = boundary_comm_seconds(cfg, tokens, parallel, cluster)
        layer = (attn / parallel.tp + moe_compute_s
                 + norm_seconds(cfg, tokens, spec) + comm_s)
        self._step_comm_s = comm_s * self._layers
        return layer * self._layers

    def _chunk_attention_seconds(self, offset: int, tokens: int) -> float:
        cfg, spec = self.ctx.config, self.ctx.spec
        if offset <= 0:
            return attention_cost(cfg, tokens, spec, batch=1,
                                  flash=self.ctx.flash).total_s
        whole_s = attention_cost(cfg, offset + tokens, spec, batch=1,
                                 flash=self.ctx.flash).total_s
        prior_s = attention_cost(cfg, offset, spec, batch=1,
                                 flash=self.ctx.flash).total_s
        return max(whole_s - prior_s, 0.0)

    def _engine_moe_memo(self, tokens: int) -> float:
        cached_s = self._moe_memo.get(tokens)
        if cached_s is None:
            cached_s = self.ctx.engine.cost(self.ctx.config, tokens,
                                            self.ctx.spec).time_s
            self._moe_memo[tokens] = cached_s
        return cached_s

    def _draw_segments(self, tokens: int, tp: int = 1) -> list[float]:
        ctx = self.ctx
        routed = tokens * ctx.config.top_k
        loads = self._rng.multinomial(routed, self._popularity)
        return _reference_segment_seconds(
            ctx.config, loads, ctx.spec, ctx.segment_kernel(),
            ctx.effective_tile_n, tp=tp)

    def _moe_seconds(self, tokens: int) -> float:
        if tokens <= 0:
            return 0.0
        ctx = self.ctx
        use_lpt = ctx.streams > 1 and isinstance(ctx.engine, SamoyedsEngine)
        if not use_lpt:
            return self._engine_moe_memo(tokens)
        cost = ctx.engine.cost(ctx.config, tokens, ctx.spec)
        segments = self._draw_segments(tokens)
        makespan_s = schedule_parallel(segments, ctx.streams).makespan_s
        dataflow = float(cost.detail.get("dataflow_s", 0.0))
        return makespan_s + dataflow

    def _distributed_moe_seconds(self, tokens: int) -> float:
        if tokens <= 0:
            return 0.0
        ctx = self.ctx
        parallel = ctx.parallel
        if not isinstance(ctx.engine, SamoyedsEngine):
            return self._engine_moe_memo(tokens) / (parallel.ep
                                                    * parallel.tp)
        cost = ctx.engine.cost(ctx.config, tokens, ctx.spec)
        segments = self._draw_segments(tokens, tp=parallel.tp)
        if self._placement is not None:
            compute_s = max(device_makespans(segments, self._placement,
                                             ctx.streams))
        else:
            compute_s = schedule_parallel(segments,
                                          ctx.streams).makespan_s
        dataflow = float(cost.detail.get("dataflow_s", 0.0))
        return compute_s + dataflow / (parallel.ep * parallel.tp)

    # ------------------------------------------------------------------
    # The nested while loop, exactly as shipped
    # ------------------------------------------------------------------
    def _make_ledger(self) -> "MemoryLedger | DeviceLedgers":
        if self._distributed:
            parallel = self.ctx.parallel
            cluster = self._cluster
            if cluster is None:
                raise InternalError(
                    "distributed run has no cluster for its ledgers")
            grid = parallel.ep * parallel.tp
            gpus = [cluster.device(d % cluster.num_devices)
                    for d in range(grid)]
            counts = (self._placement.counts()
                      if self._placement is not None else None)
            return DeviceLedgers.create(
                self.ctx.config, self.ctx.engine.name, gpus, parallel,
                expert_counts=counts, page_size=self.page_size)
        if self.page_size:
            return BlockAllocator(self.ctx.config, self.ctx.engine.name,
                                  self.ctx.spec, page_size=self.page_size)
        return KVCacheTracker(self.ctx.config, self.ctx.engine.name,
                              self.ctx.spec)

    def _evict(self, victim, ledger, running, waiting, evicted,
               collector) -> None:
        ledger.release(victim.request.rid)
        running.remove(victim)
        waiting.appendleft(victim.request)
        evicted.add(victim.request.rid)
        collector.preempt()

    def _grow(self, ar, ledger, running, waiting, evicted,
              collector) -> bool:
        while True:
            try:
                ledger.grow(ar.request.rid)
                return True
            except CapacityError:
                victim = max(running, key=lambda a: (a.request.arrival_s,
                                                     a.request.rid))
                if victim is ar and len(running) == 1:
                    total_tokens = ar.request.total_tokens
                    raise CapacityError(
                        f"request {ar.request.rid} ({total_tokens} "
                        f"tokens) exceeds device memory even alone on "
                        f"{self.ctx.spec.name} with "
                        f"{self.ctx.engine.name}",
                        required_bytes=int(
                            ledger.peak_bytes(total_tokens)),
                        available_bytes=int(ledger.budget_bytes
                                            - ledger.static_bytes))
                self._evict(victim, ledger, running, waiting, evicted,
                            collector)
                if victim is ar:
                    return False

    def run(self, trace: Sequence[Request],
            max_steps: int = 1_000_000) -> ServeReport:
        validate_trace(trace)
        self._step_comm_s = 0.0
        self._comm_s_total = 0.0
        self._busy_s_total = 0.0
        self._auto_counts = {}
        ledger = self._make_ledger()
        arrivals = deque(sorted(trace, key=lambda r: r.arrival_s))
        records = {req.rid: RequestRecord(req) for req in trace}
        waiting: deque[Request] = deque()
        running: list[ActiveRequest] = []
        collector = MetricsCollector()
        clock_s = 0.0
        steps = 0

        while arrivals or waiting or running:
            if self.horizon_s is not None and clock_s >= self.horizon_s:
                break
            while (arrivals
                   and arrivals[0].arrival_s <= clock_s + CLOCK_EPS):
                waiting.append(arrivals.popleft())
            plan = self.batcher.plan_step(clock_s, waiting, running,
                                          ledger, bool(arrivals))
            if plan.empty:
                if arrivals:
                    clock_s = max(clock_s, arrivals[0].arrival_s)
                    continue
                head = next((ar.request for ar in running
                             if not ar.prefilled),
                            waiting[0] if waiting else running[0].request)
                raise CapacityError(
                    f"request {head.rid} ({head.total_tokens} tokens) can "
                    f"never fit on {self.ctx.spec.name} with "
                    f"{self.ctx.engine.name}",
                    required_bytes=int(
                        ledger.peak_bytes(head.total_tokens)),
                    available_bytes=int(ledger.budget_bytes
                                        - ledger.static_bytes))
            steps += 1
            if steps > max_steps:
                raise ConfigError(f"exceeded {max_steps} steps; trace too "
                                  f"large or engine starved")
            step_s = self.step_seconds(plan)
            clock_s += step_s
            self._busy_s_total += step_s
            self._comm_s_total += self._step_comm_s
            evicted: set[int] = set()

            running.extend(plan.prefill)
            for ar in sorted(plan.decode,
                             key=lambda a: (a.request.arrival_s,
                                            a.request.rid)):
                if ar.request.rid in evicted:
                    continue
                ar.generated += 1
                self._grow(ar, ledger, running, waiting, evicted,
                           collector)
            for ar in plan.prefill:
                record = records[ar.request.rid]
                if record.admitted_s is None:
                    record.admitted_s = ar.admitted_s
                if ar.request.rid in evicted:
                    continue
                if record.first_token_s is None:
                    record.first_token_s = clock_s
                ar.prefilled = True
                ar.prefilled_tokens = ar.request.prompt_tokens
                ar.generated = 1
                self._grow(ar, ledger, running, waiting, evicted,
                           collector)
            for chunk in plan.chunks:
                ar = chunk.ar
                record = records[ar.request.rid]
                if record.admitted_s is None:
                    record.admitted_s = ar.admitted_s
                if ar.request.rid in evicted:
                    continue
                ar.prefilled_tokens += chunk.tokens
                if ar.prefilled_tokens >= ar.request.prompt_tokens:
                    ar.prefilled = True
                    ar.generated = 1
                    if record.first_token_s is None:
                        record.first_token_s = clock_s
                    self._grow(ar, ledger, running, waiting, evicted,
                               collector)

            while (arrivals
                   and arrivals[0].arrival_s <= clock_s + CLOCK_EPS):
                waiting.append(arrivals.popleft())

            collector.observe(StepSample(
                clock_s=clock_s,
                queue_depth=len(waiting),
                running=ledger.active_requests,
                step_tokens=plan.total_tokens,
                live_bytes=ledger.live_bytes,
                reserved_bytes=ledger.reserved_bytes,
                pool_util=ledger.pool_utilisation,
                comm_s=self._step_comm_s,
                step_s=step_s,
            ))
            for ar in [ar for ar in running if ar.finished]:
                running.remove(ar)
                ledger.release(ar.request.rid)
                record = records[ar.request.rid]
                record.finished_s = clock_s
                collector.finish(record)

        return summarise(collector, engine=self.ctx.engine.name,
                         model=self.ctx.config.name,
                         gpu=self.ctx.spec.name, batcher=self.batcher.name,
                         num_requests=len(trace),
                         cluster=self._cluster_report(ledger),
                         auto=self._auto_report())

    def _auto_report(self) -> dict[str, object] | None:
        if not isinstance(self.ctx.engine, AutoEngine):
            return None
        selected = {
            phase: max(counts.items(), key=lambda kv: (kv[1], kv[0]))[0]
            for phase, counts in self._auto_counts.items()}
        return {"selected": selected,
                "steps": {phase: dict(counts)
                          for phase, counts in self._auto_counts.items()}}

    def _cluster_report(self, ledger) -> dict[str, object] | None:
        if not self._distributed:
            return None
        cluster = self._cluster
        if cluster is None:
            raise InternalError(
                "distributed run has no cluster for its report")
        busy = self._busy_s_total
        info: dict[str, object] = {
            "parallel": self.ctx.parallel.to_dict(),
            "cluster": cluster.describe(),
            "link": cluster.link.name,
            "comm_s_total": self._comm_s_total,
            "comm_fraction": (self._comm_s_total / busy
                              if busy > 0 else 0.0),
        }
        if self._placement is not None:
            info["placement_policy"] = self._placement.policy
            info["experts_per_device"] = list(self._placement.counts())
        if isinstance(ledger, DeviceLedgers):
            info["per_device_static_bytes"] = [
                led.static_bytes for led in ledger.ledgers]
        return info
