"""The generic Registry[T] and the five system registries behind it."""

import pytest

from repro.errors import ConfigError, HardwareModelError, ReproError
from repro.hw.interconnect import (
    LINK_REGISTRY,
    LinkSpec,
    get_link,
    register_link,
)
from repro.hw.spec import GPU_REGISTRY, get_gpu, register_gpu
from repro.hw.spec import RTX_4070_SUPER
from repro.kernels import KERNELS, register_kernel
from repro.kernels.gemm_dense import DenseGemmKernel
from repro.moe.config import (
    MIXTRAL_8X7B,
    MODEL_REGISTRY,
    get_model,
    register_model,
)
from repro.moe.layers import ENGINES, TransformersEngine, register_engine
from repro.context import resolve_engine
from repro.registry import Registry


class TestRegistryCore:
    def test_functional_registration_and_get(self):
        reg: Registry[int] = Registry("thing")
        reg.register("one", 1)
        assert reg.get("one") == 1
        assert reg["one"] == 1
        assert "one" in reg and len(reg) == 1

    def test_decorator_registration(self):
        reg: Registry[type] = Registry("widget")

        @reg.register("mine")
        class Widget:
            pass

        assert reg.get("mine") is Widget

    def test_collision_raises_and_replace_overwrites(self):
        reg: Registry[int] = Registry("thing")
        reg.register("x", 1)
        with pytest.raises(ConfigError, match="already registered"):
            reg.register("x", 2)
        assert reg.get("x") == 1            # original survived
        reg.register("x", 2, replace=True)
        assert reg.get("x") == 2

    def test_miss_lists_sorted_names_and_suggests(self):
        reg: Registry[int] = Registry("engine")
        reg.register("zeta", 0)
        reg.register("alpha", 1)
        with pytest.raises(ConfigError) as err:
            reg.get("alpah")
        message = str(err.value)
        assert "unknown engine 'alpah'" in message
        assert "alpha, zeta" in message          # sorted, not insertion
        assert "did you mean 'alpha'?" in message

    def test_custom_error_class(self):
        reg: Registry[int] = Registry("GPU", error_cls=HardwareModelError)
        with pytest.raises(HardwareModelError):
            reg.get("nope")

    def test_iteration_preserves_registration_order(self):
        reg: Registry[int] = Registry("thing")
        for index, name in enumerate(("c", "a", "b")):
            reg.register(name, index)
        assert list(reg) == ["c", "a", "b"]
        assert reg.keys() == ("c", "a", "b")
        assert reg.names() == ["a", "b", "c"]
        assert [v for _, v in reg.items()] == [0, 1, 2]

    def test_unregister(self):
        reg: Registry[int] = Registry("thing")
        reg.register("x", 1)
        assert reg.unregister("x") == 1
        assert "x" not in reg
        with pytest.raises(ConfigError):
            reg.unregister("x")


# ----------------------------------------------------------------------
# One contract over all five system registries (collision satellite)
# ----------------------------------------------------------------------

def _dummy_gpu():
    return RTX_4070_SUPER.with_overrides(name="dup-test-gpu")


def _dummy_link():
    return LinkSpec(name="dup-test-link", latency_s=1e-6, bandwidth=1e9)


def _dummy_engine():
    engine = TransformersEngine()
    engine.name = "dup-test-engine"
    return engine


def _dummy_kernel():
    kernel = DenseGemmKernel()
    kernel.name = "dup-test-kernel"
    return kernel


def _dummy_model():
    from dataclasses import replace
    return replace(MIXTRAL_8X7B, name="dup-test-model")


FIVE_REGISTRIES = [
    pytest.param(GPU_REGISTRY, register_gpu, _dummy_gpu, id="gpu"),
    pytest.param(LINK_REGISTRY, register_link, _dummy_link, id="link"),
    pytest.param(ENGINES, register_engine, _dummy_engine, id="engine"),
    pytest.param(KERNELS, register_kernel, _dummy_kernel, id="kernel"),
    pytest.param(MODEL_REGISTRY, register_model, _dummy_model,
                 id="model"),
]


class TestFiveRegistries:
    @pytest.mark.parametrize("registry, register, make", FIVE_REGISTRIES)
    def test_duplicate_registration_collides(self, registry, register,
                                             make):
        """Every registry raises on silent overwrite and accepts
        replace=True — the register_gpu contract, uniformly."""
        first, second = make(), make()
        name = first.name
        try:
            assert register(first) is first
            with pytest.raises(registry.error_cls,
                               match="already registered"):
                register(second)
            assert registry.get(name) is first
            assert register(second, replace=True) is second
            assert registry.get(name) is second
        finally:
            if name in registry:
                registry.unregister(name)

    @pytest.mark.parametrize("registry, register, make", FIVE_REGISTRIES)
    def test_collisions_raise_repro_errors(self, registry, register,
                                           make):
        assert issubclass(registry.error_cls, ReproError)


# ----------------------------------------------------------------------
# Miss-message regression tests (satellite: every registry miss lists
# the sorted known-name set)
# ----------------------------------------------------------------------

class TestMissMessages:
    def test_engine_miss_lists_names(self):
        with pytest.raises(ConfigError) as err:
            resolve_engine("vlm")
        message = str(err.value)
        assert "unknown engine 'vlm'" in message
        for name in ("auto", "megablocks", "pit", "samoyeds",
                     "transformers", "vllm-ds"):
            assert name in message
        assert "did you mean 'vllm-ds'?" in message

    def test_kernel_miss_lists_names(self):
        with pytest.raises(ConfigError) as err:
            KERNELS.get("samoyed")
        message = str(err.value)
        assert "unknown kernel 'samoyed'" in message
        for name in ("cublas", "cusparselt", "samoyeds", "sputnik",
                     "venom"):
            assert name in message
        assert "did you mean 'samoyeds'?" in message

    def test_gpu_miss_lists_names(self):
        with pytest.raises(HardwareModelError) as err:
            get_gpu("rtx4070")
        message = str(err.value)
        assert "unknown GPU 'rtx4070'" in message
        for name in ("a100", "h100", "rtx4070s", "w7900"):
            assert name in message
        assert "did you mean" in message

    def test_link_miss_lists_names(self):
        with pytest.raises(HardwareModelError) as err:
            get_link("nvlnk")
        message = str(err.value)
        assert "unknown link 'nvlnk'" in message
        for name in ("ib", "nvlink", "pcie4"):
            assert name in message
        assert "did you mean 'nvlink'?" in message

    def test_model_miss_lists_names(self):
        with pytest.raises(ConfigError) as err:
            get_model("mixtral-7x8b")
        message = str(err.value)
        assert "unknown model 'mixtral-7x8b'" in message
        for name in ("deepseek-moe", "mixtral-8x7b", "qwen2-moe"):
            assert name in message
        assert "did you mean" in message

    def test_names_sorted_in_message(self):
        """The known-name list is sorted regardless of registration
        order (links register nvlink, pcie4, ib)."""
        with pytest.raises(HardwareModelError) as err:
            get_link("bogus")
        message = str(err.value)
        assert message.index("ib") < message.index("nvlink") \
            < message.index("pcie4")


# ----------------------------------------------------------------------
# Path-qualified spec validation against the registries (satellite)
# ----------------------------------------------------------------------

class TestSpecRegistryValidation:
    def test_model_engine_typo_fails_at_validate_time(self):
        from repro.api import DeploymentSpec
        with pytest.raises(ConfigError) as err:
            DeploymentSpec.from_dict({"model": {"engine": "vlm"}})
        message = str(err.value)
        assert message.startswith("model.engine: unknown engine 'vlm'")
        assert "vllm-ds" in message and "did you mean" in message

    def test_model_name_typo_path_qualified(self):
        from repro.api import DeploymentSpec
        with pytest.raises(ConfigError, match=r"model\.name: unknown "
                                              r"model 'mixtral'"):
            DeploymentSpec.from_dict({"model": {"name": "mixtral"}})

    def test_hardware_gpu_and_link_path_qualified(self):
        from repro.api import DeploymentSpec
        with pytest.raises(ConfigError, match=r"hardware\.gpu: unknown "
                                              r"GPU 'rtx4070'"):
            DeploymentSpec.from_dict({"hardware": {"gpu": "rtx4070"}})
        with pytest.raises(ConfigError, match=r"hardware\.link: unknown "
                                              r"link 'nvlnk'"):
            DeploymentSpec.from_dict({"hardware": {"link": "nvlnk"}})

    def test_sweep_expansion_catches_engine_typo(self):
        """A typo inside a sweep axis fails while expanding the grid,
        before anything serves."""
        from repro.api import DeploymentSpec, expand_sweep
        base = DeploymentSpec.from_dict({})
        with pytest.raises(ConfigError, match="model.engine"):
            expand_sweep(base, {"model.engine": ["samoyeds", "vlm"]})

    def test_auto_engine_accepted(self):
        from repro.api import DeploymentSpec
        spec = DeploymentSpec.from_dict({"model": {"engine": "auto"}})
        assert spec.model.engine == "auto"

    def test_third_party_engine_visible_to_specs(self):
        """Registering an engine makes it a valid spec value — the
        ~10-line third-party flow of DESIGN.md."""
        from repro.api import DeploymentSpec
        engine = _dummy_engine()
        register_engine(engine)
        try:
            spec = DeploymentSpec.from_dict(
                {"model": {"engine": "dup-test-engine"}})
            assert spec.model.engine == "dup-test-engine"
        finally:
            ENGINES.unregister("dup-test-engine")
