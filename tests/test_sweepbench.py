"""``repro bench sweepbench`` and the host-metadata block.

The sweep benchmark's payload shape, its determinism gate, and the
rule both benchmark gates share: the ``host`` block is informational
— recorded for cross-machine trajectory comparisons, never read by
``--check`` (except the cpu-count escape hatch that skips the
*speedup* gate on hosts that physically cannot show one).
"""

import pytest

from repro.bench import simbench, sweepbench
from repro.errors import ConfigError
from repro.utils.host import host_metadata


def baseline(tmp_path, **payload):
    path = tmp_path / "baseline.json"
    import json
    path.write_text(json.dumps(payload))
    return path


def sweep_payload(cpu_count=8, speedup=2.0, identical=True):
    """A synthetic sweepbench payload (shape-compatible with
    run_benchmark's) for exercising the gate without a real run."""
    return {
        "version": sweepbench.SWEEP_BENCH_VERSION,
        "host": {**host_metadata(), "cpu_count": cpu_count,
                 "platform": "weird-os-0.0", "machine": "vax"},
        "serial": {"wall_s": 10.0, "points": 32, "errors": 0},
        "parallel": {"wall_s": 10.0 / speedup if speedup else 10.0,
                     "jobs": 4, "points": 32, "errors": 0},
        "speedup": {"wall_clock": speedup},
        "payloads_identical": identical,
    }


class TestHostMetadata:
    def test_shape(self):
        host = host_metadata()
        assert set(host) == {"cpu_count", "python", "implementation",
                             "platform", "machine"}
        assert isinstance(host["cpu_count"], int)
        assert host["cpu_count"] >= 1


class TestRunBenchmark:
    def test_payload_shape_and_determinism(self):
        payload = sweepbench.run_benchmark(jobs=2, requests=8)
        assert payload["version"] == sweepbench.SWEEP_BENCH_VERSION
        assert payload["grid"]["points"] == 32
        assert payload["grid"]["requests_per_point"] == 8
        assert payload["serial"]["points"] == 32
        assert payload["parallel"]["points"] == 32
        assert payload["parallel"]["jobs"] == 2
        assert payload["serial"]["errors"] == 0
        assert payload["parallel"]["errors"] == 0
        assert payload["serial"]["wall_s"] > 0
        assert payload["parallel"]["wall_s"] > 0
        assert payload["speedup"]["wall_clock"] > 0
        # The executor's core contract, measured on a real grid.
        assert payload["payloads_identical"] is True
        # The host block rides along for cross-machine comparisons.
        assert set(payload["host"]) == set(host_metadata())

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ConfigError):
            sweepbench.run_benchmark(jobs=0, requests=8)
        with pytest.raises(ConfigError):
            sweepbench.sweep_points(requests=0)


class TestCheckRegression:
    def test_within_tolerance_passes(self, tmp_path):
        path = baseline(tmp_path, sweep_speedup=2.0)
        assert sweepbench.check_regression(
            sweep_payload(speedup=1.9), path) is None

    def test_below_floor_fails(self, tmp_path):
        path = baseline(tmp_path, sweep_speedup=2.0)
        failure = sweepbench.check_regression(
            sweep_payload(speedup=1.0), path, tolerance=0.30)
        assert failure and "1.40x" in failure

    def test_host_block_values_are_ignored(self, tmp_path):
        """Odd platform strings and machine names must not affect the
        verdict — only cpu_count's < 2 escape hatch is read."""
        path = baseline(tmp_path, sweep_speedup=2.0)
        payload = sweep_payload(speedup=1.9)
        payload["host"].update(platform="???", machine="",
                               python="0.0.0")
        assert sweepbench.check_regression(payload, path) is None

    def test_single_cpu_host_skips_speedup_gate(self, tmp_path):
        path = baseline(tmp_path, sweep_speedup=2.0)
        assert sweepbench.check_regression(
            sweep_payload(cpu_count=1, speedup=0.8), path) is None

    def test_determinism_gated_even_on_single_cpu(self, tmp_path):
        path = baseline(tmp_path, sweep_speedup=2.0)
        failure = sweepbench.check_regression(
            sweep_payload(cpu_count=1, speedup=0.8, identical=False),
            path)
        assert failure and "determinism" in failure

    def test_bad_baseline_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="sweep_speedup"):
            sweepbench.check_regression(
                sweep_payload(), baseline(tmp_path, other=1))
        with pytest.raises(ConfigError, match="cannot read"):
            sweepbench.check_regression(
                sweep_payload(), tmp_path / "missing.json")


class TestSimbenchHostBlock:
    def test_bench_sim_payload_records_host(self):
        payload = simbench.run_benchmark(requests=40,
                                         reference_requests=10)
        assert set(payload["host"]) == set(host_metadata())

    def test_check_ignores_host_block(self, tmp_path):
        """simbench's gate reads only the speedup ratio."""
        payload = {"host": {"cpu_count": 1, "platform": "???"},
                   "speedup": {"requests_per_s": 12.0,
                               "steps_per_s": 1.0}}
        path = baseline(tmp_path, speedup_requests_per_s=10.0)
        assert simbench.check_regression(payload, path) is None
