"""The five MoE engines: functional equivalence and cost ordering."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels import SamoyedsFeatures
from repro.moe import ENGINES, MODEL_REGISTRY, TopKRouter, build_experts
from repro.moe.layers import LayerWorkload, SamoyedsEngine

TOKENS = 4096


@pytest.fixture(scope="module")
def small_setup():
    cfg = MODEL_REGISTRY["mixtral-8x7b"]
    experts = build_experts(cfg, scale=32, seed=1)
    router = TopKRouter(cfg.num_experts, cfg.top_k, seed=2)
    rng = np.random.default_rng(3)
    x = rng.normal(size=(96, experts[0].hidden_size))
    plan = router.route(96)
    return cfg, experts, x, plan


class TestFunctionalEquivalence:
    def test_dense_engines_agree(self, small_setup):
        _, experts, x, plan = small_setup
        ref = ENGINES["transformers"].run(x, plan, experts)
        for name in ("megablocks", "vllm-ds", "pit"):
            out = ENGINES[name].run(x, plan, experts)
            assert np.allclose(out, ref, atol=1e-8), name

    def test_samoyeds_matches_pruned_reference(self, small_setup):
        _, experts, x, plan = small_setup
        engine = SamoyedsEngine()
        pruned = [e.pruned(engine.pattern) for e in experts]
        ref = ENGINES["transformers"].run(x, plan, pruned)
        out = engine.run(x, plan, experts)
        assert np.allclose(out, ref, atol=1e-8)

    def test_shared_experts_processed_by_all_tokens(self, small_setup):
        cfg, experts, x, plan = small_setup
        from repro.moe import build_experts
        from dataclasses import replace
        shared_cfg = replace(cfg, num_shared_experts=2)
        all_experts = build_experts(shared_cfg, scale=32, seed=1)
        with_shared = ENGINES["transformers"].run(
            x, plan, all_experts, num_shared=2)
        without = ENGINES["transformers"].run(
            x, plan, all_experts[:cfg.num_experts])
        assert not np.allclose(with_shared, without)

    def test_expert_count_mismatch_rejected(self, small_setup):
        _, experts, x, plan = small_setup
        with pytest.raises(ConfigError):
            ENGINES["transformers"].run(x, plan, experts[:-1])

    def test_different_activations_change_output(self, small_setup):
        _, experts, x, plan = small_setup
        silu_out = ENGINES["transformers"].run(x, plan, experts,
                                               activation="silu")
        relu_out = ENGINES["transformers"].run(x, plan, experts,
                                               activation="relu")
        assert not np.allclose(silu_out, relu_out)


class TestCostOrdering:
    @pytest.mark.parametrize("model", list(MODEL_REGISTRY))
    def test_samoyeds_fastest_engine(self, spec, model):
        cfg = MODEL_REGISTRY[model]
        sam = ENGINES["samoyeds"].cost(cfg, TOKENS, spec, num_shared=0)
        base = ENGINES["transformers"].cost(cfg, TOKENS, spec,
                                            num_shared=0)
        assert sam.time_s < base.time_s

    def test_fused_baselines_beat_transformers(self, spec):
        cfg = MODEL_REGISTRY["mixtral-8x7b"]
        base = ENGINES["transformers"].cost(cfg, TOKENS, spec,
                                            num_shared=0).time_s
        for name in ("megablocks", "vllm-ds", "pit"):
            assert ENGINES[name].cost(cfg, TOKENS, spec,
                                      num_shared=0).time_s < base, name

    def test_ns_for_openmoe(self, spec):
        cfg = MODEL_REGISTRY["openmoe-34b"]
        for name in ("megablocks", "vllm-ds"):
            with pytest.raises(ConfigError):
                ENGINES[name].cost(cfg, TOKENS, spec)

    def test_pit_and_samoyeds_support_openmoe(self, spec):
        cfg = MODEL_REGISTRY["openmoe-34b"]
        assert ENGINES["pit"].cost(cfg, TOKENS, spec).time_s > 0
        assert ENGINES["samoyeds"].cost(cfg, TOKENS, spec).time_s > 0

    def test_shared_experts_add_time(self, spec):
        cfg = MODEL_REGISTRY["mixtral-8x7b"]
        without = ENGINES["samoyeds"].cost(cfg, TOKENS, spec,
                                           num_shared=0).time_s
        with_shared = ENGINES["samoyeds"].cost(cfg, TOKENS, spec,
                                               num_shared=2).time_s
        assert with_shared > without

    def test_more_tokens_cost_more(self, spec):
        cfg = MODEL_REGISTRY["mixtral-8x7b"]
        for name, engine in ENGINES.items():
            if name in ("megablocks", "vllm-ds"):
                pass
            small = engine.cost(cfg, 1024, spec, num_shared=0).time_s
            large = engine.cost(cfg, 8192, spec, num_shared=0).time_s
            assert large > small, name


class TestAblationFeatures:
    def test_ablation_ladder_monotone(self, spec):
        cfg = MODEL_REGISTRY["mixtral-8x7b"]
        feats = SamoyedsFeatures()
        stages = [
            feats.without("input_selection").without("layout")
                 .without("stationary"),
            feats.without("layout").without("stationary"),
            feats.without("stationary"),
            feats,
        ]
        times = [SamoyedsEngine(features=f).cost(cfg, TOKENS, spec,
                                                 num_shared=0).time_s
                 for f in stages]
        for slower, faster in zip(times, times[1:]):
            assert faster <= slower * 1.001

    def test_workload_padding(self):
        cfg = MODEL_REGISTRY["qwen2-moe"]
        work = LayerWorkload(cfg, TOKENS)
        padded = work.padded_routed_tokens(64)
        assert padded >= work.total_routed_tokens
        assert padded % 64 == 0

    def test_narrow_tile_for_many_experts(self):
        engine = SamoyedsEngine()
        assert engine.tile_rows(MODEL_REGISTRY["qwen2-moe"]) == 64
        assert engine.tile_rows(MODEL_REGISTRY["mixtral-8x7b"]) == 128
