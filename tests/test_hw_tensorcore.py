"""MMA instruction shapes and issue-cost model."""

import pytest

from repro.errors import HardwareModelError, TilingError
from repro.hw import MMA_DENSE_SHAPES, MMA_SP_SHAPES
from repro.hw.spec import AMD_W7900
from repro.hw.tensorcore import (
    BASELINE_MMA,
    SAMOYEDS_MMA,
    instructions_per_warp_tile,
    mma_cycles,
    require_sparse_alu,
)


class TestShapes:
    def test_samoyeds_shape_is_m16n8k32_sparse(self):
        assert (SAMOYEDS_MMA.m, SAMOYEDS_MMA.n, SAMOYEDS_MMA.k) == \
            (16, 8, 32)
        assert SAMOYEDS_MMA.sparse
        assert SAMOYEDS_MMA.name == "mma.sp.m16n8k32"

    def test_flops_counts_skipped_zeros(self):
        assert SAMOYEDS_MMA.flops == 2 * 16 * 8 * 32

    def test_sparse_a_fragment_is_half(self):
        dense_bytes = 16 * 32 * 2
        assert SAMOYEDS_MMA.a_fragment_bytes == dense_bytes // 2

    def test_dense_has_no_metadata(self):
        assert BASELINE_MMA.metadata_bytes == 0

    def test_sparse_metadata_is_two_bits_per_value(self):
        # 16 x 16 stored values x 2 bits = 64 bytes.
        assert SAMOYEDS_MMA.metadata_bytes == 16 * 16 * 2 // 8

    def test_shape_tables_are_consistent(self):
        assert all(s.sparse for s in MMA_SP_SHAPES)
        assert all(not s.sparse for s in MMA_DENSE_SHAPES)


class TestDecomposition:
    def test_exact_decomposition(self):
        count = instructions_per_warp_tile(64, 64, 32, SAMOYEDS_MMA)
        assert count == (64 // 16) * (64 // 8) * (32 // 32)

    @pytest.mark.parametrize("mw,nw,kb", [(60, 64, 32), (64, 60, 32),
                                          (64, 64, 48)])
    def test_ragged_tiles_rejected(self, mw, nw, kb):
        with pytest.raises(TilingError):
            instructions_per_warp_tile(mw, nw, kb, SAMOYEDS_MMA)


class TestCycles:
    def test_sparse_issue_is_twice_as_fast(self, spec):
        dense = mma_cycles(10, BASELINE_MMA, spec)
        sparse = mma_cycles(10, SAMOYEDS_MMA, spec)
        # Same flops/instruction ratio: m16n8k32 has 2x the flops of
        # m16n8k16 but runs on the doubled sparse rate -> equal cycles.
        assert sparse == pytest.approx(dense)

    def test_cycles_scale_linearly(self, spec):
        assert mma_cycles(20, SAMOYEDS_MMA, spec) == pytest.approx(
            2 * mma_cycles(10, SAMOYEDS_MMA, spec))

    def test_sparse_requires_sparse_alu(self):
        with pytest.raises(HardwareModelError):
            mma_cycles(1, SAMOYEDS_MMA, AMD_W7900)

    def test_require_sparse_alu_passes_on_nvidia(self, spec):
        require_sparse_alu(spec)

    def test_require_sparse_alu_fails_on_w7900(self):
        with pytest.raises(HardwareModelError, match="W7900|w7900"):
            require_sparse_alu(AMD_W7900)
