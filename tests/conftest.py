"""Shared fixtures for the unit/integration test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import get_gpu


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def spec():
    """The development platform (RTX 4070 Super)."""
    return get_gpu("rtx4070s")


@pytest.fixture
def a100():
    return get_gpu("a100")
