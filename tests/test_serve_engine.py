"""The discrete-event serving loop: acceptance properties.

Covers the ISSUE acceptance criteria: continuous batching sustains
strictly higher QPS than static batching on a bursty trace; the
memory-aware admission control reproduces Table-3 max-batch numbers as
an emergent concurrency limit; TTFT/TPOT percentiles are deterministic
under a fixed RNG seed.
"""

import pytest

from repro.context import ExecutionContext
from repro.errors import CapacityError
from repro.hw import get_gpu
from repro.moe import MODEL_REGISTRY
from repro.moe.memory_model import KVCacheTracker, footprint
from repro.serve import (
    ChunkedPrefillBatcher,
    ContinuousBatcher,
    StaticBatcher,
    bursty_trace,
    poisson_trace,
    replay_trace,
    simulate,
)
from repro.serve.engine import ServingEngine

CFG = MODEL_REGISTRY["mixtral-8x7b"]
SEED = 7


@pytest.fixture(scope="module")
def ctx():
    return ExecutionContext.create("mixtral-8x7b", "samoyeds", "a100")


@pytest.fixture(scope="module")
def burst():
    return bursty_trace(48, rate_qps=4.0, prompt_tokens=256,
                        output_tokens=24, seed=SEED)


class TestContinuousVsStatic:
    def test_continuous_sustains_higher_qps_on_bursty(self, ctx, burst):
        cont = simulate(ctx, trace=burst,
                        batcher=ContinuousBatcher(token_budget=4096),
                        seed=SEED)
        stat = simulate(ctx, trace=burst,
                        batcher=StaticBatcher(batch_size=8), seed=SEED)
        assert cont.completed == stat.completed == len(burst)
        assert cont.qps_sustained > stat.qps_sustained

    def test_continuous_cuts_tail_ttft(self, ctx, burst):
        cont = simulate(ctx, trace=burst, seed=SEED)
        stat = simulate(ctx, trace=burst,
                        batcher=StaticBatcher(batch_size=8), seed=SEED)
        assert cont.ttft_s["p99"] < stat.ttft_s["p99"]


class TestEmergentMemoryLimit:
    def test_tracker_matches_table3_all_engines(self, spec):
        for engine in ("transformers", "megablocks", "vllm-ds", "pit",
                       "samoyeds"):
            for seq in (1024, 4096):
                tracker = KVCacheTracker(CFG, engine, spec)
                table3 = footprint(CFG, engine, seq, spec).max_batch()
                assert tracker.max_concurrent(seq) == table3

    def test_sim_concurrency_caps_at_table3(self):
        """Max batch emerges from admission, never configured."""
        spec = get_gpu("rtx4070s")
        seq, output = 4096, 8
        limit = footprint(CFG, "vllm-ds", seq, spec).max_batch()
        assert 0 < limit < 12          # tight enough to bind in the sim
        trace = replay_trace([(0.0, seq - output, output)
                              for _ in range(limit + 4)])
        report = simulate("mixtral-8x7b", "vllm-ds", "rtx4070s",
                          trace=trace,
                          batcher=ContinuousBatcher(token_budget=10 ** 9),
                          num_layers=1, seed=SEED)
        assert report.max_concurrency == limit
        assert report.completed == len(trace)

    def test_samoyeds_admits_more_than_dense_baselines(self, spec):
        sam = KVCacheTracker(CFG, "samoyeds", spec).max_concurrent(1024)
        for engine in ("transformers", "megablocks", "vllm-ds"):
            assert sam > KVCacheTracker(CFG, engine,
                                        spec).max_concurrent(1024)

    def test_impossible_request_raises_capacity_error(self):
        """vLLM-DS OOMs Mixtral-8x22B on a 12 GiB card (Table 3)."""
        trace = poisson_trace(2, 1.0, prompt_tokens=64, output_tokens=4,
                              seed=SEED)
        with pytest.raises(CapacityError):
            simulate("mixtral-8x22b", "vllm-ds", "rtx4070s", trace=trace,
                     num_layers=1, seed=SEED)


class TestQueueDepthSampling:
    def test_arrivals_during_step_are_counted(self, ctx):
        """Regression: queue depth was sampled before draining the
        arrivals that landed during the step, undercounting p99/max."""
        trace = replay_trace([(0.0, 2048, 4)]
                             + [(1e-6, 32, 4) for _ in range(9)])
        report = simulate(ctx, trace=trace,
                          batcher=ContinuousBatcher(token_budget=4096),
                          num_layers=1, seed=SEED)
        # All 9 arrive during the long first prefill step: the first
        # sample must see them queued.
        assert report.queue_depth["max"] >= 9


class TestMemoryReporting:
    def test_reserved_peak_reported_beside_live_peak(self, ctx):
        """Regression: only the KV-cache live bytes were reported, far
        below the admission-charged budget."""
        trace = poisson_trace(12, 3.0, prompt_tokens=256,
                              output_tokens=8, seed=SEED)
        report = simulate(ctx, trace=trace, seed=SEED)
        assert report.peak_reserved_bytes > report.peak_memory_bytes
        assert report.block_utilisation["max"] > 0

    def test_block_ledger_never_exceeds_budget(self):
        from repro.moe.memory_model import BlockAllocator
        spec = get_gpu("rtx4070s")
        trace = replay_trace([(0.0, 1024, 3072) for _ in range(8)])
        report = simulate("mixtral-8x7b", "vllm-ds", "rtx4070s",
                          trace=trace,
                          batcher=ContinuousBatcher(token_budget=10 ** 9),
                          num_layers=1, seed=SEED, page_size=16)
        budget = BlockAllocator(CFG, "vllm-ds", spec,
                                page_size=16).budget_bytes
        assert report.peak_reserved_bytes <= budget
        assert report.block_utilisation["max"] <= 1.0 + 1e-9


class TestPagedServing:
    def test_paged_chunked_beats_conservative_on_long_prompts(self):
        """ISSUE acceptance: bursty long-prompt trace, paged + chunked
        completes everything with strictly higher max concurrency and
        lower p99 TTFT than conservative-admission continuous batching,
        for both samoyeds and vllm-ds."""
        trace = bursty_trace(24, rate_qps=2.0, prompt_tokens=2048,
                             output_tokens=16, seed=SEED)
        for engine in ("samoyeds", "vllm-ds"):
            base = simulate("mixtral-8x7b", engine, "a100", trace=trace,
                            batcher=ContinuousBatcher(token_budget=1024),
                            num_layers=4, seed=SEED)
            paged = simulate(
                "mixtral-8x7b", engine, "a100", trace=trace,
                batcher=ChunkedPrefillBatcher(token_budget=1024),
                num_layers=4, seed=SEED, page_size=16)
            assert base.completed == paged.completed == len(trace)
            assert paged.max_concurrency > base.max_concurrency, engine
            assert paged.ttft_s["p99"] < base.ttft_s["p99"], engine

    def test_uniform_trace_paged_matches_table3(self):
        """Block-aligned uniform requests saturate at exactly the
        Table-3 max batch under paging too."""
        spec = get_gpu("rtx4070s")
        seq, output = 4096, 8
        limit = footprint(CFG, "vllm-ds", seq, spec).max_batch()
        trace = replay_trace([(0.0, seq - output, output)
                              for _ in range(limit + 4)])
        report = simulate("mixtral-8x7b", "vllm-ds", "rtx4070s",
                          trace=trace,
                          batcher=ContinuousBatcher(token_budget=10 ** 9),
                          num_layers=1, seed=SEED, page_size=16)
        assert report.max_concurrency == limit
        assert report.completed == len(trace)

    def test_preempted_requests_finish(self):
        """Over-admitting at low live context forces block exhaustion
        mid-decode; every evicted request is recomputed to completion."""
        trace = replay_trace([(0.0, 1024, 3072) for _ in range(8)])
        report = simulate("mixtral-8x7b", "vllm-ds", "rtx4070s",
                          trace=trace,
                          batcher=ContinuousBatcher(token_budget=10 ** 9),
                          num_layers=1, seed=SEED, page_size=16)
        assert report.preemptions > 0
        assert report.completed == len(trace)
        assert report.max_concurrency == 8      # paged over-admission

    def test_conservative_never_preempts(self, ctx, burst):
        report = simulate(ctx, trace=burst, seed=SEED)
        assert report.preemptions == 0

    def test_paged_never_fits_raises(self):
        trace = replay_trace([(0.0, 64, 4)])
        with pytest.raises(CapacityError):
            simulate("mixtral-8x22b", "vllm-ds", "rtx4070s", trace=trace,
                     num_layers=1, seed=SEED, page_size=16)

    def test_paged_deterministic(self):
        def run():
            trace = bursty_trace(16, 4.0, prompt_tokens=512,
                                 output_tokens=12, seed=SEED)
            return simulate(
                "mixtral-8x7b", "samoyeds", "a100", trace=trace,
                batcher=ChunkedPrefillBatcher(token_budget=512),
                num_layers=2, seed=SEED, page_size=16)
        assert run().to_dict() == run().to_dict()

    def test_invalid_page_size_rejected(self, ctx):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ServingEngine(ctx=ctx, page_size=-1)


class TestDeterminism:
    def test_reports_identical_under_fixed_seed(self, ctx):
        def run():
            trace = bursty_trace(32, 4.0, prompt_tokens=128,
                                 output_tokens=12, seed=SEED)
            return simulate(ctx, trace=trace, seed=SEED)
        assert run().to_dict() == run().to_dict()

    def test_different_trace_seed_changes_report(self, ctx):
        def run(seed):
            trace = bursty_trace(32, 4.0, prompt_tokens=128,
                                 output_tokens=12, seed=seed)
            return simulate(ctx, trace=trace, seed=SEED)
        assert run(1).duration_s != run(2).duration_s


class TestEngineComparison:
    def test_all_engines_complete_identical_traffic(self, ctx):
        trace = poisson_trace(16, 3.0, prompt_tokens=128,
                              output_tokens=8, seed=SEED)
        for engine in ("transformers", "megablocks", "vllm-ds", "pit",
                       "samoyeds"):
            report = simulate(ctx.with_engine(engine), trace=trace,
                              seed=SEED)
            assert report.engine == engine
            assert report.completed == len(trace)
            assert report.ttft_s["p50"] > 0
            assert report.peak_memory_bytes > 0


class TestLptScheduling:
    def test_streams_accelerate_samoyeds_steps(self, ctx):
        trace = poisson_trace(8, 4.0, prompt_tokens=256,
                              output_tokens=8, seed=SEED)
        seq = simulate(ctx, trace=trace, seed=SEED)
        par = simulate(ctx, trace=trace, seed=SEED)  # sanity: same config
        assert seq.duration_s == par.duration_s
        ctx4 = ExecutionContext.create("mixtral-8x7b", "samoyeds", "a100",
                                       streams=4)
        overlapped = simulate(ctx4, trace=trace, seed=SEED)
        assert overlapped.duration_s < seq.duration_s

    def test_lpt_deterministic(self):
        ctx4 = ExecutionContext.create("mixtral-8x7b", "samoyeds", "a100",
                                       streams=4)
        trace = poisson_trace(8, 4.0, prompt_tokens=128, output_tokens=6,
                              seed=SEED)
        a = simulate(ctx4, trace=trace, routing_skew=1.0, seed=SEED)
        b = simulate(ctx4, trace=trace, routing_skew=1.0, seed=SEED)
        assert a.to_dict() == b.to_dict()


class TestLifecycle:
    def test_ttft_tpot_ordering(self, ctx):
        trace = poisson_trace(12, 2.0, prompt_tokens=128,
                              output_tokens=8, seed=SEED)
        report = simulate(ctx, trace=trace, seed=SEED)
        assert report.ttft_s["p50"] <= report.ttft_s["p90"] \
            <= report.ttft_s["p99"]
        assert report.tpot_s["p50"] <= report.tpot_s["p99"]
        assert report.duration_s > 0 and report.steps > 0

    def test_single_layer_faster_than_full_model(self, ctx):
        trace = poisson_trace(8, 3.0, prompt_tokens=128, output_tokens=6,
                              seed=SEED)
        one = simulate(ctx, trace=trace, num_layers=1, seed=SEED)
        full = simulate(ctx, trace=trace, seed=SEED)
        assert one.ttft_s["p50"] < full.ttft_s["p50"]

    def test_engine_object_reusable(self, ctx):
        server = ServingEngine(ctx=ctx, seed=SEED)
        trace = poisson_trace(6, 3.0, prompt_tokens=64, output_tokens=4,
                              seed=SEED)
        first = server.run(trace)
        second = server.run(trace)
        assert first.completed == second.completed == 6
