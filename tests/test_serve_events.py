"""Unit tests for the event calendar (:mod:`repro.serve.events`).

Covers the ordering contract (time, then event kind, then rid, then
push order), the arrival-only ``CLOCK_EPS`` tolerance, the stop
semantics (stop gates planning, never dispatch), and the regression
the calendar refactor was most at risk of: an arrival landing exactly
on a step boundary must be admitted exactly once.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve.events import (
    CLOCK_EPS,
    Arrival,
    Event,
    EventKind,
    EventManager,
    EventQueue,
    HorizonExpired,
    Preempt,
    StepComplete,
)
from repro.serve.request import Request


def _req(rid, arrival_s=0.0):
    return Request(rid=rid, arrival_s=arrival_s, prompt_tokens=8,
                   output_tokens=4)


class TestOrdering:
    def test_kind_breaks_time_ties(self):
        """At one instant: arrivals, then step completions, then
        preemptions, then the horizon."""
        q = EventQueue()
        q.push(HorizonExpired(when=1.0))
        q.push(Preempt(when=1.0, victim_rid=4))
        q.push(StepComplete(when=1.0, step_s=0.1, comm_s=0.0))
        q.push(Arrival(when=1.0, request=_req(7)))
        kinds = [type(q.pop()) for _ in range(4)]
        assert kinds == [Arrival, StepComplete, Preempt, HorizonExpired]

    def test_rid_breaks_kind_ties(self):
        q = EventQueue()
        q.push(Arrival(when=1.0, request=_req(5)))
        q.push(Arrival(when=1.0, request=_req(3)))
        assert q.pop().rid == 3
        assert q.pop().rid == 5

    def test_push_order_breaks_full_ties(self):
        q = EventQueue()
        first = StepComplete(when=2.0, step_s=0.1, comm_s=0.0)
        second = StepComplete(when=2.0, step_s=0.2, comm_s=0.0)
        q.push(first)
        q.push(second)
        assert q.pop() is first
        assert q.pop() is second

    def test_time_orders_before_everything(self):
        q = EventQueue()
        q.push(Arrival(when=2.0, request=_req(1)))
        q.push(HorizonExpired(when=1.0))
        assert isinstance(q.pop(), HorizonExpired)

    def test_event_kind_values_are_the_dispatch_order(self):
        assert (EventKind.ARRIVAL < EventKind.STEP_COMPLETE
                < EventKind.PREEMPT < EventKind.HORIZON_EXPIRED)


class TestDueEpsilon:
    def test_arrival_due_within_epsilon(self):
        q = EventQueue()
        q.push(Arrival(when=1.0 + CLOCK_EPS / 2, request=_req(1)))
        assert isinstance(q.due(1.0), Arrival)

    def test_arrival_not_due_past_epsilon(self):
        q = EventQueue()
        q.push(Arrival(when=1.0 + 2 * CLOCK_EPS, request=_req(1)))
        assert q.due(1.0) is None

    def test_horizon_gets_no_epsilon(self):
        """The horizon comparison is exact (legacy ``clock >=
        horizon``); it must not borrow the arrival tolerance."""
        q = EventQueue()
        q.push(HorizonExpired(when=1.0 + CLOCK_EPS / 2))
        assert q.due(1.0) is None
        assert q.due(1.0 + CLOCK_EPS / 2) is not None

    def test_pending_arrivals_counter(self):
        q = EventQueue()
        q.push(Arrival(when=0.0, request=_req(1)))
        q.push(StepComplete(when=0.0, step_s=0.1, comm_s=0.0))
        assert q.pending_arrivals == 1
        q.pop()                       # the arrival (kind orders first)
        assert q.pending_arrivals == 0
        assert len(q) == 1

    def test_pop_empty_queue_raises(self):
        with pytest.raises(ConfigError):
            EventQueue().pop()


class TestManager:
    def _manager(self, log):
        m = EventManager()
        for kind in EventKind:
            m.on(kind, lambda e, k=kind: log.append((k, e.when)))
        return m

    def test_arrival_on_step_boundary_admitted_once(self):
        """Regression: an arrival timestamped exactly at a step
        boundary is dispatched exactly once — not once by the
        completing step's drain and again by the planning loop's."""
        log = []
        m = self._manager(log)
        m.queue.push(Arrival(when=1.0, request=_req(1)))
        m.clock = 1.0
        assert m.dispatch_due() is True
        assert m.dispatch_due() is False      # second drain: nothing
        arrivals = [entry for entry in log if entry[0]
                    is EventKind.ARRIVAL]
        assert len(arrivals) == 1

    def test_advance_moves_clock_and_drains_same_instant(self):
        log = []
        m = self._manager(log)
        m.queue.push(StepComplete(when=2.0, step_s=0.1, comm_s=0.0))
        m.queue.push(Arrival(when=2.0, request=_req(1)))
        assert m.advance() is True
        assert m.clock == 2.0
        assert [k for k, _ in log] == [EventKind.ARRIVAL,
                                       EventKind.STEP_COMPLETE]
        assert len(m.queue) == 0

    def test_clock_never_moves_backwards(self):
        log = []
        m = self._manager(log)
        m.clock = 5.0
        m.queue.push(Preempt(when=1.0, victim_rid=1))
        m.advance()
        assert m.clock == 5.0

    def test_stop_gates_planning_not_dispatch(self):
        """After stop(), dispatch_due still drains due events (an
        arrival coinciding with the horizon must join the queue) and
        advance still completes an in-flight step."""
        log = []
        m = self._manager(log)
        m.stop()
        m.queue.push(Arrival(when=0.0, request=_req(1)))
        assert m.dispatch_due() is True
        m.queue.push(StepComplete(when=1.0, step_s=0.1, comm_s=0.0))
        assert m.advance() is True
        assert m.clock == 1.0

    def test_advance_on_empty_queue_returns_false(self):
        assert EventManager().advance() is False

    def test_unhandled_kind_raises(self):
        m = EventManager()
        m.queue.push(HorizonExpired(when=0.0))
        with pytest.raises(ConfigError):
            m.advance()

    def test_emit_dispatches_immediately(self):
        log = []
        m = self._manager(log)
        m.emit(Preempt(when=0.0, victim_rid=9))
        assert log == [(EventKind.PREEMPT, 0.0)]


class TestEventTypes:
    def test_clock_eps_is_tiny_and_named(self):
        assert 0 < CLOCK_EPS <= 1e-9

    def test_events_are_frozen(self):
        event = HorizonExpired(when=1.0)
        with pytest.raises(AttributeError):
            event.when = 2.0

    def test_default_rid_sorts_before_real_rids(self):
        assert Event(when=0.0).rid == -1
        assert Preempt(when=0.0, victim_rid=3).rid == 3
        arrival = Arrival(when=0.0, request=_req(12))
        assert arrival.rid == 12
