"""Benchmark harness: workloads, sweeps, reports, experiment registry."""

import pytest

from repro.bench import (
    EXPERIMENTS,
    SYNTHETIC_CASE_COUNT,
    adaptation_study,
    kernel_sweep,
    portability_sweep,
    realistic_cases,
    run_experiment,
    speedup_stats,
    synthetic_cases,
)
from repro.bench.report import fmt_speedup, render_series, render_table
from repro.bench.workloads import DIM_GRID, scaling_cases
from repro.errors import ConfigError


class TestWorkloads:
    def test_synthetic_suite_has_238_cases(self):
        cases = synthetic_cases()
        assert len(cases) == SYNTHETIC_CASE_COUNT == 238

    def test_synthetic_cases_within_paper_range(self):
        for case in synthetic_cases():
            for dim in (case.m, case.k, case.n):
                assert 256 <= dim <= 16384
                assert dim in DIM_GRID

    def test_synthetic_suite_deterministic(self):
        assert synthetic_cases() == synthetic_cases()

    def test_realistic_cases_cover_all_models(self):
        cases = realistic_cases()
        assert len(cases) == 12          # two GEMM shapes per model
        labels = {c.label.split(":")[0] for c in cases}
        assert len(labels) == 6

    def test_realistic_shapes_match_table2(self):
        cases = realistic_cases(models=["mixtral-8x7b"])
        gate = next(c for c in cases if "gate" in c.label)
        assert (gate.m, gate.k) == (14336, 4096)

    def test_scaling_cases(self):
        cases = scaling_cases("m", fixed=4096)
        assert all(c.k == 4096 and c.n == 4096 for c in cases)
        assert [c.m for c in cases] == list(DIM_GRID)


class TestHarness:
    def test_kernel_sweep_covers_all_kernels(self, spec):
        rows = kernel_sweep(synthetic_cases(5), spec)
        assert len(rows) == 5
        for row in rows:
            assert set(row.seconds) == {"cublas", "sputnik",
                                        "cusparselt", "venom",
                                        "samoyeds"}
            assert all(t > 0 for t in row.seconds.values())

    def test_speedup_stats_fields(self, spec):
        rows = kernel_sweep(synthetic_cases(5), spec)
        stats = speedup_stats(rows)
        for base, entry in stats.items():
            assert entry["min"] <= entry["geomean"] <= entry["max"]

    def test_portability_sweep_shape(self):
        out = portability_sweep(synthetic_cases(6), ["a100"])
        assert "rtx4070s" in out and "a100" in out
        assert "samoyeds_retained" in out["a100"]

    def test_adaptation_fractions_sum_to_one(self):
        out = adaptation_study(synthetic_cases(10), "a100", "tile_down")
        total = out["improved"] + out["unchanged"] + out["degraded"]
        assert total == pytest.approx(1.0)

    def test_unknown_adaptation_rejected(self):
        with pytest.raises(Exception):
            adaptation_study(synthetic_cases(2), "a100", "overclock")


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, None]],
                            title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "OOM/NS" in text

    def test_render_series(self):
        text = render_series("s", [1, 2], {"y": [0.5, None]},
                             x_label="x")
        assert "x" in text and "y" in text

    def test_fmt_speedup(self):
        assert fmt_speedup(1.5) == "1.50x"
        assert fmt_speedup(None) == "OOM/NS"


class TestRegistry:
    def test_all_fourteen_experiments_registered(self):
        expected = {"fig02", "fig11", "fig12", "fig13", "fig14",
                    "fig15", "fig16", "tab03", "fig17", "tab04",
                    "tab05", "fig18", "tab06", "fig19"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment("fig99")

    def test_fast_experiment_runs(self):
        result = run_experiment("fig11")
        assert result.experiment == "fig11"
        assert result.text
        assert result.data
