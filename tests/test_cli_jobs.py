"""``--jobs N`` on the bench CLI: golden serial/parallel equivalence.

The executor's user-facing contract: ``repro bench run`` and ``repro
bench scale`` emit **byte-identical** JSON whether the points run
serially or fanned over worker processes — including under the
runtime sim-sanitizer — and an infeasible sweep point keeps its grid
position as an ``error`` entry either way.
"""

import json
import os

import pytest

from repro.bench.cli import main

CONFIG_DIR = os.path.join(os.path.dirname(__file__), "..",
                          "examples", "configs")
CLUSTER_SWEEP = os.path.join(CONFIG_DIR, "cluster_sweep.yaml")

SCALE_ARGS = ["scale", "--devices", "1,2", "--requests", "8",
              "--qps", "8", "--prompt-tokens", "64",
              "--output-tokens", "4", "--layers", "1", "--gpu", "a100"]


def run_cli(capsys, argv):
    """Run the CLI, returning (exit code, stdout)."""
    code = main(argv)
    return code, capsys.readouterr().out


class TestJobsValidation:
    def test_run_rejects_nonpositive_jobs(self, capsys):
        assert main(["run", CLUSTER_SWEEP, "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_scale_rejects_nonpositive_jobs(self, capsys):
        assert main(SCALE_ARGS + ["--jobs", "-1"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestRunGolden:
    def test_cluster_sweep_parallel_byte_identical(self, capsys):
        code, serial = run_cli(capsys, ["run", CLUSTER_SWEEP])
        assert code == 0
        code, parallel = run_cli(capsys,
                                 ["run", CLUSTER_SWEEP, "--jobs", "2"])
        assert code == 0
        assert parallel == serial

    def test_cluster_sweep_parallel_identical_under_sanitizer(
            self, capsys, monkeypatch):
        """The sanitizer's runtime checks ride along into spawn
        workers via the environment; the payload must not change."""
        code, baseline = run_cli(capsys, ["run", CLUSTER_SWEEP])
        assert code == 0
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        code, sanitized = run_cli(capsys,
                                  ["run", CLUSTER_SWEEP, "--jobs", "2"])
        assert code == 0
        assert sanitized == baseline

    def test_cold_table_also_identical(self, capsys):
        """--no-warm skips the pre-pass; winners are recomputed in
        each worker but are deterministic, so bytes still match."""
        code, serial = run_cli(capsys, ["run", CLUSTER_SWEEP])
        assert code == 0
        code, cold = run_cli(capsys, ["run", CLUSTER_SWEEP,
                                      "--jobs", "2", "--no-warm"])
        assert code == 0
        assert cold == serial


class TestInfeasiblePointPosition:
    @pytest.fixture
    def sweep_config(self, tmp_path):
        """Two-point sweep whose second point (ep=16 on an 8-expert
        model) is infeasible."""
        path = tmp_path / "sweep.yaml"
        path.write_text(json.dumps({
            "model": {"name": "mixtral-8x7b", "engine": "samoyeds",
                      "num_layers": 1},
            "hardware": {"gpu": "a100"},
            "workload": {"kind": "poisson", "requests": 6, "qps": 8.0,
                         "prompt_tokens": 64, "output_tokens": 4,
                         "seed": 7},
            "sweep": {"hardware.parallel": ["ep=1", "ep=16"]},
        }))
        return str(path)

    def check_payload(self, out):
        payload = json.loads(out)
        sweep = payload["sweep"]
        assert len(sweep) == 2
        assert sweep[0]["overrides"] == {"hardware.parallel": "ep=1"}
        assert "report" in sweep[0] and "error" not in sweep[0]
        # The infeasible point keeps its grid position and carries
        # the error string instead of a report.
        assert sweep[1]["overrides"] == {"hardware.parallel": "ep=16"}
        assert "error" in sweep[1] and "report" not in sweep[1]
        return out

    def test_serial_and_parallel_keep_position(self, capsys,
                                               sweep_config):
        code, serial = run_cli(capsys, ["run", sweep_config])
        assert code == 0
        self.check_payload(serial)
        code, parallel = run_cli(capsys,
                                 ["run", sweep_config, "--jobs", "2"])
        assert code == 0
        assert self.check_payload(parallel) == serial


class TestScaleGolden:
    def test_scale_parallel_byte_identical(self, capsys):
        code, serial = run_cli(capsys, SCALE_ARGS)
        assert code == 0
        code, parallel = run_cli(capsys, SCALE_ARGS + ["--jobs", "2"])
        assert code == 0
        assert parallel == serial
        # Sanity: the payload really contains both series.
        payload = json.loads(serial)
        assert [p["devices"] for p in payload["strong"]] == [1, 2]
        assert [p["devices"] for p in payload["weak"]] == [1, 2]
