"""Property-based tests on the performance models.

These pin down invariants the analytical simulator must never violate,
whatever the problem size: positivity, monotonicity, roofline bounds,
ordering stability, and determinism.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import get_gpu
from repro.kernels import DENSE_GEMM, KERNELS, SAMOYEDS_KERNEL

SPEC = get_gpu("rtx4070s")

dims = st.sampled_from([256, 512, 1024, 2048, 4096])


class TestSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(m=dims, k=dims, n=dims)
    def test_all_kernels_positive_and_finite(self, m, k, n):
        for name, kernel in KERNELS.items():
            cost = kernel.cost(m, k, n, SPEC)
            assert cost.time_s > 0, name
            assert cost.dram_bytes > 0, name
            assert cost.tflops > 0, name

    @settings(max_examples=25, deadline=None)
    @given(m=dims, k=dims, n=dims)
    def test_samoyeds_never_slower_than_dense(self, m, k, n):
        """At 75% weight sparsity the SSMM should never lose to the
        dense baseline at any size in the paper's range."""
        sam = SAMOYEDS_KERNEL.cost(m, k, n, SPEC).time_s
        dense = DENSE_GEMM.cost(m, k, n, SPEC).time_s
        assert sam <= dense

    @settings(max_examples=25, deadline=None)
    @given(m=dims, k=dims, n=dims)
    def test_determinism(self, m, k, n):
        a = SAMOYEDS_KERNEL.cost(m, k, n, SPEC).time_s
        b = SAMOYEDS_KERNEL.cost(m, k, n, SPEC).time_s
        assert a == b

    @settings(max_examples=20, deadline=None)
    @given(m=dims, k=dims, n=dims)
    def test_doubling_k_costs_more(self, m, k, n):
        base = SAMOYEDS_KERNEL.cost(m, k, n, SPEC).time_s
        double = SAMOYEDS_KERNEL.cost(m, 2 * k, n, SPEC).time_s
        assert double > base

    @settings(max_examples=20, deadline=None)
    @given(m=dims, k=dims, n=dims)
    def test_effective_throughput_below_effective_roof(self, m, k, n):
        """Effective TFLOP/s can exceed the dense roof but never the
        pattern-adjusted sparse roof (2x sub-row skip x 2x mma.sp)."""
        cost = SAMOYEDS_KERNEL.cost(m, k, n, SPEC)
        roof = SPEC.sparse_tc_flops * 2.0
        assert cost.flops / cost.time_s <= roof

    @settings(max_examples=20, deadline=None)
    @given(m=dims, k=dims, n=dims)
    def test_dense_below_dense_roof(self, m, k, n):
        cost = DENSE_GEMM.cost(m, k, n, SPEC)
        assert cost.flops / cost.time_s <= SPEC.dense_tc_flops

    @settings(max_examples=15, deadline=None)
    @given(m=dims, k=dims, n=dims)
    def test_device_scaling_sanity(self, m, k, n):
        """A 4090 (more SMs, same architecture generation) is never
        slower than the 4070S for the same kernel and problem."""
        r4090 = get_gpu("rtx4090")
        dev = SAMOYEDS_KERNEL.cost(m, k, n, SPEC).time_s
        big = SAMOYEDS_KERNEL.cost(m, k, n, r4090).time_s
        assert big <= dev * 1.001


class TestLayerProperties:
    @settings(max_examples=10, deadline=None)
    @given(tokens=st.sampled_from([1024, 2048, 4096, 8192]))
    def test_layer_cost_monotone_in_tokens(self, tokens):
        from repro.moe import ENGINES, MODEL_REGISTRY
        cfg = MODEL_REGISTRY["mixtral-8x7b"]
        small = ENGINES["samoyeds"].cost(cfg, tokens, SPEC,
                                         num_shared=0).time_s
        large = ENGINES["samoyeds"].cost(cfg, tokens * 2, SPEC,
                                         num_shared=0).time_s
        assert large > small

    @settings(max_examples=8, deadline=None)
    @given(tokens=st.sampled_from([2048, 4096]),
           model=st.sampled_from(["qwen2-moe", "minicpm-moe",
                                  "mixtral-8x7b"]))
    def test_samoyeds_layer_always_wins(self, tokens, model):
        from repro.moe import ENGINES, MODEL_REGISTRY
        cfg = MODEL_REGISTRY[model]
        sam = ENGINES["samoyeds"].cost(cfg, tokens, SPEC,
                                       num_shared=0).time_s
        base = ENGINES["transformers"].cost(cfg, tokens, SPEC,
                                            num_shared=0).time_s
        assert sam < base
